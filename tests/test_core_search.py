"""Unit tests for the static-partition design-space search."""

import pytest

from repro.cache.hierarchy import l1_filter
from repro.config import DEFAULT_PLATFORM
from repro.core.search import PartitionPoint, find_static_partition, sweep_partitions
from repro.trace.generator import generate_trace
from repro.trace.workloads import app_profile


@pytest.fixture(scope="module")
def small_streams():
    traces = [generate_trace(app_profile(a), 25_000, seed=1) for a in ("game", "email")]
    return [l1_filter(t, DEFAULT_PLATFORM) for t in traces]


class TestPartitionPoint:
    def test_total_ways(self):
        p = PartitionPoint(4, 2, 384 * 1024, 0.2, 0.2, 0.2)
        assert p.total_ways == 6


class TestSweep:
    def test_grid_size(self, small_streams):
        points = sweep_partitions(small_streams, DEFAULT_PLATFORM, (2, 4), (1, 2))
        assert len(points) == 4

    def test_bytes_computed_from_ways(self, small_streams):
        points = sweep_partitions(small_streams, DEFAULT_PLATFORM, (2,), (1,))
        assert points[0].total_bytes == 3 * 64 * 1024

    def test_bigger_partitions_do_not_miss_more(self, small_streams):
        points = {(p.user_ways, p.kernel_ways): p
                  for p in sweep_partitions(small_streams, DEFAULT_PLATFORM, (2, 8), (2, 8))}
        assert points[(8, 8)].demand_miss_rate <= points[(2, 2)].demand_miss_rate + 1e-9

    def test_rejects_empty_streams(self):
        with pytest.raises(ValueError, match="at least one stream"):
            sweep_partitions([], DEFAULT_PLATFORM)


class TestFind:
    def test_picks_admissible_minimum(self, small_streams):
        chosen = find_static_partition(
            small_streams, DEFAULT_PLATFORM, tolerance=0.5,
            user_way_options=(2, 8), kernel_way_options=(2, 8))
        # with a generous tolerance the smallest config should win
        assert chosen.total_ways == 4

    def test_tight_tolerance_prefers_larger(self, small_streams):
        loose = find_static_partition(
            small_streams, DEFAULT_PLATFORM, tolerance=1.0,
            user_way_options=(2, 10), kernel_way_options=(2, 6))
        tight = find_static_partition(
            small_streams, DEFAULT_PLATFORM, tolerance=0.005,
            user_way_options=(2, 10), kernel_way_options=(2, 6))
        assert tight.total_bytes >= loose.total_bytes

    def test_rejects_negative_tolerance(self, small_streams):
        with pytest.raises(ValueError, match="tolerance"):
            find_static_partition(small_streams, DEFAULT_PLATFORM, tolerance=-0.1)

    def test_falls_back_to_best_point(self, small_streams):
        # impossible budget: nothing admissible, must return lowest-mr point
        chosen = find_static_partition(
            small_streams, DEFAULT_PLATFORM, tolerance=0.0,
            user_way_options=(1,), kernel_way_options=(1,))
        assert chosen.user_ways == 1 and chosen.kernel_ways == 1

"""Additional coverage: multi-retention corner cases and design extras."""

import pytest

from repro.config import DEFAULT_PLATFORM
from repro.core import (
    DESIGN_NAMES,
    BaselineDesign,
    DynamicControllerConfig,
    DynamicPartitionDesign,
    StaticPartitionDesign,
    make_design,
    multi_retention_design,
)
from repro.energy.technology import RETENTION_CLASSES, stt_ram
from repro.trace.workloads import EXTRA_APP_NAMES, app_profile


class TestExtraApps:
    def test_extra_apps_build(self):
        for name in EXTRA_APP_NAMES:
            assert app_profile(name).name == name

    def test_extra_apps_not_in_canonical_suite(self):
        from repro.trace.workloads import APP_NAMES

        assert not set(EXTRA_APP_NAMES) & set(APP_NAMES)

    def test_designs_run_on_extra_apps(self):
        from repro.cache.hierarchy import l1_filter
        from repro.trace.generator import generate_trace

        for name in EXTRA_APP_NAMES:
            stream = l1_filter(
                generate_trace(app_profile(name), 20_000, seed=0), DEFAULT_PLATFORM)
            r = multi_retention_design().run(stream, DEFAULT_PLATFORM)
            r.l2_stats.check_invariants()


class TestRetentionClassCoverage:
    @pytest.mark.parametrize("user_ret", sorted(RETENTION_CLASSES))
    @pytest.mark.parametrize("kernel_ret", sorted(RETENTION_CLASSES))
    def test_every_retention_pairing_runs(self, user_ret, kernel_ret,
                                          browser_stream_small):
        d = multi_retention_design(
            user_retention=user_ret, kernel_retention=kernel_ret,
            name=f"{user_ret}/{kernel_ret}")
        r = d.run(browser_stream_small, DEFAULT_PLATFORM)
        r.l2_stats.check_invariants()
        assert r.l2_energy.total_j > 0

    def test_long_retention_uses_no_refresh_machinery(self, browser_stream_small):
        d = multi_retention_design(user_retention="long", kernel_retention="long")
        r = d.run(browser_stream_small, DEFAULT_PLATFORM)
        assert r.l2_stats.expiry_invalidations == 0
        assert r.l2_stats.refresh_writes == 0

    def test_write_energy_ordering_across_classes(self):
        sizes = 1024 * 1024
        energies = [stt_ram(c).write_energy_nj(sizes) for c in ("long", "medium", "short")]
        assert energies[0] > energies[1] > energies[2]


class TestDesignRegistryConsistency:
    def test_design_names_match_instances(self):
        for name in DESIGN_NAMES:
            design = make_design(name)
            assert design.name == name

    def test_fresh_instance_each_call(self):
        assert make_design("baseline") is not make_design("baseline")


class TestDynamicExtras:
    def test_timeline_starts_at_configured_ways(self, browser_stream_small):
        cfg = DynamicControllerConfig(start_user_ways=6, start_kernel_ways=3)
        r = DynamicPartitionDesign(cfg).run(browser_stream_small, DEFAULT_PLATFORM)
        assert r.extras["timeline_user_ways"][0] == 6
        assert r.extras["timeline_kernel_ways"][0] == 3

    def test_resize_counters_reported(self, browser_stream_small):
        r = DynamicPartitionDesign().run(browser_stream_small, DEFAULT_PLATFORM)
        assert r.extras["user_resizes"] + r.extras["kernel_resizes"] >= 0

    def test_min_ways_floor_respected(self, browser_stream_small):
        cfg = DynamicControllerConfig(min_ways=2, start_user_ways=4,
                                      start_kernel_ways=2)
        r = DynamicPartitionDesign(cfg).run(browser_stream_small, DEFAULT_PLATFORM)
        assert min(r.extras["timeline_user_ways"]) >= 2
        assert min(r.extras["timeline_kernel_ways"]) >= 2


class TestReplayParity:
    def test_shared_16way_equals_partition_10_6_total_behavior(self, browser_stream_small):
        """Sanity: the equal-size partition sees exactly the same demand
        stream as the shared baseline (identical access totals)."""
        base = BaselineDesign().run(browser_stream_small, DEFAULT_PLATFORM)
        part = StaticPartitionDesign(user_ways=10, kernel_ways=6).run(
            browser_stream_small, DEFAULT_PLATFORM)
        assert base.l2_stats.accesses == part.l2_stats.accesses
        assert base.l2_stats.demand_accesses == part.l2_stats.demand_accesses

"""Unit tests for the workload suite definitions."""

import pytest

from repro.trace.generator import generate_trace
from repro.trace.workloads import (
    APP_NAMES,
    DEFAULT_TRACE_LENGTH,
    app_profile,
    default_suite,
    suite_trace,
)
from repro.types import Privilege


class TestSuiteDefinitions:
    def test_eight_apps(self):
        assert len(APP_NAMES) == 8

    def test_all_profiles_construct(self):
        for name in APP_NAMES:
            profile = app_profile(name)
            assert profile.name == name
            assert profile.description

    def test_unknown_app_raises(self):
        with pytest.raises(KeyError, match="unknown app"):
            app_profile("tiktok")

    def test_default_suite_order(self):
        suite = default_suite()
        assert tuple(p.name for p in suite) == APP_NAMES

    def test_profiles_have_both_privileges(self):
        for name in APP_NAMES:
            profile = app_profile(name)
            privs = {p.privilege for p in profile.phases}
            assert privs == {Privilege.USER, Privilege.KERNEL}

    def test_profiles_have_kernel_wake_phase(self):
        for name in APP_NAMES:
            profile = app_profile(name)
            assert profile.wake_phase is not None
            assert profile.phases[profile.wake_phase].privilege is Privilege.KERNEL

    def test_profile_cache_returns_same_object(self):
        assert app_profile("game") is app_profile("game")


class TestSuiteTraces:
    def test_suite_trace_cached(self):
        a = suite_trace("game", 5_000)
        b = suite_trace("game", 5_000)
        assert a is b

    def test_suite_trace_distinct_apps_differ(self):
        a = suite_trace("game", 5_000)
        b = suite_trace("music", 5_000)
        assert a.name != b.name

    def test_default_length_constant(self):
        assert DEFAULT_TRACE_LENGTH >= 100_000

    def test_every_app_has_plausible_kernel_fraction(self):
        for name in APP_NAMES:
            t = generate_trace(app_profile(name), 20_000, seed=0)
            assert 0.15 < t.kernel_fraction() < 0.75, name

    def test_apps_have_distinct_address_footprints(self):
        import numpy as np

        t1 = generate_trace(app_profile("browser"), 5_000, seed=0)
        t2 = generate_trace(app_profile("game"), 5_000, seed=0)
        assert not np.array_equal(t1.addrs, t2.addrs)

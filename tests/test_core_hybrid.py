"""Tests for the hybrid SRAM/STT partition design."""

import pytest

from repro.config import DEFAULT_PLATFORM
from repro.core import BaselineDesign, StaticPartitionDesign, multi_retention_design
from repro.core.hybrid import HybridPartitionDesign


class TestConstruction:
    def test_rejects_zero_ways(self):
        with pytest.raises(ValueError):
            HybridPartitionDesign(user_sram_ways=0)

    def test_default_capacity_matches_static(self):
        d = HybridPartitionDesign()
        assert sum(d.user_split) == 8
        assert sum(d.kernel_split) == 4


class TestBehaviour:
    def test_four_parts_reported(self, browser_stream_small):
        r = HybridPartitionDesign().run(browser_stream_small, DEFAULT_PLATFORM)
        names = {s.name for s in r.segments}
        assert names == {"user-sram", "user-stt", "kernel-sram", "kernel-stt"}

    def test_write_hot_blocks_reach_sram_parts(self, browser_stream_small):
        r = HybridPartitionDesign().run(browser_stream_small, DEFAULT_PLATFORM)
        sram_traffic = sum(s.stats.write_accesses + s.stats.fills
                           for s in r.segments if "sram" in s.name)
        assert sram_traffic > 0  # migrations happen

    def test_no_cross_privilege_evictions(self, browser_stream_small):
        r = HybridPartitionDesign().run(browser_stream_small, DEFAULT_PLATFORM)
        assert r.l2_stats.cross_privilege_evictions == 0

    def test_stats_invariants(self, browser_stream_small):
        r = HybridPartitionDesign().run(browser_stream_small, DEFAULT_PLATFORM)
        for seg in r.segments:
            seg.stats.check_invariants()

    def test_demand_accounting_exact(self, browser_stream_small):
        """Migrations add internal (non-demand) part accesses, but the
        demand view must match the stream exactly."""
        r = HybridPartitionDesign().run(browser_stream_small, DEFAULT_PLATFORM)
        assert r.l2_stats.demand_accesses == browser_stream_small.demand_count
        assert r.l2_stats.accesses >= len(browser_stream_small)

    def test_migration_after_threshold_writes(self, browser_stream_small):
        """A block migrates to SRAM once it proves write-intensive."""
        from repro.core.hybrid import _HybridSegment
        from repro.energy.technology import sram, stt_ram

        seg = _HybridSegment("t", DEFAULT_PLATFORM, 1, 3, sram(), stt_ram("medium"), "lru")
        seg.access(0x1000, False, 0, 0, True)    # demand fill -> STT
        assert seg.stt.contains(0x1000)
        seg.access(0x1000, True, 0, 1, False)    # 1st write: stays in STT
        assert seg.stt.contains(0x1000)
        assert seg.migrations == 0
        seg.access(0x1000, True, 0, 2, False)    # 2nd write: migrates
        assert seg.sram.contains(0x1000)
        assert not seg.stt.contains(0x1000)
        assert seg.migrations == 1


class TestComparative:
    def test_sits_between_sram_and_stt(self, browser_stream_small):
        base = BaselineDesign().run(browser_stream_small, DEFAULT_PLATFORM)
        sram_part = StaticPartitionDesign().run(browser_stream_small, DEFAULT_PLATFORM)
        hybrid = HybridPartitionDesign().run(browser_stream_small, DEFAULT_PLATFORM)
        stt = multi_retention_design().run(browser_stream_small, DEFAULT_PLATFORM)
        e = lambda r: r.l2_energy.total_j / base.l2_energy.total_j
        assert e(stt) < e(hybrid) < e(sram_part)

    def test_hybrid_writes_cheaper_than_all_stt_per_event(self, browser_stream_small):
        """The SRAM parts absorb write-backs at SRAM write energy."""
        hybrid = HybridPartitionDesign().run(browser_stream_small, DEFAULT_PLATFORM)
        stt = multi_retention_design().run(browser_stream_small, DEFAULT_PLATFORM)
        h_writes = sum(s.stats.total_writes for s in hybrid.segments)
        s_writes = sum(s.stats.total_writes for s in stt.segments)
        h_energy_per_write = hybrid.l2_energy.write_j / max(1, h_writes)
        s_energy_per_write = stt.l2_energy.write_j / max(1, s_writes)
        assert h_energy_per_write < s_energy_per_write * 1.4

"""Tests for the engine's job specifications and content keys."""

import pytest

from repro.config import DEFAULT_PLATFORM, platform_preset
from repro.engine.spec import (
    EXPERIMENT_TRACE_LENGTH,
    JobSpec,
    canonical_json,
    platform_fingerprint,
)


class TestJobSpec:
    def test_defaults(self):
        spec = JobSpec("baseline", "browser")
        assert spec.length == EXPERIMENT_TRACE_LENGTH
        assert spec.seed == 0
        assert spec.platform is DEFAULT_PLATFORM
        assert spec.design_kwargs == ()

    def test_unknown_design_rejected(self):
        with pytest.raises(ValueError, match="unknown design"):
            JobSpec("frobnicate", "browser")

    def test_nonpositive_length_rejected(self):
        with pytest.raises(ValueError, match="length"):
            JobSpec("baseline", "browser", length=0)

    def test_kwargs_dict_normalised_and_hashable(self):
        a = JobSpec("static-stt", "game", design_kwargs={"user_ways": 6, "kernel_ways": 2})
        b = JobSpec("static-stt", "game", design_kwargs={"kernel_ways": 2, "user_ways": 6})
        assert a == b
        assert hash(a) == hash(b)
        assert a.kwargs == {"user_ways": 6, "kernel_ways": 2}

    def test_non_scalar_kwarg_rejected(self):
        with pytest.raises(TypeError, match="JSON scalar"):
            JobSpec("baseline", "browser", design_kwargs={"geometry": [1, 2]})

    def test_label(self):
        spec = JobSpec("dynamic-stt", "maps", seed=3, design_kwargs={"policy": "fifo"})
        assert spec.label() == "dynamic-stt:maps:s3:policy=fifo"


class TestContentKey:
    def test_stable_across_instances(self):
        a = JobSpec("baseline", "browser", length=1000)
        b = JobSpec("baseline", "browser", length=1000)
        assert a.content_key == b.content_key

    def test_every_field_is_load_bearing(self):
        base = JobSpec("baseline", "browser", length=1000, seed=0)
        variants = [
            JobSpec("static-stt", "browser", length=1000, seed=0),
            JobSpec("baseline", "game", length=1000, seed=0),
            JobSpec("baseline", "browser", length=2000, seed=0),
            JobSpec("baseline", "browser", length=1000, seed=1),
            JobSpec("baseline", "browser", length=1000, platform=platform_preset("little")),
            JobSpec("baseline", "browser", length=1000, design_kwargs={"policy": "fifo"}),
        ]
        keys = {base.content_key} | {v.content_key for v in variants}
        assert len(keys) == len(variants) + 1

    def test_platform_fingerprint_sees_every_knob(self):
        assert platform_fingerprint(DEFAULT_PLATFORM) != platform_fingerprint(
            platform_preset("big")
        )

    def test_canonical_json_is_order_free(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

"""Unit tests for the structural array area/energy model."""

import pytest

from repro.config import CacheGeometry
from repro.energy.array_model import SRAM_CELL, STT_CELL, CellParams, estimate_array

KB = 1024


def geom(kb, ways=16):
    return CacheGeometry(kb * KB, ways)


class TestCellParams:
    def test_builtin_cells_valid(self):
        assert SRAM_CELL.cell_area_um2 > STT_CELL.cell_area_um2

    def test_rejects_non_positive_area(self):
        with pytest.raises(ValueError):
            CellParams("x", 0.0, 1.0, 1.0, 0.0, 1.0)

    def test_rejects_negative_leak(self):
        with pytest.raises(ValueError):
            CellParams("x", 1.0, 1.0, 1.0, -1.0, 1.0)


class TestTrends:
    def test_energy_grows_with_capacity(self):
        small = estimate_array(geom(256), SRAM_CELL)
        big = estimate_array(geom(1024), SRAM_CELL)
        assert big.read_energy_nj > small.read_energy_nj
        assert big.leakage_mw > small.leakage_mw
        assert big.area_mm2 > small.area_mm2

    def test_energy_scaling_is_sublinear(self):
        small = estimate_array(geom(256), SRAM_CELL)
        big = estimate_array(geom(1024), SRAM_CELL)
        # 4x capacity should cost much less than 4x read energy
        assert big.read_energy_nj < small.read_energy_nj * 3

    def test_sram_leakage_roughly_linear_in_bits(self):
        small = estimate_array(geom(256), SRAM_CELL)
        big = estimate_array(geom(1024), SRAM_CELL)
        assert big.leakage_mw / small.leakage_mw == pytest.approx(4.0, rel=0.35)

    def test_stt_density_advantage(self):
        sram = estimate_array(geom(1024), SRAM_CELL)
        stt = estimate_array(geom(1024), STT_CELL)
        assert sram.area_mm2 / stt.area_mm2 == pytest.approx(
            SRAM_CELL.cell_area_um2 / STT_CELL.cell_area_um2, rel=0.01)

    def test_stt_writes_cost_more_than_reads(self):
        stt = estimate_array(geom(1024), STT_CELL)
        assert stt.write_energy_nj > stt.read_energy_nj

    def test_sram_read_write_similar(self):
        sram = estimate_array(geom(1024), SRAM_CELL)
        assert sram.write_energy_nj == pytest.approx(sram.read_energy_nj, rel=0.3)

    def test_stt_leakage_below_sram(self):
        sram = estimate_array(geom(1024), SRAM_CELL)
        stt = estimate_array(geom(1024), STT_CELL)
        assert stt.leakage_mw < sram.leakage_mw * 0.5

    def test_more_ways_more_tag_energy(self):
        low = estimate_array(CacheGeometry(1024 * KB, 4), SRAM_CELL)
        high = estimate_array(CacheGeometry(1024 * KB, 32), SRAM_CELL)
        assert high.read_energy_nj > low.read_energy_nj

    def test_row_renders(self):
        row = estimate_array(geom(256), SRAM_CELL).row()
        assert len(row) == 5
        assert "256 KB" in row[0]


class TestConsistencyWithCalibratedModel:
    def test_relative_leakage_matches_technology_constants(self):
        """The structural model's SRAM:STT leakage ratio should be in
        the same regime as the calibrated constants (periphery keeps
        STT leakage well above zero but far below SRAM)."""
        from repro.energy.technology import sram, stt_ram

        sram_est = estimate_array(geom(1024), SRAM_CELL)
        stt_est = estimate_array(geom(1024), STT_CELL)
        structural_ratio = stt_est.leakage_mw / sram_est.leakage_mw
        calibrated_ratio = stt_ram("short").leakage_mw_per_mb / sram().leakage_mw_per_mb
        assert 0.05 < structural_ratio < 0.6
        assert 0.05 < calibrated_ratio < 0.6

"""Tests for the timeslice (app-switching) transform."""

import numpy as np
import pytest

from conftest import make_trace
from repro.trace.transform import timeslice
from repro.types import AccessKind, Privilege

L, U = AccessKind.LOAD, Privilege.USER


def dense_trace(name, base, n=100):
    """One access per tick at distinct addresses."""
    t = make_trace([(i, base + i * 64, L, U) for i in range(n)], name=name)
    return t


class TestTimeslice:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            timeslice([], 10)

    def test_rejects_bad_quantum(self):
        with pytest.raises(ValueError):
            timeslice([dense_trace("a", 0)], 0)

    def test_single_trace_roundtrip_content(self):
        src = dense_trace("a", 0, n=50)
        out = timeslice([src], quantum_ticks=10)
        assert len(out) == len(src)
        assert np.array_equal(np.sort(out.addrs), np.sort(src.addrs))

    def test_alternates_between_traces(self):
        a = dense_trace("a", 0, n=40)
        b = dense_trace("b", 1 << 20, n=40)
        out = timeslice([a, b], quantum_ticks=10)
        # first window from a, second from b
        first = out.records[:10]
        second = out.records[10:20]
        assert np.all(first["addr"] < (1 << 20))
        assert np.all(second["addr"] >= (1 << 20))

    def test_each_visit_advances_through_trace(self):
        a = dense_trace("a", 0, n=40)
        b = dense_trace("b", 1 << 20, n=40)
        out = timeslice([a, b], quantum_ticks=10)
        a_rows = out.records[out.records["addr"] < (1 << 20)]
        # a's content appears in original order, no repeats
        addrs = a_rows["addr"]
        assert np.all(np.diff(addrs.astype(np.int64)) > 0)

    def test_output_ticks_non_decreasing(self):
        a = dense_trace("a", 0, n=40)
        b = dense_trace("b", 1 << 20, n=40)
        out = timeslice([a, b], quantum_ticks=7)
        assert np.all(np.diff(out.ticks.astype(np.int64)) >= 0)

    def test_name_combines(self):
        out = timeslice([dense_trace("a", 0), dense_trace("b", 1 << 20)], 10)
        assert out.name == "a|b"

    def test_total_ticks_horizon(self):
        a = dense_trace("a", 0, n=100)
        out = timeslice([a], quantum_ticks=10, total_ticks=30)
        assert len(out) == 30

"""Failure-injection tests: corrupted inputs and misuse must fail loudly.

A library is production-quality when bad inputs produce clear errors,
not silent garbage.  These tests feed each entry point broken data.
"""

import numpy as np
import pytest

from conftest import make_trace
from repro.cache.hierarchy import L2Stream, l1_filter
from repro.cache.set_assoc import SetAssociativeCache
from repro.cache.stats import CacheStats
from repro.config import DEFAULT_PLATFORM, CacheGeometry
from repro.core import BaselineDesign, StaticPartitionDesign
from repro.trace.access import Trace
from repro.trace.io import load_trace, save_trace
from repro.types import TRACE_DTYPE, AccessKind, Privilege


class TestCorruptTraceFiles:
    def test_truncated_npz(self, tmp_path):
        t = make_trace([(0, 0, AccessKind.LOAD, Privilege.USER)])
        path = tmp_path / "t.npz"
        save_trace(t, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(Exception):  # zipfile/numpy error, not silence
            load_trace(path)

    def test_npz_missing_fields(self, tmp_path):
        path = tmp_path / "t.npz"
        np.savez_compressed(path, version=np.int64(1))
        with pytest.raises(KeyError):
            load_trace(path)

    def test_npz_wrong_dtype(self, tmp_path):
        path = tmp_path / "t.npz"
        np.savez_compressed(
            path,
            version=np.int64(1),
            name=np.bytes_(b"x"),
            instructions=np.int64(10),
            records=np.zeros(3, dtype=np.float64),
        )
        with pytest.raises(ValueError, match="dtype"):
            load_trace(path)

    def test_not_a_zip(self, tmp_path):
        path = tmp_path / "t.npz"
        path.write_bytes(b"this is not a trace")
        with pytest.raises(Exception):
            load_trace(path)


class TestMalformedStreams:
    def _stream(self, **overrides):
        n = 4
        fields = dict(
            name="x",
            ticks=np.arange(n, dtype=np.int64),
            addrs=np.zeros(n, dtype=np.uint64),
            privs=np.zeros(n, dtype=np.uint8),
            writes=np.zeros(n, dtype=bool),
            demand=np.ones(n, dtype=bool),
            instructions=100,
            trace_accesses=n,
            duration_ticks=n,
            l1i_stats=CacheStats(),
            l1d_stats=CacheStats(),
        )
        fields.update(overrides)
        return L2Stream(**fields)

    def test_empty_stream_runs_cleanly(self):
        empty = self._stream(
            ticks=np.array([], dtype=np.int64),
            addrs=np.array([], dtype=np.uint64),
            privs=np.array([], dtype=np.uint8),
            writes=np.array([], dtype=bool),
            demand=np.array([], dtype=bool),
            trace_accesses=0,
            duration_ticks=0,
        )
        r = BaselineDesign().run(empty, DEFAULT_PLATFORM)
        assert r.l2_stats.accesses == 0
        assert r.l2_energy.total_j >= 0.0

    def test_out_of_range_privilege_fails_loudly(self):
        bad = self._stream(privs=np.array([0, 1, 2, 0], dtype=np.uint8))
        with pytest.raises((IndexError, KeyError, ValueError)):
            StaticPartitionDesign().run(bad, DEFAULT_PLATFORM)


class TestEngineMisuse:
    def test_negative_way_resize(self):
        c = SetAssociativeCache(CacheGeometry(4096, 4))
        with pytest.raises(ValueError):
            c.resize_ways(-1, 0)

    def test_invalidate_absent_block_returns_none(self):
        c = SetAssociativeCache(CacheGeometry(4096, 4))
        assert c.invalidate(0x1234, 0) is None

    def test_stats_invariants_catch_corruption(self):
        st = CacheStats()
        st.accesses = 10
        st.hits = 8
        st.misses = 1  # corrupted: 8 + 1 != 10
        with pytest.raises(AssertionError):
            st.check_invariants()

    def test_trace_with_wrong_shape_records(self):
        records = np.zeros((2, 2), dtype=TRACE_DTYPE)
        with pytest.raises(Exception):
            Trace("x", records, 10).duration_ticks  # multi-dim records are invalid


class TestEmptyTraceThroughHierarchy:
    def test_single_access_trace(self):
        t = make_trace([(0, 0x40, AccessKind.LOAD, Privilege.USER)])
        stream = l1_filter(t, DEFAULT_PLATFORM)
        assert len(stream) == 1  # one compulsory miss
        r = BaselineDesign().run(stream, DEFAULT_PLATFORM)
        assert r.l2_stats.demand_misses == 1

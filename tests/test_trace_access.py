"""Unit tests for repro.trace.access (the Trace container)."""

import numpy as np
import pytest

from conftest import make_trace
from repro.trace.access import Trace
from repro.types import TRACE_DTYPE, AccessKind, Privilege


class TestConstruction:
    def test_empty_trace(self):
        t = make_trace([])
        assert len(t) == 0
        assert t.duration_ticks == 0

    def test_rejects_wrong_dtype(self):
        with pytest.raises(TypeError, match="TRACE_DTYPE"):
            Trace("x", np.zeros(4, dtype=np.uint64), 4)

    def test_rejects_fewer_instructions_than_accesses(self):
        records = np.zeros(4, dtype=TRACE_DTYPE)
        with pytest.raises(ValueError, match="instructions"):
            Trace("x", records, 2)

    def test_rejects_decreasing_ticks(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            make_trace([(5, 0, AccessKind.LOAD, Privilege.USER),
                        (3, 64, AccessKind.LOAD, Privilege.USER)])

    def test_equal_ticks_allowed(self):
        t = make_trace([(3, 0, AccessKind.LOAD, Privilege.USER),
                        (3, 64, AccessKind.LOAD, Privilege.USER)])
        assert len(t) == 2


class TestAccessors:
    def make(self):
        return make_trace([
            (0, 0x100, AccessKind.IFETCH, Privilege.USER),
            (2, 0x200, AccessKind.LOAD, Privilege.USER),
            (4, 0xC000_0100, AccessKind.STORE, Privilege.KERNEL),
            (9, 0x100, AccessKind.LOAD, Privilege.USER),
        ])

    def test_duration(self):
        assert self.make().duration_ticks == 10

    def test_columns(self):
        t = self.make()
        assert list(t.ticks) == [0, 2, 4, 9]
        assert t.addrs[2] == 0xC000_0100

    def test_privilege_mask(self):
        t = self.make()
        assert list(t.privilege_mask(Privilege.KERNEL)) == [False, False, True, False]

    def test_kind_mask(self):
        t = self.make()
        assert list(t.kind_mask(AccessKind.LOAD)) == [False, True, False, True]

    def test_kernel_fraction(self):
        assert self.make().kernel_fraction() == pytest.approx(0.25)

    def test_write_fraction(self):
        assert self.make().write_fraction() == pytest.approx(0.25)

    def test_empty_fractions_are_zero(self):
        t = make_trace([])
        assert t.kernel_fraction() == 0.0
        assert t.write_fraction() == 0.0

    def test_select(self):
        t = self.make()
        sub = t.select(t.privilege_mask(Privilege.USER))
        assert len(sub) == 3
        assert sub.kernel_fraction() == 0.0
        assert sub.instructions == t.instructions

    def test_head_shorter(self):
        t = self.make()
        h = t.head(2)
        assert len(h) == 2
        assert h.instructions <= t.instructions

    def test_head_longer_is_identity(self):
        t = self.make()
        assert t.head(100) is t

    def test_describe_mentions_name_and_counts(self):
        d = self.make().describe()
        assert "t" in d and "4" in d

"""Tests for the multi-core shared-L2 extension."""

import numpy as np
import pytest

from repro.config import DEFAULT_PLATFORM
from repro.core import BaselineDesign, StaticPartitionDesign
from repro.multicore import kernel_block_sharing, merge_streams, multicore_stream

LENGTH = 30_000


@pytest.fixture(scope="module")
def duo():
    return multicore_stream(("browser", "game"), LENGTH)


class TestMergeStreams:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_streams([])

    def test_tick_order(self, duo):
        assert np.all(np.diff(duo.ticks) >= 0)

    def test_row_count_is_sum(self, duo):
        from repro.cache.hierarchy import l1_filter
        from repro.trace.transform import remap_user_space
        from repro.trace.workloads import suite_trace

        a = l1_filter(remap_user_space(suite_trace("browser", LENGTH, seed=0), 0),
                      DEFAULT_PLATFORM)
        b = l1_filter(remap_user_space(suite_trace("game", LENGTH, seed=1), 1),
                      DEFAULT_PLATFORM)
        assert len(duo.ticks) == len(a.ticks) + len(b.ticks)

    def test_instructions_sum(self, duo):
        assert duo.instructions > LENGTH * 2  # both cores' instructions

    def test_name_combines(self, duo):
        assert duo.name == "browser+game"


class TestAddressSpaces:
    def test_user_spaces_disjoint(self, duo):
        user = duo.addrs[duo.privs == 0]
        core0 = user[user < (1 << 34)]
        core1 = user[user >= (1 << 34)]
        assert len(core0) and len(core1)

    def test_kernel_space_shared(self, duo):
        sharing = kernel_block_sharing(duo)
        assert sharing > 0.5  # most kernel blocks touched by both cores

    def test_single_core_stream_matches_plain(self):
        solo = multicore_stream(("game",), LENGTH)
        assert solo.name == "game"
        assert 0.0 < solo.kernel_share() < 1.0


class TestDesignsOnMulticore:
    def test_designs_run(self, duo):
        base = BaselineDesign().run(duo, DEFAULT_PLATFORM)
        part = StaticPartitionDesign().run(duo, DEFAULT_PLATFORM)
        base.l2_stats.check_invariants()
        part.l2_stats.check_invariants()
        assert part.l2_stats.cross_privilege_evictions == 0

    def test_kernel_share_stays_high(self, duo):
        assert duo.kernel_share() > 0.3

    def test_core_scaling_asymmetry(self):
        """More cores: user blocks contend (ASID-disjoint) while kernel
        blocks benefit from cross-core sharing — the asymmetry the
        shared kernel address space creates."""
        from repro.types import Privilege

        solo = multicore_stream(("browser",), 120_000)
        quad = multicore_stream(("browser", "game", "social", "music"), 120_000)
        st_solo = BaselineDesign().run(solo, DEFAULT_PLATFORM).l2_stats
        st_quad = BaselineDesign().run(quad, DEFAULT_PLATFORM).l2_stats
        assert st_quad.miss_rate_of(Privilege.USER) > st_solo.miss_rate_of(Privilege.USER)
        assert st_quad.miss_rate_of(Privilege.KERNEL) < st_solo.miss_rate_of(Privilege.KERNEL)

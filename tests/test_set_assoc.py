"""Unit tests for the set-associative cache engine."""

import pytest

from repro.cache.set_assoc import REFRESH_MODES, SetAssociativeCache
from repro.config import CacheGeometry
from repro.types import Privilege

U, K = int(Privilege.USER), int(Privilege.KERNEL)


def one_set_cache(ways=4, **kw):
    """A single-set cache: every address maps to set 0."""
    return SetAssociativeCache(CacheGeometry(ways * 64, ways), "lru", **kw)


class TestConstruction:
    def test_refresh_modes_constant(self):
        assert REFRESH_MODES == ("none", "invalidate", "rewrite")

    def test_rejects_unknown_refresh_mode(self):
        with pytest.raises(ValueError, match="refresh_mode"):
            one_set_cache(refresh_mode="sometimes")

    def test_rejects_refresh_without_retention(self):
        with pytest.raises(ValueError, match="retention"):
            one_set_cache(refresh_mode="rewrite")

    def test_rejects_retention_without_refresh(self):
        with pytest.raises(ValueError, match="refresh_mode"):
            one_set_cache(retention_ticks=100)

    def test_rejects_non_positive_retention(self):
        with pytest.raises(ValueError, match="retention_ticks"):
            one_set_cache(retention_ticks=0, refresh_mode="invalidate")

    def test_repr_mentions_geometry(self):
        c = one_set_cache()
        assert "4-way" in repr(c) or "0 KB" in repr(c)


class TestHitsAndMisses:
    def test_first_access_misses(self):
        c = one_set_cache()
        assert not c.access(0x0, False, U, 0).hit

    def test_second_access_hits(self):
        c = one_set_cache()
        c.access(0x0, False, U, 0)
        assert c.access(0x0, False, U, 1).hit

    def test_same_block_different_offset_hits(self):
        c = one_set_cache()
        c.access(0x40, False, U, 0)
        assert c.access(0x7F, False, U, 1).hit

    def test_different_blocks_miss(self):
        c = one_set_cache()
        c.access(0x0, False, U, 0)
        assert not c.access(0x40 * 5, False, U, 1).hit

    def test_set_indexing(self):
        c = SetAssociativeCache(CacheGeometry(2 * 2 * 64, 2))  # 2 sets, 2 ways
        c.access(0x0, False, U, 0)    # set 0
        c.access(0x40, False, U, 1)   # set 1
        c.access(0x80, False, U, 2)   # set 0
        c.access(0xC0, False, U, 3)   # set 1
        assert c.stats.misses == 4
        # set 0 full with blocks 0x0 and 0x80; both still hit
        assert c.access(0x0, False, U, 4).hit
        assert c.access(0x80, False, U, 5).hit


class TestEvictionAndWriteback:
    def test_lru_eviction(self):
        c = one_set_cache(ways=2)
        c.access(0x0, False, U, 0)
        c.access(0x40 * 16, False, U, 1)
        c.access(0x40 * 32, False, U, 2)  # evicts 0x0
        assert not c.access(0x0, False, U, 3).hit

    def test_dirty_eviction_reports_writeback(self):
        c = one_set_cache(ways=1)
        c.access(0x0, True, U, 0)  # dirty fill
        r = c.access(0x40 * 16, False, U, 1)
        assert r.writeback
        assert r.victim_addr == 0x0
        assert r.victim_priv == U
        assert c.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        c = one_set_cache(ways=1)
        c.access(0x0, False, U, 0)
        r = c.access(0x40 * 16, False, U, 1)
        assert not r.writeback
        # the victim is still identified (prefetch tracking retires on any
        # eviction), only the writeback flag distinguishes dirty victims
        assert r.victim_addr == 0x0

    def test_write_hit_marks_dirty(self):
        c = one_set_cache(ways=1)
        c.access(0x0, False, U, 0)
        c.access(0x0, True, U, 1)
        r = c.access(0x40 * 16, False, U, 2)
        assert r.writeback

    def test_victim_addr_reconstruction_multi_set(self):
        c = SetAssociativeCache(CacheGeometry(4 * 64, 1))  # 4 sets, direct-mapped
        addr = 0x40 * 2 + 0  # set 2
        c.access(addr, True, U, 0)
        r = c.access(addr + 4 * 64, False, U, 1)  # same set, different tag
        assert r.victim_addr == addr


class TestCrossPrivilegeAccounting:
    def test_cross_eviction_counted(self):
        c = one_set_cache(ways=1)
        c.access(0x0, False, U, 0)
        c.access(0x40 * 16, False, K, 1)  # kernel evicts user block
        assert c.stats.evictions_cross[U][K] == 1
        assert c.stats.cross_privilege_evictions == 1

    def test_same_privilege_eviction_on_diagonal(self):
        c = one_set_cache(ways=1)
        c.access(0x0, False, U, 0)
        c.access(0x40 * 16, False, U, 1)
        assert c.stats.evictions_cross[U][U] == 1
        assert c.stats.cross_privilege_evictions == 0

    def test_access_share(self):
        c = one_set_cache()
        c.access(0x0, False, U, 0)
        c.access(0x40 * 16, False, K, 1)
        assert c.stats.access_share_of(Privilege.KERNEL) == pytest.approx(0.5)


class TestDemandVsWriteback:
    def test_writeback_access_not_demand(self):
        c = one_set_cache()
        c.access(0x0, True, U, 0, demand=False)
        assert c.stats.demand_accesses == 0
        assert c.stats.misses == 1
        assert c.stats.demand_misses == 0

    def test_writeback_allocates(self):
        c = one_set_cache()
        c.access(0x0, True, U, 0, demand=False)
        assert c.access(0x0, False, U, 1).hit


class TestStatsInvariants:
    def test_invariants_after_random_traffic(self):
        import numpy as np

        rng = np.random.default_rng(0)
        c = SetAssociativeCache(CacheGeometry(4096, 4))
        for i in range(3000):
            addr = int(rng.integers(0, 512)) * 64
            c.access(addr, bool(rng.integers(0, 2)), int(rng.integers(0, 2)), i,
                     demand=bool(rng.integers(0, 2)))
        c.stats.check_invariants()
        assert c.stats.accesses == 3000

    def test_miss_rate_properties(self):
        c = one_set_cache()
        c.access(0x0, False, U, 0)
        c.access(0x0, False, U, 1)
        assert c.stats.miss_rate == pytest.approx(0.5)
        assert c.stats.hit_rate == pytest.approx(0.5)
        assert c.stats.miss_rate_of(Privilege.USER) == pytest.approx(0.5)
        assert c.stats.miss_rate_of(Privilege.KERNEL) == 0.0


class TestRetentionInvalidate:
    def test_block_expires_after_retention(self):
        c = one_set_cache(retention_ticks=100, refresh_mode="invalidate")
        c.access(0x0, False, U, 0)
        r = c.access(0x0, False, U, 200)  # beyond retention
        assert not r.hit
        assert r.expired
        assert c.stats.expiry_invalidations == 1

    def test_block_survives_within_retention(self):
        c = one_set_cache(retention_ticks=100, refresh_mode="invalidate")
        c.access(0x0, False, U, 0)
        assert c.access(0x0, False, U, 99).hit

    def test_write_restores_retention_clock(self):
        c = one_set_cache(retention_ticks=100, refresh_mode="invalidate")
        c.access(0x0, False, U, 0)
        c.access(0x0, True, U, 90)   # store rewrites the cells
        assert c.access(0x0, False, U, 150).hit  # 150-90 < 100

    def test_read_does_not_restore_retention(self):
        c = one_set_cache(retention_ticks=100, refresh_mode="invalidate")
        c.access(0x0, False, U, 0)
        c.access(0x0, False, U, 90)  # read hit: cells not rewritten
        assert not c.access(0x0, False, U, 150).hit  # 150-0 > 100

    def test_dirty_expiry_charges_writeback(self):
        c = one_set_cache(retention_ticks=100, refresh_mode="invalidate")
        c.access(0x0, True, U, 0)
        c.access(0x0, False, U, 300)
        assert c.stats.expiry_writebacks == 1

    def test_expired_frame_preferred_over_victim(self):
        c = one_set_cache(ways=2, retention_ticks=100, refresh_mode="invalidate")
        c.access(0x0, False, U, 0)          # will expire
        c.access(0x40 * 16, False, U, 150)  # still alive at t=200
        c.access(0x40 * 32, False, U, 200)  # should reclaim expired 0x0 frame
        assert c.access(0x40 * 16, False, U, 201).hit  # live block survived
        assert c.stats.evictions == 0

    def test_finalize_drains_expired_dirty(self):
        c = one_set_cache(retention_ticks=100, refresh_mode="invalidate")
        c.access(0x0, True, U, 0)
        c.finalize(1000)
        assert c.stats.expiry_writebacks == 1


class TestRetentionRewrite:
    def test_refresh_keeps_block_alive(self):
        c = one_set_cache(retention_ticks=100, refresh_mode="rewrite")
        c.access(0x0, False, U, 0)
        assert c.access(0x0, False, U, 500).hit  # refresh prevented decay

    def test_refresh_writes_charged_lazily(self):
        c = one_set_cache(retention_ticks=100, refresh_mode="rewrite")
        c.access(0x0, False, U, 0)
        c.access(0x0, False, U, 400)
        # period = 80; 400/80 = 5 refreshes
        assert c.stats.refresh_writes == 5

    def test_finalize_charges_outstanding_refreshes(self):
        c = one_set_cache(retention_ticks=100, refresh_mode="rewrite")
        c.access(0x0, False, U, 0)
        c.finalize(800)
        assert c.stats.refresh_writes == 10

    def test_no_refresh_within_first_period(self):
        c = one_set_cache(retention_ticks=100, refresh_mode="rewrite")
        c.access(0x0, False, U, 0)
        c.access(0x0, False, U, 50)
        assert c.stats.refresh_writes == 0

    def test_total_writes_includes_refresh(self):
        c = one_set_cache(retention_ticks=100, refresh_mode="rewrite")
        c.access(0x0, True, U, 0)
        c.access(0x0, False, U, 400)
        assert c.stats.total_writes == 1 + 1 + c.stats.refresh_writes  # fill + write hit? (fill was the write)


class TestResizeWays:
    def test_shrink_compacts_blocks(self):
        c = one_set_cache(ways=4)
        c.access(0x0, False, U, 0)
        c.access(0x40 * 16, False, U, 1)
        displaced = c.resize_ways(2, 10)
        assert displaced == 0  # both fit after compaction
        assert c.access(0x0, False, U, 11).hit
        assert c.access(0x40 * 16, False, U, 12).hit

    def test_shrink_evicts_overflow(self):
        c = one_set_cache(ways=4)
        for i in range(4):
            c.access(0x40 * 16 * i, True, U, i)
        displaced = c.resize_ways(2, 10)
        assert displaced == 2
        assert c.stats.writebacks == 2  # dirty overflow written back

    def test_grow_preserves_contents(self):
        c = one_set_cache(ways=2)
        c.access(0x0, False, U, 0)
        c.resize_ways(4, 5)
        assert c.access(0x0, False, U, 6).hit
        assert c.ways == 4

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            one_set_cache().resize_ways(0, 0)

    def test_size_bytes_tracks_resize(self):
        c = one_set_cache(ways=4)
        c.resize_ways(2, 0)
        assert c.size_bytes == 2 * 64


class TestPoweredWays:
    def test_gated_way_contents_hidden(self):
        c = one_set_cache(ways=4)
        for i in range(4):
            c.access(0x40 * 16 * i, False, U, i)  # fills ways 0..3
        c.set_powered_ways(1, 10)
        # at most one of the four blocks can still hit
        hits = sum(c.access(0x40 * 16 * i, False, U, 20 + i).hit for i in range(4))
        assert hits <= 1

    def test_regrow_restores_retained_blocks(self):
        c = one_set_cache(ways=4)
        c.access(0x0, False, U, 0)
        c.access(0x40 * 16, False, U, 1)
        c.set_powered_ways(1, 5)   # gate most ways (no accesses while gated)
        c.set_powered_ways(4, 9)   # wake
        hits = sum(c.access(a, False, U, 10).hit for a in (0x0, 0x40 * 16))
        assert hits == 2  # non-volatile: both survive the gate/ungate cycle

    def test_gating_flushes_dirty(self):
        c = one_set_cache(ways=4)
        c.access(0x0, True, U, 0)  # dirty in way 0... LRU fills way order 0
        c.access(0x40 * 16, True, U, 1)
        flushes = c.set_powered_ways(1, 5)
        assert flushes >= 1
        assert c.stats.writebacks >= 1

    def test_volatile_gating_loses_contents(self):
        c = one_set_cache(ways=4, retains_when_gated=False)
        for i in range(4):
            c.access(0x40 * 16 * i, False, U, i)
        c.set_powered_ways(1, 5)
        c.set_powered_ways(4, 6)
        hits = sum(c.access(0x40 * 16 * i, False, U, 10 + i).hit for i in range(4))
        assert hits <= 1  # only the never-gated way can hit

    def test_gated_miss_counted(self):
        c = one_set_cache(ways=4)
        for i in range(4):
            c.access(0x40 * 16 * i, False, U, i)
        c.set_powered_ways(1, 5)
        for i in range(4):
            c.access(0x40 * 16 * i, False, U, 10 + i)
        assert c.gated_misses >= 2

    def test_powered_bytes(self):
        c = one_set_cache(ways=4)
        c.set_powered_ways(2, 0)
        assert c.powered_bytes == 2 * 64
        assert c.size_bytes == 4 * 64

    def test_rejects_out_of_range(self):
        c = one_set_cache(ways=4)
        with pytest.raises(ValueError):
            c.set_powered_ways(0, 0)
        with pytest.raises(ValueError):
            c.set_powered_ways(5, 0)

    def test_fill_goes_to_powered_region(self):
        c = one_set_cache(ways=4)
        c.set_powered_ways(2, 0)
        for i in range(8):
            c.access(0x40 * 16 * i, False, U, i)
        # working set of 2 most recent fits the 2 powered ways
        assert c.access(0x40 * 16 * 7, False, U, 100).hit


class TestGatedWayAccounting:
    """Exact counter accounting of `set_powered_ways` and gated misses."""

    def test_gate_flush_accounting_retained(self):
        c = one_set_cache(ways=4)  # retains_when_gated=True
        c.access(0x000, True, U, 0)   # dirty, way 0 (stays powered)
        c.access(0x400, True, K, 1)   # dirty, way 1 (gated below)
        c.access(0x800, False, U, 2)  # clean, way 2
        c.access(0xC00, False, U, 3)  # clean, way 3
        flushes = c.set_powered_ways(1, 10)
        assert flushes == 1  # only the dirty block in a gated way
        assert c.stats.gate_flushes == 1
        assert c.stats.writebacks == 1
        # the flush cleared the dirty bit: re-gating costs nothing
        c.set_powered_ways(4, 11)
        assert c.set_powered_ways(1, 12) == 0
        assert c.stats.gate_flushes == 1
        assert c.stats.writebacks == 1

    def test_gating_clean_blocks_costs_nothing(self):
        c = one_set_cache(ways=4)
        for i in range(4):
            c.access(0x400 * i, False, U, i)
        assert c.set_powered_ways(1, 10) == 0
        assert c.stats.gate_flushes == 0
        assert c.stats.writebacks == 0

    def test_volatile_gating_flushes_and_invalidates(self):
        c = one_set_cache(ways=4, retains_when_gated=False)
        c.access(0x000, False, U, 0)
        c.access(0x400, True, U, 1)
        c.access(0x800, True, U, 2)
        c.access(0xC00, False, U, 3)
        flushes = c.set_powered_ways(1, 10)
        assert flushes == 2  # both dirty blocks in the gated ways
        assert c.stats.gate_flushes == 2
        assert c.stats.writebacks == 2
        # volatile cells: the gated blocks are gone, not just hidden
        assert c.occupancy() == pytest.approx(0.25)
        c.set_powered_ways(4, 11)
        hits = sum(c.access(0x400 * i, False, U, 20 + i).hit for i in range(4))
        assert hits == 1  # only the never-gated way 0 survived

    def test_gated_miss_cleans_mapping_without_duplicates(self):
        c = one_set_cache(ways=4)  # retained: mappings stay after gating
        for i in range(4):
            c.access(0x400 * i, False, U, i)
        c.set_powered_ways(2, 5)
        before = c.gated_misses
        r = c.access(0x800, False, U, 10)  # resident in gated way 2
        assert not r.hit
        assert c.gated_misses == before + 1
        # the refill landed in the powered region; waking the gated way
        # must not resurrect a second copy of the same tag
        c.set_powered_ways(4, 11)
        assert c.access(0x800, False, U, 12).hit
        assert c.stats.accesses == c.stats.hits + c.stats.misses
        c.stats.check_invariants()

    def test_no_gated_miss_when_volatile(self):
        # With retains_when_gated=False the mapping dies at gating time,
        # so a later access is an ordinary miss, not a gated miss.
        c = one_set_cache(ways=4, retains_when_gated=False)
        for i in range(4):
            c.access(0x400 * i, False, U, i)
        c.set_powered_ways(1, 5)
        assert not c.access(0x800, False, U, 10).hit
        assert c.gated_misses == 0

    def test_expired_dirty_gating_charges_expiry_not_flush(self):
        c = one_set_cache(ways=4, retention_ticks=10, refresh_mode="invalidate")
        c.access(0x000, True, U, 0)  # way 0: stays powered
        c.access(0x400, True, U, 1)  # way 1: gated below, expired by then
        flushes = c.set_powered_ways(1, 100)
        # the gated dirty block decayed first: its drain is an expiry
        # write-back (retention accounting), not a gate flush
        assert flushes == 0
        assert c.stats.gate_flushes == 0
        assert c.stats.expiry_writebacks == 1
        assert c.stats.writebacks == 0


class TestEpochCounters:
    def test_begin_epoch_resets(self):
        c = one_set_cache()
        c.access(0x0, False, U, 0)
        c.begin_epoch()
        assert c.epoch_accesses == 0
        assert c.epoch_misses == 0

    def test_rank_hits_recorded_for_lru(self):
        c = one_set_cache(ways=2)
        c.access(0x0, False, U, 0)
        c.access(0x0, False, U, 1)  # MRU hit, rank 0
        assert c.epoch_rank_hits[0] == 1

    def test_occupancy(self):
        c = one_set_cache(ways=4)
        assert c.occupancy() == 0.0
        c.access(0x0, False, U, 0)
        assert c.occupancy() == pytest.approx(0.25)

    def test_contains(self):
        c = one_set_cache()
        c.access(0x0, False, U, 0)
        assert c.contains(0x3F)
        assert not c.contains(0x40 * 16)

"""Tests for the persistent memory-mapped L2-stream cache.

Covers the ISSUE-5 contract: bit-identical round trips for every suite
app, corruption tolerance (truncated bundle -> silent rebuild +
eviction), stale-schema invalidation, design results identical whether
streams are fresh, cached or memory-mapped — on both engines — and the
executor/runner integration (each unique stream built once, memos
holding mmap-backed views instead of heap copies).
"""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.cache.hierarchy import STREAM_COLUMNS, l1_filter
from repro.config import DEFAULT_PLATFORM, platform_preset
from repro.core.designs import make_design
from repro.engine import JobSpec, StreamCache, run_jobs
from repro.engine.executor import _worker_stream
from repro.engine.spec import SCHEMA_VERSION, stream_key
from repro.engine.streamcache import default_stream_cache
from repro.obs.metrics import REGISTRY
from repro.trace.workloads import APP_NAMES, suite_trace

SHORT = 20_000


def build_stream(app, length=SHORT, seed=0, platform=DEFAULT_PLATFORM):
    return l1_filter(suite_trace(app, length, seed), platform)


@pytest.fixture
def cache(tmp_path):
    return StreamCache(tmp_path)


@pytest.fixture
def fresh_cache_env(tmp_path, monkeypatch):
    """Empty default cache dir + cleared in-process stream memos."""
    from repro.experiments.runner import canonical_result, experiment_stream

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    _worker_stream.cache_clear()
    experiment_stream.cache_clear()
    canonical_result.cache_clear()
    yield tmp_path
    _worker_stream.cache_clear()
    experiment_stream.cache_clear()
    canonical_result.cache_clear()


class TestKeying:
    def test_stream_key_ignores_design(self):
        a = JobSpec("baseline", "browser", length=SHORT)
        b = JobSpec("dynamic-stt", "browser", length=SHORT)
        assert a.stream_key == b.stream_key
        assert a.content_key != b.content_key

    def test_stream_key_sensitive_to_every_field(self):
        base = stream_key("browser", SHORT, 0, DEFAULT_PLATFORM)
        assert stream_key("game", SHORT, 0, DEFAULT_PLATFORM) != base
        assert stream_key("browser", SHORT + 1, 0, DEFAULT_PLATFORM) != base
        assert stream_key("browser", SHORT, 1, DEFAULT_PLATFORM) != base
        assert stream_key("browser", SHORT, 0, platform_preset("little")) != base
        assert stream_key("browser", SHORT, 0, DEFAULT_PLATFORM, "fifo") != base


class TestRoundTrip:
    @pytest.mark.parametrize("app", APP_NAMES)
    def test_bit_identity_every_suite_app(self, cache, app):
        fresh = build_stream(app)
        cache.put(fresh, app, SHORT, 0, DEFAULT_PLATFORM)
        loaded = cache.get(app, SHORT, 0, DEFAULT_PLATFORM)
        assert loaded is not None
        for name, dtype in STREAM_COLUMNS:
            a, b = getattr(fresh, name), getattr(loaded, name)
            assert a.dtype == b.dtype == dtype
            np.testing.assert_array_equal(a, b)
        assert loaded.name == fresh.name
        assert loaded.instructions == fresh.instructions
        assert loaded.trace_accesses == fresh.trace_accesses
        assert loaded.duration_ticks == fresh.duration_ticks
        assert loaded.l1i_stats.to_dict() == fresh.l1i_stats.to_dict()
        assert loaded.l1d_stats.to_dict() == fresh.l1d_stats.to_dict()

    def test_loaded_columns_are_memory_mapped(self, cache):
        cache.put(build_stream("browser"), "browser", SHORT, 0, DEFAULT_PLATFORM)
        loaded = cache.get("browser", SHORT, 0, DEFAULT_PLATFORM)
        for name, _ in STREAM_COLUMNS:
            assert isinstance(getattr(loaded, name), np.memmap), name

    def test_get_or_build_returns_mapped_views(self, cache):
        stream = cache.get_or_build("game", SHORT, 0, DEFAULT_PLATFORM)
        assert isinstance(stream.ticks, np.memmap)
        assert cache.stats().entries == 1

    def test_miss_on_empty_cache(self, cache):
        assert cache.get("browser", SHORT, 0, DEFAULT_PLATFORM) is None
        assert not cache.has("browser", SHORT, 0, DEFAULT_PLATFORM)
        assert cache.counters()["misses"] == 1

    def test_keys_do_not_collide(self, cache):
        cache.put(build_stream("browser"), "browser", SHORT, 0, DEFAULT_PLATFORM)
        assert cache.get("browser", SHORT, 1, DEFAULT_PLATFORM) is None
        assert cache.get("browser", SHORT, 0, platform_preset("big")) is None


class TestDurability:
    def _bundle(self, cache, app="browser"):
        key = stream_key(app, SHORT, 0, DEFAULT_PLATFORM)
        return cache._bundle_dir(key)

    def test_truncated_column_evicts_and_rebuilds(self, cache):
        fresh = build_stream("browser")
        cache.put(fresh, "browser", SHORT, 0, DEFAULT_PLATFORM)
        bundle = self._bundle(cache)
        ticks = bundle / "ticks.npy"
        ticks.write_bytes(ticks.read_bytes()[: ticks.stat().st_size // 2])
        assert cache.get("browser", SHORT, 0, DEFAULT_PLATFORM) is None
        assert not bundle.exists(), "corrupt bundle must be evicted"
        assert cache.counters()["corrupt_evictions"] == 1
        # a silent rebuild publishes a healthy bundle again
        rebuilt = cache.get_or_build("browser", SHORT, 0, DEFAULT_PLATFORM)
        np.testing.assert_array_equal(rebuilt.ticks, fresh.ticks)
        assert bundle.exists()

    def test_garbage_meta_evicts(self, cache):
        cache.put(build_stream("browser"), "browser", SHORT, 0, DEFAULT_PLATFORM)
        bundle = self._bundle(cache)
        (bundle / "meta.json").write_text("{not json")
        assert cache.get("browser", SHORT, 0, DEFAULT_PLATFORM) is None
        assert not bundle.exists()

    def test_stale_schema_version_invalidates(self, cache):
        cache.put(build_stream("browser"), "browser", SHORT, 0, DEFAULT_PLATFORM)
        bundle = self._bundle(cache)
        meta = json.loads((bundle / "meta.json").read_text())
        meta["schema"] = SCHEMA_VERSION - 1
        (bundle / "meta.json").write_text(json.dumps(meta))
        assert cache.get("browser", SHORT, 0, DEFAULT_PLATFORM) is None
        assert not bundle.exists()
        assert cache.counters()["corrupt_evictions"] == 1

    def test_clear_removes_bundles_and_history(self, cache):
        cache.put(build_stream("browser"), "browser", SHORT, 0, DEFAULT_PLATFORM)
        cache.put(build_stream("game"), "game", SHORT, 0, DEFAULT_PLATFORM)
        cache.flush_counters()
        assert cache.clear() == 2
        assert cache.stats().entries == 0
        assert cache.counters()["writes"] == 0

    def test_concurrent_publish_keeps_first_bundle(self, cache):
        fresh = build_stream("browser")
        first = cache.put(fresh, "browser", SHORT, 0, DEFAULT_PLATFORM)
        # a second writer racing on the same key must not corrupt or
        # duplicate the published bundle
        second = cache.put(fresh, "browser", SHORT, 0, DEFAULT_PLATFORM)
        assert first == second
        assert cache.stats().entries == 1
        loaded = cache.get("browser", SHORT, 0, DEFAULT_PLATFORM)
        np.testing.assert_array_equal(loaded.ticks, fresh.ticks)


class TestResultIdentity:
    """Design results must not depend on where the stream came from."""

    @pytest.mark.parametrize("fastsim", ["1", "0"])
    @pytest.mark.parametrize("design", ["baseline", "static-stt", "dynamic-stt"])
    def test_fresh_vs_mapped_streams(self, cache, monkeypatch, fastsim, design):
        monkeypatch.setenv("REPRO_FASTSIM", fastsim)
        fresh = build_stream("social")
        cache.put(fresh, "social", SHORT, 0, DEFAULT_PLATFORM)
        mapped = cache.get("social", SHORT, 0, DEFAULT_PLATFORM)
        built = cache.get_or_build("social", SHORT, 0, DEFAULT_PLATFORM)
        reference = make_design(design).run(fresh, DEFAULT_PLATFORM).to_dict()
        assert make_design(design).run(mapped, DEFAULT_PLATFORM).to_dict() == reference
        assert make_design(design).run(built, DEFAULT_PLATFORM).to_dict() == reference


class TestExecutorIntegration:
    GRID = [("baseline", "browser"), ("baseline", "game"),
            ("static-stt", "browser"), ("static-stt", "game")]

    def _specs(self):
        return [JobSpec(d, a, length=SHORT) for d, a in self.GRID]

    def test_cold_batch_builds_each_stream_once(self, fresh_cache_env):
        before = REGISTRY.counters.get("streamcache.build", 0)
        run_jobs(self._specs(), jobs=1, store=None)
        builds = REGISTRY.counters.get("streamcache.build", 0) - before
        assert builds == 2  # browser + game, not one per job
        persisted = StreamCache(fresh_cache_env).counters()
        assert persisted["writes"] == 2
        assert persisted["misses"] == 2

    def test_warm_batch_maps_instead_of_building(self, fresh_cache_env):
        run_jobs(self._specs(), jobs=1, store=None)
        _worker_stream.cache_clear()
        before = REGISTRY.counters.get("streamcache.build", 0)
        hits_before = REGISTRY.counters.get("streamcache.hit", 0)
        run_jobs(self._specs(), jobs=1, store=None)
        assert REGISTRY.counters.get("streamcache.build", 0) == before
        assert REGISTRY.counters.get("streamcache.hit", 0) - hits_before == 2

    def test_parallel_results_identical_to_serial(self, fresh_cache_env):
        serial = run_jobs(self._specs(), jobs=1, store=None)
        _worker_stream.cache_clear()
        parallel = run_jobs(self._specs(), jobs=2, store=None)
        for a, b in zip(serial, parallel):
            assert a.spec == b.spec
            assert a.result.to_dict() == b.result.to_dict()

    def test_parallel_cold_grid_publishes_each_stream_once(self, fresh_cache_env):
        run_jobs(self._specs(), jobs=2, store=None)
        persisted = StreamCache(fresh_cache_env).counters()
        assert persisted["writes"] == 2, persisted
        assert persisted["misses"] == 2, persisted
        assert StreamCache(fresh_cache_env).stats().entries == 2

    def test_worker_stream_memo_is_mmap_backed(self, fresh_cache_env):
        stream = _worker_stream("browser", SHORT, 0, DEFAULT_PLATFORM)
        assert isinstance(stream.ticks, np.memmap)
        assert _worker_stream("browser", SHORT, 0, DEFAULT_PLATFORM) is stream

    def test_disabled_cache_builds_in_process(self, fresh_cache_env, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DISABLE", "1")
        assert default_stream_cache() is None
        stream = _worker_stream("browser", SHORT, 0, DEFAULT_PLATFORM)
        assert not isinstance(stream.ticks, np.memmap)
        _worker_stream.cache_clear()


class TestRunnerIntegration:
    def test_experiment_stream_is_mmap_backed(self, fresh_cache_env):
        from repro.experiments.runner import experiment_stream

        stream = experiment_stream("game", SHORT)
        assert isinstance(stream.ticks, np.memmap)
        # the memo still dedupes within the process
        assert experiment_stream("game", SHORT) is stream

    def test_canonical_result_unchanged_by_stream_source(self, fresh_cache_env):
        from repro.experiments.runner import canonical_result, experiment_stream

        via_cache = canonical_result("static-stt", "music", SHORT).to_dict()
        experiment_stream.cache_clear()
        canonical_result.cache_clear()
        fresh = make_design("static-stt").run(
            build_stream("music"), DEFAULT_PLATFORM
        ).to_dict()
        assert via_cache == fresh


def run_cli(*argv):
    from repro.cli import main

    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCli:
    def test_cache_stats_reports_streams(self, fresh_cache_env):
        run_cli("sweep", "--designs", "baseline", "--apps", "video",
                "--length", "8000", "--no-progress")
        code, out = run_cli("cache", "stats")
        assert code == 0
        assert "result store" in out
        assert "stream cache" in out

    def test_cache_stats_json(self, fresh_cache_env):
        code, out = run_cli("cache", "stats", "--json")
        assert code == 0
        payload = json.loads(out)
        assert set(payload) == {"results", "streams"}
        assert payload["streams"]["entries"] == 0

    def test_cache_clear_selectors(self, fresh_cache_env):
        run_cli("sweep", "--designs", "baseline", "--apps", "video",
                "--length", "8000", "--no-progress")
        code, out = run_cli("cache", "clear", "--streams")
        assert code == 0
        assert "stream bundle(s)" in out
        assert "cached result(s)" not in out
        _, out = run_cli("cache", "stats", "--json")
        payload = json.loads(out)
        assert payload["streams"]["entries"] == 0
        assert payload["results"]["entries"] == 1
        code, out = run_cli("cache", "clear")  # default clears both
        assert "cached result(s)" in out and "stream bundle(s)" in out


class TestObsWiring:
    def test_stream_load_span_and_counters_in_run_log(self, fresh_cache_env, tmp_path):
        from repro import obs
        from repro.obs.summary import load_run, summarize

        log = tmp_path / "run.jsonl"
        previous = obs.set_recorder(obs.JsonlRecorder(log))
        try:
            run_jobs([JobSpec("baseline", "reader", length=SHORT)], jobs=1, store=None)
            obs.recorder().metrics()
        finally:
            rec = obs.set_recorder(previous)
            rec.close()
        summary = summarize(load_run(log))
        names = {p.name for p in summary.phases}
        assert "stream.load" in names
        assert summary.counters.get("streamcache.build", 0) >= 1
        assert summary.counters.get("streamcache.miss", 0) >= 1
        assert summary.counters.get("streamcache.write", 0) >= 1

"""Unit tests for trace transformations."""

import numpy as np
import pytest

from conftest import make_trace
from repro.trace.transform import concat, remap_user_space, shift_ticks, slice_window
from repro.types import KERNEL_SPACE_START, AccessKind, Privilege

L, U, K = AccessKind.LOAD, Privilege.USER, Privilege.KERNEL


def sample_trace():
    return make_trace([
        (0, 0x1000, L, U),
        (10, 0x2000, L, U),
        (20, KERNEL_SPACE_START + 0x100, L, K),
        (30, 0x1000, AccessKind.STORE, U),
    ])


class TestSliceWindow:
    def test_keeps_window(self):
        t = slice_window(sample_trace(), 5, 25)
        assert len(t) == 2
        assert list(t.ticks) == [5, 15]  # rebased

    def test_empty_window(self):
        t = slice_window(sample_trace(), 100, 200)
        assert len(t) == 0

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            slice_window(sample_trace(), 20, 10)

    def test_full_window_is_whole_trace(self):
        src = sample_trace()
        t = slice_window(src, 0, 1000)
        assert len(t) == len(src)


class TestShiftTicks:
    def test_shift(self):
        t = shift_ticks(sample_trace(), 100)
        assert list(t.ticks) == [100, 110, 120, 130]

    def test_zero_shift_identity_values(self):
        t = shift_ticks(sample_trace(), 0)
        assert np.array_equal(t.ticks, sample_trace().ticks)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            shift_ticks(sample_trace(), -1)


class TestConcat:
    def test_second_plays_after_first(self):
        a, b = sample_trace(), sample_trace()
        t = concat(a, b, gap_ticks=50)
        assert len(t) == 8
        assert t.ticks[4] == a.duration_ticks + 50
        assert t.instructions == a.instructions + b.instructions

    def test_name_combines(self):
        assert concat(sample_trace(), sample_trace()).name == "t+t"

    def test_rejects_negative_gap(self):
        with pytest.raises(ValueError):
            concat(sample_trace(), sample_trace(), gap_ticks=-1)

    def test_ticks_non_decreasing(self):
        t = concat(sample_trace(), sample_trace())
        assert np.all(np.diff(t.ticks.astype(np.int64)) >= 0)


class TestRemapUserSpace:
    def test_asid_zero_is_identity(self):
        src = sample_trace()
        assert remap_user_space(src, 0) is src

    def test_user_addresses_move(self):
        t = remap_user_space(sample_trace(), asid=2)
        user = t.records["priv"] == int(U)
        assert np.all(t.addrs[user] >= 2 * (1 << 34))

    def test_kernel_addresses_fixed(self):
        t = remap_user_space(sample_trace(), asid=3)
        kernel = t.records["priv"] == int(K)
        assert t.addrs[kernel][0] == KERNEL_SPACE_START + 0x100

    def test_distinct_asids_disjoint(self):
        a = remap_user_space(sample_trace(), 1)
        b = remap_user_space(sample_trace(), 2)
        ua = set(a.addrs[a.records["priv"] == int(U)].tolist())
        ub = set(b.addrs[b.records["priv"] == int(U)].tolist())
        assert not (ua & ub)

    def test_rejects_negative_asid(self):
        with pytest.raises(ValueError):
            remap_user_space(sample_trace(), -1)

    def test_rejects_small_stride(self):
        with pytest.raises(ValueError, match="stride"):
            remap_user_space(sample_trace(), 1, stride=1 << 20)

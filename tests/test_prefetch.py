"""Unit tests for the L2 prefetchers."""

import pytest

from repro.cache.prefetch import (
    SequentialPrefetcher,
    StridePrefetcher,
    make_prefetcher,
)
from repro.types import CACHE_BLOCK_SIZE

B = CACHE_BLOCK_SIZE


class TestFactory:
    def test_known_names(self):
        assert make_prefetcher("nextline").name == "nextline"
        assert make_prefetcher("stride").name == "stride"

    def test_degree_forwarded(self):
        assert make_prefetcher("nextline", degree=4).degree == 4

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown prefetcher"):
            make_prefetcher("oracle")


class TestSequential:
    def test_next_lines(self):
        p = SequentialPrefetcher(degree=2)
        assert p.on_miss(0x1000) == [0x1000 + B, 0x1000 + 2 * B]

    def test_block_aligns_input(self):
        p = SequentialPrefetcher()
        assert p.on_miss(0x1007) == [0x1000 + B]

    def test_rejects_zero_degree(self):
        with pytest.raises(ValueError):
            SequentialPrefetcher(degree=0)


class TestStride:
    def test_needs_confirmation(self):
        p = StridePrefetcher(degree=1)
        assert p.on_miss(0x0) == []          # first touch: learn address
        assert p.on_miss(2 * B) == []        # learn delta
        assert p.on_miss(4 * B) == [6 * B]   # delta repeated: prefetch

    def test_broken_stride_resets(self):
        p = StridePrefetcher(degree=1)
        p.on_miss(0x0)
        p.on_miss(2 * B)
        p.on_miss(4 * B)
        assert p.on_miss(11 * B) == []  # stride broken

    def test_negative_stride(self):
        p = StridePrefetcher(degree=1)
        p.on_miss(10 * B)
        p.on_miss(8 * B)
        out = p.on_miss(6 * B)
        assert out == [4 * B]

    def test_never_prefetches_negative_addresses(self):
        p = StridePrefetcher(degree=3)
        p.on_miss(4 * B)
        p.on_miss(2 * B)
        out = p.on_miss(0)
        assert all(a >= 0 for a in out)

    def test_pages_tracked_independently(self):
        p = StridePrefetcher(degree=1)
        page2 = 1 << 12
        p.on_miss(0x0)
        p.on_miss(page2)          # different page: own entry
        p.on_miss(B)
        p.on_miss(page2 + B)
        assert p.on_miss(2 * B) == [3 * B]
        assert p.on_miss(page2 + 2 * B) == [page2 + 3 * B]

    def test_table_bounded(self):
        p = StridePrefetcher(table_size=4)
        for page in range(20):
            p.on_miss(page << 12)
        assert len(p._table) <= 4

    def test_reset(self):
        p = StridePrefetcher(degree=1)
        p.on_miss(0x0)
        p.on_miss(B)
        p.reset()
        assert p.on_miss(2 * B) == []  # history gone


class TestDesignIntegration:
    def test_nextline_reduces_streaming_misses(self, browser_stream_small):
        from repro.config import DEFAULT_PLATFORM
        from repro.core import BaselineDesign

        plain = BaselineDesign().run(browser_stream_small, DEFAULT_PLATFORM)
        pf = BaselineDesign().run(
            browser_stream_small, DEFAULT_PLATFORM,
            prefetcher=SequentialPrefetcher())
        assert pf.l2_stats.demand_miss_rate < plain.l2_stats.demand_miss_rate
        assert pf.extras["prefetch_issued"] > 0
        assert 0 <= pf.extras["prefetch_useful"] <= pf.extras["prefetch_issued"]

    def test_prefetch_respects_partition_isolation(self, browser_stream_small):
        from repro.config import DEFAULT_PLATFORM
        from repro.core import StaticPartitionDesign

        r = StaticPartitionDesign().run(
            browser_stream_small, DEFAULT_PLATFORM,
            prefetcher=SequentialPrefetcher())
        assert r.l2_stats.cross_privilege_evictions == 0
        r.l2_stats.check_invariants()

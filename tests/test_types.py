"""Unit tests for repro.types."""

import numpy as np
import pytest

from repro.types import (
    CACHE_BLOCK_SIZE,
    KERNEL_SPACE_START,
    TRACE_DTYPE,
    AccessKind,
    Privilege,
    block_address,
    is_kernel_address,
)


class TestPrivilege:
    def test_values_are_stable(self):
        assert int(Privilege.USER) == 0
        assert int(Privilege.KERNEL) == 1

    def test_labels(self):
        assert Privilege.USER.label == "user"
        assert Privilege.KERNEL.label == "kernel"

    def test_constructible_from_int(self):
        assert Privilege(1) is Privilege.KERNEL


class TestAccessKind:
    def test_write_kinds(self):
        assert AccessKind.STORE.is_write
        assert AccessKind.WRITEBACK.is_write

    def test_read_kinds(self):
        assert not AccessKind.IFETCH.is_write
        assert not AccessKind.LOAD.is_write

    def test_values_fit_uint8(self):
        for kind in AccessKind:
            assert 0 <= int(kind) < 256


class TestTraceDtype:
    def test_field_names(self):
        assert TRACE_DTYPE.names == ("tick", "addr", "kind", "priv")

    def test_tick_and_addr_are_64_bit(self):
        assert TRACE_DTYPE["tick"] == np.uint64
        assert TRACE_DTYPE["addr"] == np.uint64


class TestBlockAddress:
    def test_aligns_down(self):
        assert block_address(0x1234) == 0x1234 & ~63

    def test_already_aligned(self):
        assert block_address(0x40) == 0x40

    def test_custom_block_size(self):
        assert block_address(0x1234, block_size=128) == 0x1200

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            block_address(0x1234, block_size=96)

    def test_array_input(self):
        addrs = np.array([0, 63, 64, 65], dtype=np.uint64)
        out = block_address(addrs)
        assert list(out) == [0, 0, 64, 64]


class TestKernelAddress:
    def test_boundary(self):
        assert not is_kernel_address(KERNEL_SPACE_START - 1)
        assert is_kernel_address(KERNEL_SPACE_START)

    def test_array_input(self):
        addrs = np.array([0x1000, KERNEL_SPACE_START + 0x1000], dtype=np.uint64)
        assert list(is_kernel_address(addrs)) == [False, True]

    def test_block_size_constant_is_64(self):
        assert CACHE_BLOCK_SIZE == 64

"""Smoke tests: every example script runs end to end.

Examples are documentation that executes; a broken example is a broken
promise.  Each runs in a subprocess with a reduced trace length.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

# (script, extra argv) — lengths kept small for CI speed
CASES = [
    ("quickstart.py", ["30000"]),
    ("design_space_exploration.py", ["30000"]),
    ("custom_workload.py", ["30000"]),
    ("retention_tuning.py", ["30000"]),
    ("multicore_sharing.py", ["20000"]),
    ("external_trace.py", []),
    ("diagnostics.py", ["30000"]),
]


def run_example(script: str, args: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


@pytest.mark.parametrize("script,args", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, args):
    result = run_example(script, args)
    assert result.returncode == 0, result.stderr[-2000:]
    assert len(result.stdout) > 100  # it printed its artifact


def test_all_examples_are_covered():
    """Every example in the directory has a smoke test (reproduce_paper
    is exempt: it is the full-scale artifact run exercised by the
    benchmark suite)."""
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    covered = {script for script, _ in CASES} | {"reproduce_paper.py"}
    assert on_disk == covered

"""Tests for the report rendering helpers (incl. bar charts)."""

import pytest

from repro.experiments.report import format_bars, format_percent, format_series, format_table


class TestFormatBars:
    def test_longest_bar_spans_width(self):
        out = format_bars("t", [("a", 1.0), ("b", 0.5)], width=10)
        lines = out.splitlines()
        assert lines[1].count("#") == 10
        assert lines[2].count("#") == 5

    def test_labels_aligned(self):
        out = format_bars("t", [("short", 1.0), ("longer-label", 0.5)])
        lines = out.splitlines()
        assert lines[1].startswith("short        ")  # padded to longest label

    def test_values_printed(self):
        out = format_bars("t", [("a", 0.123)], value_format="{:.2f}")
        assert "0.12" in out

    def test_zero_values_ok(self):
        out = format_bars("t", [("a", 0.0), ("b", 0.0)])
        assert "a" in out and "b" in out

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            format_bars("t", [("a", -1.0)])

    def test_empty_items(self):
        assert format_bars("just title", []) == "just title"


class TestFormatTableEdgeCases:
    def test_all_left_aligned(self):
        out = format_table("t", ["a", "b"], [["x", "y"]], align_left_cols=2)
        assert "x" in out

    def test_numbers_right_aligned(self):
        out = format_table("t", ["name", "v"], [["a", 5], ["b", 123]])
        lines = out.splitlines()
        assert lines[-2].endswith("123")

    def test_wide_cells_expand_columns(self):
        out = format_table("t", ["n", "v"], [["very-long-label", 1]])
        assert "very-long-label" in out

    def test_percent_digits(self):
        assert format_percent(0.123456, digits=3) == "12.346%"

    def test_series_roundtrip(self):
        out = format_series("s", "size", "rate", [("1 KB", "10%")])
        assert "1 KB" in out and "10%" in out

"""Tests for the persistent result store and the result codec."""

import json

import pytest

from repro.core.designs import DESIGN_NAMES
from repro.core.result import DesignResult
from repro.engine.executor import execute_spec
from repro.engine.spec import JobSpec
from repro.engine.store import ResultStore, default_store

#: Short but non-trivial: long enough that every design touches refresh,
#: eviction and privilege-split counters.
LENGTH = 12_000


@pytest.fixture(scope="module")
def canonical_results():
    """One freshly simulated result per canonical design (module-cached)."""
    return {
        name: execute_spec(JobSpec(name, "browser", length=LENGTH))
        for name in DESIGN_NAMES
    }


class TestCodecRoundTrip:
    @pytest.mark.parametrize("design", DESIGN_NAMES)
    def test_exact_round_trip(self, canonical_results, design):
        result = canonical_results[design]
        restored = DesignResult.from_dict(result.to_dict())
        assert restored == result
        # field-level checks so a failure names the broken layer
        assert restored.timing == result.timing
        assert restored.dram_j == result.dram_j
        assert restored.extras == result.extras
        for got, want in zip(restored.segments, result.segments):
            assert got.stats == want.stats
            assert got.energy == want.energy
            assert got.byte_seconds == want.byte_seconds

    def test_dict_form_is_json_clean(self, canonical_results):
        for result in canonical_results.values():
            json.dumps(result.to_dict(), allow_nan=False)

    def test_unserialisable_extras_raise(self, canonical_results):
        from dataclasses import replace

        broken = replace(canonical_results["baseline"], extras={"model": object()})
        with pytest.raises(TypeError, match="extras"):
            broken.to_dict()


class TestResultStore:
    def test_miss_then_hit(self, tmp_path, canonical_results):
        store = ResultStore(tmp_path)
        spec = JobSpec("baseline", "browser", length=LENGTH)
        assert store.get(spec) is None
        store.put(spec, canonical_results["baseline"])
        assert spec in store
        assert store.get(spec) == canonical_results["baseline"]

    def test_specs_do_not_collide(self, tmp_path, canonical_results):
        store = ResultStore(tmp_path)
        store.put(JobSpec("baseline", "browser", length=LENGTH),
                  canonical_results["baseline"])
        assert store.get(JobSpec("baseline", "browser", length=LENGTH, seed=1)) is None
        assert store.get(JobSpec("static-stt", "browser", length=LENGTH)) is None

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path, canonical_results):
        store = ResultStore(tmp_path)
        spec = JobSpec("baseline", "browser", length=LENGTH)
        path = store.put(spec, canonical_results["baseline"])
        path.write_text("{ truncated garba")
        assert store.get(spec) is None
        assert not path.exists()

    def test_schema_mismatch_is_a_miss(self, tmp_path, canonical_results):
        store = ResultStore(tmp_path)
        spec = JobSpec("baseline", "browser", length=LENGTH)
        path = store.put(spec, canonical_results["baseline"])
        payload = json.loads(path.read_text())
        payload["schema"] = -1
        path.write_text(json.dumps(payload))
        assert store.get(spec) is None

    def test_stats_and_clear(self, tmp_path, canonical_results):
        store = ResultStore(tmp_path)
        for i, (name, result) in enumerate(canonical_results.items()):
            store.put(JobSpec(name, "browser", length=LENGTH), result)
        stats = store.stats()
        assert stats.entries == len(canonical_results)
        assert stats.total_bytes > 0
        assert store.clear() == len(canonical_results)
        assert store.stats().entries == 0

    def test_no_tmp_droppings_after_put(self, tmp_path, canonical_results):
        store = ResultStore(tmp_path)
        store.put(JobSpec("baseline", "browser", length=LENGTH),
                  canonical_results["baseline"])
        assert not list(tmp_path.rglob("*.tmp"))


class TestDefaultStore:
    def test_honours_cache_dir_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        store = default_store()
        assert store is not None
        assert store.root == tmp_path / "elsewhere"

    def test_disable_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DISABLE", "1")
        assert default_store() is None

"""Unit tests for trace persistence."""

import numpy as np
import pytest

from conftest import make_trace
from repro.trace.generator import generate_trace
from repro.trace.io import load_trace, save_trace
from repro.trace.workloads import app_profile
from repro.types import AccessKind, Privilege


class TestRoundTrip:
    def test_small_trace(self, tmp_path):
        t = make_trace([(0, 0x40, AccessKind.LOAD, Privilege.USER),
                        (3, 0xC000_0000, AccessKind.STORE, Privilege.KERNEL)],
                       name="mini")
        path = tmp_path / "mini.npz"
        save_trace(t, path)
        back = load_trace(path)
        assert back.name == "mini"
        assert back.instructions == t.instructions
        assert np.array_equal(back.records, t.records)

    def test_generated_trace(self, tmp_path):
        t = generate_trace(app_profile("game"), 2_000, seed=9)
        path = tmp_path / "game.npz"
        save_trace(t, path)
        back = load_trace(path)
        assert np.array_equal(back.records, t.records)
        assert back.instructions == t.instructions

    def test_unicode_name(self, tmp_path):
        t = make_trace([(0, 0, AccessKind.LOAD, Privilege.USER)], name="café")
        path = tmp_path / "u.npz"
        save_trace(t, path)
        assert load_trace(path).name == "café"


class TestErrors:
    def test_bad_version_rejected(self, tmp_path):
        t = make_trace([(0, 0, AccessKind.LOAD, Privilege.USER)])
        path = tmp_path / "t.npz"
        save_trace(t, path)
        data = dict(np.load(path))
        data["version"] = np.int64(99)
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="version"):
            load_trace(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace(tmp_path / "nope.npz")

"""Property-based tests for the extension substrates."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.prefetch import SequentialPrefetcher, StridePrefetcher
from repro.dram import DRAMModel
from repro.trace.transform import timeslice
from repro.types import CACHE_BLOCK_SIZE


@given(st.lists(st.tuples(st.integers(0, 1 << 20), st.booleans()), min_size=1, max_size=200))
@settings(max_examples=60, deadline=None)
def test_dram_latency_bounded_and_stats_consistent(accesses):
    d = DRAMModel()
    cfg = d.config
    tick = 0
    for addr, is_write in accesses:
        lat = d.access(addr * 64, tick, is_write)
        assert cfg.t_row_hit <= lat <= cfg.t_row_miss + cfg.t_bank_busy
        tick += 7
    st_ = d.stats
    assert st_.row_hits + st_.row_misses == st_.accesses
    assert st_.reads + st_.writes == st_.accesses
    assert st_.total_latency >= st_.accesses * cfg.t_row_hit


@given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=100),
       st.integers(min_value=1, max_value=4))
@settings(max_examples=60, deadline=None)
def test_sequential_prefetcher_always_next_lines(addrs, degree):
    p = SequentialPrefetcher(degree)
    for addr in addrs:
        out = p.on_miss(addr * 64)
        assert len(out) == degree
        base = addr * 64
        for i, target in enumerate(out, start=1):
            assert target == base + i * CACHE_BLOCK_SIZE


@given(st.lists(st.integers(0, 255), min_size=3, max_size=120))
@settings(max_examples=60, deadline=None)
def test_stride_prefetches_follow_observed_delta(blocks):
    """Whatever the stride prefetcher proposes must continue the
    arithmetic progression of the last two misses on that page."""
    p = StridePrefetcher(degree=2)
    last: dict[int, int] = {}
    prev_delta: dict[int, int] = {}
    for b in blocks:
        addr = b * CACHE_BLOCK_SIZE  # all within a few pages
        page = addr >> 12
        out = p.on_miss(addr)
        if out:
            delta = addr - last[page]
            assert delta == prev_delta[page]
            expected = [addr + delta * i for i in range(1, 3)]
            assert out == [a for a in expected if a >= 0]
        if page in last:
            prev_delta[page] = addr - last[page]
        last[page] = addr


@given(
    st.lists(st.integers(1, 50), min_size=2, max_size=40),
    st.integers(min_value=2, max_value=30),
)
@settings(max_examples=50, deadline=None)
def test_timeslice_preserves_per_trace_order(gaps, quantum):
    """Each input trace's accesses appear in their original relative
    order in the sliced output."""
    from conftest import make_trace
    from repro.types import AccessKind, Privilege

    ticks = np.cumsum(gaps)
    a = make_trace([(int(t), 0x1000 + i * 64, AccessKind.LOAD, Privilege.USER)
                    for i, t in enumerate(ticks)], name="a")
    b = make_trace([(int(t), 0x100_0000 + i * 64, AccessKind.LOAD, Privilege.USER)
                    for i, t in enumerate(ticks)], name="b")
    out = timeslice([a, b], quantum)
    a_addrs = out.addrs[out.addrs < 0x100_0000]
    b_addrs = out.addrs[out.addrs >= 0x100_0000]
    assert np.all(np.diff(a_addrs.astype(np.int64)) > 0)
    assert np.all(np.diff(b_addrs.astype(np.int64)) > 0)
    assert np.all(np.diff(out.ticks.astype(np.int64)) >= 0)


@given(st.lists(st.tuples(st.integers(0, 63), st.booleans(), st.integers(0, 1)),
                min_size=1, max_size=250))
@settings(max_examples=50, deadline=None)
def test_hybrid_segment_never_duplicates_blocks(accs):
    """A block must never be resident in both parts of a hybrid segment."""
    from repro.config import DEFAULT_PLATFORM
    from repro.core.hybrid import _HybridSegment
    from repro.energy.technology import sram, stt_ram

    seg = _HybridSegment("t", DEFAULT_PLATFORM, 1, 3, sram(), stt_ram("medium"), "lru")
    for i, (block, is_write, priv) in enumerate(accs):
        addr = block * 64
        seg.access(addr, is_write, priv, i, True)
        assert not (seg.sram.contains(addr) and seg.stt.contains(addr))

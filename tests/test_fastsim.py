"""Differential verification of the vectorized fast-path kernel.

The fast kernel (:mod:`repro.cache.fastsim`) promises *bit-identical*
``CacheStats`` against the per-access reference engine inside its
envelope.  This file is that promise, tested three ways:

1. the randomized differential harness (:mod:`repro.cache.diffsim`)
   sweeps trace x geometry x retention configurations;
2. the production entry points (``l1_filter`` and the fixed L2 designs)
   are replayed through both engines and compared field by field;
3. the dispatch layer is pinned down: what qualifies, what falls back,
   what ``engine="fast"`` rejects, and the ``REPRO_FASTSIM`` kill switch;
4. the dynamic partition design's epoch-chunked kernel is swept over
   randomized controller x technology x burst-shape configurations and
   compared on the *whole* ``DesignResult`` (timelines and resize
   counts included), plus its own dispatch rules.
"""

import numpy as np
import pytest

from repro.cache import fastsim
from repro.cache.diffsim import (
    assert_case_equal,
    assert_dynamic_case_equal,
    sample_case,
    sample_dynamic_case,
)
from repro.cache.hierarchy import l1_filter
from repro.cache.set_assoc import SetAssociativeCache
from repro.config import DEFAULT_PLATFORM, CacheGeometry
from repro.core.baseline import BaselineDesign
from repro.core.multi_retention import multi_retention_design
from repro.core.static_partition import StaticPartitionDesign
from repro.trace.access import Trace
from repro.types import TRACE_DTYPE, AccessKind, Privilege

from conftest import make_trace, sequential_accesses

# The PR's acceptance floor is >= 20 randomized configurations; 24 covers
# both refresh modes (even seeds replay retention "none", odd seeds
# "invalidate") across the full geometry grid in diffsim.sample_case.
DIFF_SEEDS = range(24)


# ----------------------------------------------------------------------
# 1. randomized differential harness


@pytest.mark.parametrize("seed", DIFF_SEEDS)
def test_kernel_matches_reference(seed):
    assert_case_equal(sample_case(seed))


def test_kernel_matches_reference_without_demand_column():
    """The no-demand specialization (the bench-shaped call) is exact too."""
    case = sample_case(3)
    geometry = case.geometry
    rng = np.random.default_rng(99)
    n = 2000
    addrs = (rng.integers(0, 64, size=n) * geometry.block_size).astype(np.uint64)
    privs = rng.integers(0, 2, size=n).astype(np.uint8)
    writes = rng.integers(0, 2, size=n) == 1
    ticks = np.arange(n, dtype=np.int64)

    cache = SetAssociativeCache(geometry, "lru")
    for tick, (addr, isw, priv) in enumerate(
        zip(addrs.tolist(), writes.tolist(), privs.tolist())
    ):
        cache.access(addr, isw, priv, tick)

    stats, events = fastsim.simulate_trace(geometry, ticks, addrs, privs, writes)
    assert events is None
    assert stats.to_dict() == cache.stats.to_dict()


def test_kernel_empty_trace():
    geometry = CacheGeometry(4096, 4)
    empty = np.zeros(0, dtype=np.int64)
    stats, events = fastsim.simulate_trace(
        geometry, empty, empty.astype(np.uint64), empty, empty.astype(bool)
    )
    assert stats.accesses == 0 and stats.misses == 0
    assert events is None


def test_kernel_rejects_unsupported_refresh_mode():
    geometry = CacheGeometry(4096, 4)
    empty = np.zeros(0, dtype=np.uint64)
    with pytest.raises(ValueError, match="refresh modes"):
        fastsim.simulate_trace(geometry, empty, empty, empty, empty,
                               refresh_mode="rewrite")
    with pytest.raises(ValueError, match="retention_ticks"):
        fastsim.simulate_trace(geometry, empty, empty, empty, empty,
                               refresh_mode="invalidate")


# ----------------------------------------------------------------------
# 2. production entry points


def _assert_streams_identical(ref, fast):
    for col in ("ticks", "addrs", "privs", "writes", "demand"):
        a, b = getattr(ref, col), getattr(fast, col)
        assert a.dtype == b.dtype, col
        assert np.array_equal(a, b), col
    assert ref.l1i_stats.to_dict() == fast.l1i_stats.to_dict()
    assert ref.l1d_stats.to_dict() == fast.l1d_stats.to_dict()
    assert ref.instructions == fast.instructions
    assert ref.trace_accesses == fast.trace_accesses
    assert ref.duration_ticks == fast.duration_ticks


def test_fast_l1_filter_matches_reference(browser_trace_small):
    ref = l1_filter(browser_trace_small, DEFAULT_PLATFORM, engine="reference")
    fast = l1_filter(browser_trace_small, DEFAULT_PLATFORM, engine="fast")
    _assert_streams_identical(ref, fast)


def test_fast_l1_filter_tiny_traces(tiny_platform):
    # Dirty write-backs: stores that alias in a 2-way L1D set.
    entries = sequential_accesses(6, kind=AccessKind.STORE)
    entries += [(10 + i, i * 64, AccessKind.LOAD, Privilege.KERNEL) for i in range(6)]
    entries += [(20 + i, 4096 + i * 64, AccessKind.IFETCH, Privilege.USER) for i in range(4)]
    entries.sort(key=lambda e: e[0])
    trace = make_trace(entries)
    ref = l1_filter(trace, tiny_platform, engine="reference")
    fast = l1_filter(trace, tiny_platform, engine="fast")
    _assert_streams_identical(ref, fast)


def test_fast_l1_filter_empty_trace(tiny_platform):
    trace = Trace("empty", np.zeros(0, dtype=TRACE_DTYPE), 0)
    ref = l1_filter(trace, tiny_platform, engine="reference")
    fast = l1_filter(trace, tiny_platform, engine="fast")
    _assert_streams_identical(ref, fast)


@pytest.mark.parametrize(
    "design_factory",
    [BaselineDesign, StaticPartitionDesign, multi_retention_design],
    ids=["baseline", "static", "static-stt"],
)
def test_fixed_designs_match_reference(design_factory, browser_stream_small):
    design = design_factory()
    ref = design.run(browser_stream_small, DEFAULT_PLATFORM, engine="reference")
    fast = design.run(browser_stream_small, DEFAULT_PLATFORM, engine="fast")
    ref_d, fast_d = ref.to_dict(), fast.to_dict()
    assert ref_d["extras"].pop("sim_engine") == "reference"
    assert fast_d["extras"].pop("sim_engine") == "fastsim"
    assert ref_d == fast_d


# ----------------------------------------------------------------------
# 3. dispatch layer


def test_auto_engine_uses_fast_kernel(browser_stream_small):
    result = BaselineDesign().run(browser_stream_small, DEFAULT_PLATFORM)
    assert result.extras["sim_engine"] == "fastsim"


def test_auto_falls_back_for_prefetcher(browser_stream_small):
    from repro.cache.prefetch import make_prefetcher

    result = BaselineDesign().run(
        browser_stream_small, DEFAULT_PLATFORM,
        prefetcher=make_prefetcher("nextline"),
    )
    assert result.extras["sim_engine"] == "reference"


def test_auto_falls_back_for_dram_model(browser_stream_small):
    from repro.dram import DRAMModel

    result = BaselineDesign().run(
        browser_stream_small, DEFAULT_PLATFORM, dram_model=DRAMModel()
    )
    assert result.extras["sim_engine"] == "reference"


def test_auto_falls_back_for_non_lru_policy(browser_stream_small):
    result = BaselineDesign(policy="plru").run(browser_stream_small, DEFAULT_PLATFORM)
    assert result.extras["sim_engine"] == "reference"


def test_fast_engine_raises_when_disqualified(browser_stream_small):
    from repro.cache.prefetch import make_prefetcher

    with pytest.raises(ValueError, match="fast"):
        BaselineDesign().run(
            browser_stream_small, DEFAULT_PLATFORM,
            prefetcher=make_prefetcher("nextline"), engine="fast",
        )
    with pytest.raises(ValueError, match="fast"):
        BaselineDesign(policy="plru").run(
            browser_stream_small, DEFAULT_PLATFORM, engine="fast"
        )


def test_fast_l1_filter_rejects_non_lru(browser_trace_small):
    with pytest.raises(ValueError, match="lru"):
        l1_filter(browser_trace_small, DEFAULT_PLATFORM, policy="plru", engine="fast")


def test_bad_engine_name_rejected(browser_trace_small, browser_stream_small):
    with pytest.raises(ValueError, match="engine"):
        l1_filter(browser_trace_small, DEFAULT_PLATFORM, engine="turbo")
    with pytest.raises(ValueError, match="engine"):
        BaselineDesign().run(browser_stream_small, DEFAULT_PLATFORM, engine="turbo")


def test_env_kill_switch(browser_stream_small, monkeypatch):
    monkeypatch.setenv("REPRO_FASTSIM", "0")
    assert not fastsim.enabled()
    result = BaselineDesign().run(browser_stream_small, DEFAULT_PLATFORM)
    assert result.extras["sim_engine"] == "reference"
    monkeypatch.setenv("REPRO_FASTSIM", "1")
    assert fastsim.enabled()


def test_supports_cache_envelope():
    geometry = CacheGeometry(8192, 4)
    assert fastsim.supports_cache(SetAssociativeCache(geometry, "lru"))
    assert not fastsim.supports_cache(SetAssociativeCache(geometry, "plru"))
    assert not fastsim.supports_cache(
        SetAssociativeCache(geometry, "lru", retention_ticks=100, refresh_mode="rewrite")
    )
    assert not fastsim.supports_cache(
        SetAssociativeCache(
            geometry, "lru", retention_ticks=100, refresh_mode="invalidate",
            retention_distribution="exponential",
        )
    )
    assert not fastsim.supports_cache(
        SetAssociativeCache(geometry, "lru", drowsy_window=50)
    )
    gated = SetAssociativeCache(geometry, "lru")
    gated.set_powered_ways(2, tick=0)
    assert not fastsim.supports_cache(gated)
    warm = SetAssociativeCache(geometry, "lru")
    warm.access(0, False, 0, 0)
    assert not fastsim.supports_cache(warm)


# ----------------------------------------------------------------------
# 4. the dynamic design's epoch-chunked kernel


@pytest.mark.parametrize("seed", DIFF_SEEDS)
def test_dynamic_kernel_matches_reference(seed):
    assert_dynamic_case_equal(sample_dynamic_case(seed))


def test_dynamic_auto_engine_uses_fast_kernel(browser_stream_small):
    from repro.core.dynamic_partition import DynamicPartitionDesign

    result = DynamicPartitionDesign().run(browser_stream_small, DEFAULT_PLATFORM)
    assert result.extras["sim_engine"] == "fastsim"


def test_dynamic_kill_switch_falls_back(browser_stream_small, monkeypatch):
    from repro.core.dynamic_partition import DynamicPartitionDesign

    monkeypatch.setenv("REPRO_FASTSIM", "0")
    result = DynamicPartitionDesign().run(browser_stream_small, DEFAULT_PLATFORM)
    assert result.extras["sim_engine"] == "reference"


def test_dynamic_fast_engine_raises_when_disqualified(browser_stream_small):
    from repro.core.dynamic_partition import DynamicPartitionDesign

    with pytest.raises(ValueError, match="fast"):
        DynamicPartitionDesign(policy="plru").run(
            browser_stream_small, DEFAULT_PLATFORM, engine="fast"
        )
    with pytest.raises(ValueError, match="fast"):
        DynamicPartitionDesign(refresh_mode="rewrite").run(
            browser_stream_small, DEFAULT_PLATFORM, engine="fast"
        )


def test_dynamic_segment_rejects_bad_config():
    geometry = CacheGeometry(8192, 4)
    with pytest.raises(ValueError, match="refresh modes"):
        fastsim.EpochReplaySegment(geometry, refresh_mode="rewrite")
    with pytest.raises(ValueError, match="retention_ticks"):
        fastsim.EpochReplaySegment(geometry, refresh_mode="invalidate")
    seg = fastsim.EpochReplaySegment(geometry)
    with pytest.raises(ValueError, match="new_powered"):
        seg.set_powered_ways(0, tick=0)
    with pytest.raises(ValueError, match="new_powered"):
        seg.set_powered_ways(5, tick=0)

"""Tests for the observability subsystem (repro.obs).

Covers the three PR guarantees in particular: every emitted event
round-trips through the schema validator, the disabled (no-op) recorder
creates no files and retains no state, and simulation results are
bit-identical with tracing on or off.
"""

from __future__ import annotations

import json
import time

import pytest

from repro import obs
from repro.cache.hierarchy import l1_filter
from repro.config import DEFAULT_PLATFORM
from repro.core.designs import make_design
from repro.core.pipeline import ReplaySession
from repro.engine import JobOutcome, JobSpec, ResultStore, run_sweep
from repro.engine.executor import BatchProgress
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.summary import load_run, summarize
from repro.trace.workloads import suite_trace


@pytest.fixture(autouse=True)
def _clean_obs():
    """Give every test a null recorder and an empty registry."""
    saved = obs.set_recorder(obs_trace.NULL_RECORDER)
    saved_counters = dict(obs.REGISTRY.counters)
    obs.REGISTRY.reset()
    yield
    obs.set_recorder(saved)
    obs.REGISTRY.reset()
    obs.REGISTRY.counters.update(saved_counters)


def run_traced_sweep(tmp_path, **kwargs):
    """One small traced sweep; returns (log path, sweep result)."""
    log = tmp_path / "run.jsonl"
    obs.configure(log)
    try:
        sweep = run_sweep(**{
            "designs": ["baseline", "static-stt"],
            "apps": ["browser", "game"],
            "length": 8000,
            "store": None,
            **kwargs,
        })
    finally:
        obs.recorder().metrics()
        obs.configure(None)
    return log, sweep


class TestMetricsRegistry:
    def test_counters(self):
        reg = obs_metrics.MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        reg.inc("b")
        assert reg.counters == {"a": 5, "b": 1}

    def test_gauges_and_timers(self):
        reg = obs_metrics.MetricsRegistry()
        reg.set_gauge("g", 3)
        reg.observe("t", 0.25)
        reg.observe("t", 0.75)
        assert reg.gauges["g"] == 3.0
        stat = reg.timers["t"]
        assert stat.count == 2
        assert stat.total_s == pytest.approx(1.0)
        assert stat.min_s == pytest.approx(0.25)
        assert stat.max_s == pytest.approx(0.75)
        assert stat.mean_s == pytest.approx(0.5)

    def test_timed_context_manager(self):
        reg = obs_metrics.MetricsRegistry()
        with reg.timed("phase"):
            time.sleep(0.002)
        assert reg.timers["phase"].count == 1
        assert reg.timers["phase"].total_s > 0

    def test_snapshot_and_reset(self):
        reg = obs_metrics.MetricsRegistry()
        reg.inc("x")
        reg.observe("y", 1.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"x": 1}
        assert snap["timers"]["y"]["count"] == 1
        assert json.loads(json.dumps(snap)) == snap  # JSON-clean
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "timers": {}}


class TestNullRecorder:
    def test_is_default_without_env(self, monkeypatch):
        monkeypatch.delenv(obs.TRACE_ENV, raising=False)
        obs.set_recorder(None)  # force lazy re-resolution
        assert obs.recorder() is obs_trace.NULL_RECORDER

    def test_no_file_created_and_no_state(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        with obs.span("phase", detail=1) as sp:
            sp.note(extra=2)
        obs.event("something", value=3)
        obs.recorder().metrics()
        obs.recorder().close()
        assert list(tmp_path.iterdir()) == []  # nothing written anywhere
        # the null recorder is a stateless singleton: same span object
        # every time, no buffers, no attributes accumulated
        assert obs.span("a") is obs.span("b")
        assert not hasattr(obs_trace.NULL_RECORDER, "_fh")

    def test_env_opt_in(self, tmp_path, monkeypatch):
        log = tmp_path / "env.jsonl"
        monkeypatch.setenv(obs.TRACE_ENV, str(log))
        obs.set_recorder(None)
        try:
            assert obs.recorder().enabled
            with obs.span("phase"):
                pass
        finally:
            obs.recorder().close()
            obs.set_recorder(obs_trace.NULL_RECORDER)
        lines = [json.loads(line) for line in log.read_text().splitlines()]
        assert [e["type"] for e in lines] == ["run", "span"]


class TestEventSchema:
    def test_every_emitted_event_round_trips(self, tmp_path):
        log, _ = run_traced_sweep(tmp_path)
        run = load_run(log)  # load_run validates every line
        types = {e["type"] for e in run.events}
        assert {"run", "span", "event", "metrics"} <= types
        for event in run.events:
            assert obs.validate_event(json.loads(json.dumps(event))) == event

    def test_validate_rejects_unknown_type(self):
        with pytest.raises(ValueError, match="unknown event type"):
            obs.validate_event({"type": "mystery", "ts": 0.0, "pid": 1})

    def test_validate_rejects_missing_keys(self):
        with pytest.raises(ValueError, match="missing required keys"):
            obs.validate_event({"type": "span", "name": "x", "ts": 0.0})

    def test_validate_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            obs.validate_event(["span"])

    def test_load_run_reports_bad_line(self, tmp_path):
        log = tmp_path / "bad.jsonl"
        log.write_text('{"type": "event", "name": "ok", "ts": 1.0, "pid": 2}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_run(log)


class TestTracedSweep:
    def test_spans_cover_batch_wall_time(self, tmp_path):
        # a seed no other test uses, so the per-process stream memo is
        # cold and the l1.filter / trace.generate spans actually fire
        log, sweep = run_traced_sweep(tmp_path, seeds=[91])
        assert len(sweep.outcomes) == 4
        summary = summarize(load_run(log))
        assert summary.batch_wall_s == pytest.approx(sweep.wall_s, rel=0.25)
        # the acceptance bar: instrumented phases explain >= 95% of the
        # measured batch wall time
        assert summary.coverage >= 0.95
        for phase in ("batch", "job", "l1.filter", "replay", "assemble"):
            assert summary.phase(phase) is not None, f"missing span {phase}"
        assert summary.phase("job").count == 4

    def test_summary_carries_dispatch_and_store_counters(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        log, _ = run_traced_sweep(tmp_path, store=store)
        summary = summarize(load_run(log))
        assert summary.counters["pipeline.dispatch.fastsim"] == 4
        assert summary.counters["store.miss"] == 4
        assert summary.counters["store.write"] == 4
        assert summary.counters["engine.job.fresh"] == 4

    def test_render_mentions_phases_and_coverage(self, tmp_path):
        log, _ = run_traced_sweep(tmp_path)
        text = summarize(load_run(log)).render()
        assert "where the time went" in text
        assert "coverage" in text
        assert "replay" in text
        assert "counters" in text


class TestResultsUnperturbed:
    def test_bit_identical_with_tracing_on_and_off(self, tmp_path):
        stream = l1_filter(suite_trace("browser", 12000, 3), DEFAULT_PLATFORM)
        baseline = make_design("static-stt").run(stream, DEFAULT_PLATFORM)
        obs.configure(tmp_path / "traced.jsonl")
        try:
            traced = make_design("static-stt").run(stream, DEFAULT_PLATFORM)
        finally:
            obs.configure(None)
        assert traced.to_dict() == baseline.to_dict()
        # and the log actually recorded the traced run
        assert any(e["type"] == "span" for e in load_run(tmp_path / "traced.jsonl").events)


class TestDispatchCounters:
    def test_auto_dispatch_counts_fastsim(self, browser_stream_small):
        make_design("baseline").run(browser_stream_small, DEFAULT_PLATFORM)
        assert obs.REGISTRY.counters.get("pipeline.dispatch.fastsim", 0) == 1

    def test_kill_switch_fallback_is_counted_and_reported(
            self, browser_stream_small, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FASTSIM", "0")
        obs.configure(tmp_path / "fallback.jsonl")
        try:
            make_design("baseline").run(browser_stream_small, DEFAULT_PLATFORM)
        finally:
            obs.configure(None)
        assert obs.REGISTRY.counters["pipeline.dispatch.reference"] == 1
        assert obs.REGISTRY.counters["pipeline.fallback.kill-switch"] == 1
        events = load_run(tmp_path / "fallback.jsonl").events
        fallbacks = [e for e in events
                     if e["type"] == "event" and e["name"] == "pipeline.fallback"]
        assert fallbacks and fallbacks[0]["attrs"]["reason"] == "kill-switch"

    def test_reference_engine_is_an_expected_fallback(self, browser_stream_small):
        make_design("baseline").run(browser_stream_small, DEFAULT_PLATFORM, engine="reference")
        assert obs.REGISTRY.counters["pipeline.fallback.engine=reference"] == 1

    def test_fast_engine_error_is_counted(self, browser_stream_small):
        session = ReplaySession("x", browser_stream_small, engine="fast")
        with pytest.raises(ValueError):
            session.dispatch_fast(False, lambda fastsim: True, "never qualifies")
        assert obs.REGISTRY.counters["pipeline.dispatch.error"] == 1


class TestStoreCounters:
    def spec(self):
        return JobSpec(design="baseline", app="browser", length=8000)

    def result(self):
        from repro.engine.executor import execute_spec

        return execute_spec(self.spec())

    def test_hit_miss_write_tallies(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = self.spec()
        assert store.get(spec) is None
        store.put(spec, self.result())
        assert store.get(spec) is not None
        assert store.counters() == {
            "hits": 1, "misses": 1, "writes": 1, "corrupt_evictions": 0,
        }
        assert obs.REGISTRY.counters["store.hit"] == 1
        assert obs.REGISTRY.counters["store.miss"] == 1
        assert obs.REGISTRY.counters["store.write"] == 1

    def test_corrupt_entry_counted(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = self.spec()
        path = store.put(spec, self.result())
        path.write_text("{ truncated garbage")
        assert store.get(spec) is None
        assert store.counters()["corrupt_evictions"] == 1
        assert store.counters()["misses"] == 1
        assert obs.REGISTRY.counters["store.corrupt-evicted"] == 1

    def test_flush_persists_across_instances(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = self.spec()
        store.get(spec)
        store.put(spec, self.result())
        totals = store.flush_counters()
        assert totals["misses"] == 1 and totals["writes"] == 1
        # a brand-new instance reads the same history
        fresh = ResultStore(tmp_path)
        assert fresh.stats().misses == 1
        assert fresh.stats().writes == 1
        # flushing again without new activity changes nothing
        assert fresh.flush_counters() == totals

    def test_stats_hit_rate(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = self.spec()
        store.get(spec)                       # miss
        store.put(spec, self.result())
        store.get(spec)                       # hit
        stats = store.stats()
        assert stats.lookups == 2
        assert stats.hit_rate == pytest.approx(0.5)

    def test_clear_resets_counters(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = self.spec()
        store.get(spec)
        store.flush_counters()
        store.clear()
        assert store.counters() == dict.fromkeys(
            ("hits", "misses", "writes", "corrupt_evictions"), 0)
        assert not store.counters_path.exists()


class TestBatchProgress:
    def outcome(self, wall_s=2.0):
        return JobOutcome(self.spec(), None, cached=False, wall_s=wall_s,
                          attempts=1, cpu_s=1.5)

    def spec(self):
        return JobSpec(design="baseline", app="browser", length=8000)

    def test_render_reports_rate_and_eta(self):
        started = time.perf_counter() - 10.0
        progress = BatchProgress(total=8, completed=5, cached=0, running=3,
                                 last=self.outcome(), started_at=started)
        line = progress.render()
        assert line.startswith("[5/8] baseline:browser 2.0s")
        assert "job/s" in line
        assert "eta" in line
        assert progress.elapsed_s == pytest.approx(10.0, abs=1.0)

    def test_render_without_timestamp_stays_plain(self):
        progress = BatchProgress(total=2, completed=1, cached=1, running=1,
                                 last=JobOutcome(self.spec(), None, cached=True,
                                                 wall_s=0.0, attempts=0))
        line = progress.render()
        assert "job/s" not in line and "eta" not in line

    def test_outcome_carries_cpu_time(self, tmp_path):
        sweep = run_sweep(designs=["baseline"], apps=["browser"], length=8000,
                          store=None)
        outcome = sweep.outcomes[0]
        assert outcome.cpu_s > 0
        assert outcome.cpu_s <= outcome.wall_s * 1.5 + 0.1


class TestObsCli:
    def run_cli(self, *argv):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_traced_sweep_and_summary(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
        log = tmp_path / "sweep.jsonl"
        code, _ = self.run_cli("sweep", "--designs", "baseline", "--apps", "reader",
                               "--length", "8000", "--no-progress",
                               "--trace", str(log))
        assert code == 0
        assert log.exists()
        code, out = self.run_cli("obs", "summary", str(log))
        assert code == 0
        assert "where the time went" in out
        assert "coverage" in out

    def test_summary_missing_log_fails(self, tmp_path):
        code, _ = self.run_cli("obs", "summary", str(tmp_path / "absent.jsonl"))
        assert code == 2

    def test_cache_stats_reports_hit_rate(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        self.run_cli("sweep", "--designs", "baseline", "--apps", "reader",
                     "--length", "8000", "--no-progress")
        self.run_cli("sweep", "--designs", "baseline", "--apps", "reader",
                     "--length", "8000", "--no-progress")
        code, out = self.run_cli("cache", "stats")
        assert code == 0
        assert "hit rate" in out
        assert "50.0%" in out
        assert "corrupt evictions" in out

    def test_run_with_trace_writes_valid_log(self, tmp_path):
        log = tmp_path / "run.jsonl"
        code, _ = self.run_cli("run", "--app", "game", "--design", "baseline",
                               "--length", "12000", "--trace", str(log))
        assert code == 0
        summary = summarize(load_run(log))
        assert summary.phase("l1.filter") is not None
        assert summary.phase("replay") is not None

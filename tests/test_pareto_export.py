"""Tests for the Pareto synthesis and CSV export."""

import csv

import pytest

from repro.experiments import export_grid_csv, pareto_frontier
from repro.experiments.pareto import ParetoPoint, _mark_frontier, candidate_designs

SHORT = 40_000


class TestFrontierMarking:
    def test_single_point_is_frontier(self):
        pts = _mark_frontier([ParetoPoint("a", 1.0, 0.0)])
        assert pts[0].on_frontier

    def test_dominated_point_excluded(self):
        pts = _mark_frontier([
            ParetoPoint("good", 0.5, 0.01),
            ParetoPoint("bad", 0.6, 0.02),
        ])
        marks = {p.design: p.on_frontier for p in pts}
        assert marks == {"good": True, "bad": False}

    def test_tradeoff_points_both_on_frontier(self):
        pts = _mark_frontier([
            ParetoPoint("cheap", 0.2, 0.05),
            ParetoPoint("fast", 0.8, 0.00),
        ])
        assert all(p.on_frontier for p in pts)

    def test_duplicate_points_both_survive(self):
        pts = _mark_frontier([
            ParetoPoint("a", 0.5, 0.01),
            ParetoPoint("b", 0.5, 0.01),
        ])
        assert all(p.on_frontier for p in pts)


class TestParetoExperiment:
    def test_candidates_include_canonicals(self):
        designs = candidate_designs()
        for name in ("baseline", "static-stt", "dynamic-stt", "drowsy-sram"):
            assert name in designs

    def test_runs_on_small_input(self):
        r = pareto_frontier(SHORT, ("game",))
        assert len(r.points) == len(candidate_designs())
        assert any(p.on_frontier for p in r.points)
        assert "Pareto" in r.render()

    def test_frontier_sorted_by_energy(self):
        r = pareto_frontier(SHORT, ("game",))
        f = r.frontier()
        energies = [p.energy_norm for p in f]
        assert energies == sorted(energies)


class TestCsvExport:
    def test_grid_export(self, tmp_path):
        path = tmp_path / "grid.csv"
        n = export_grid_csv(path, SHORT, ("game",), ("baseline", "static-stt"))
        assert n == 2
        with open(path) as f:
            rows = list(csv.DictReader(f))
        assert len(rows) == 2
        assert rows[0]["design"] == "baseline"
        assert float(rows[0]["total_energy_j"]) > 0
        assert 0.0 <= float(rows[0]["demand_miss_rate"]) <= 1.0

    def test_edp_column_consistent(self, tmp_path):
        path = tmp_path / "grid.csv"
        export_grid_csv(path, SHORT, ("game",), ("baseline",))
        with open(path) as f:
            row = next(csv.DictReader(f))
        edp = float(row["energy_delay_product"])
        expected = float(row["total_energy_j"]) * float(row["busy_cycles"]) / 1e9
        assert edp == pytest.approx(expected, rel=1e-6)

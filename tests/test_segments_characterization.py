"""Tests for the per-segment breakdown and characterization experiments."""

import pytest

from repro.experiments import characterize_suite, segment_breakdown

SHORT = 40_000
APPS = ("game", "email")


class TestSegmentBreakdown:
    def test_all_designs_present(self):
        r = segment_breakdown(SHORT, APPS)
        assert [row.design for row in r.rows] == [
            "baseline", "static-sram", "static-stt", "dynamic-stt"]

    def test_energy_shares_sum_to_one(self):
        r = segment_breakdown(SHORT, APPS)
        for row in r.rows:
            total = row.user_energy_uj + row.kernel_energy_uj
            share = row.kernel_energy_uj / total
            assert share == pytest.approx(row.kernel_energy_share, rel=1e-6)

    def test_miss_rates_in_unit_range(self):
        r = segment_breakdown(SHORT, APPS)
        for row in r.rows:
            assert 0.0 <= row.user_miss_rate <= 1.0
            assert 0.0 <= row.kernel_miss_rate <= 1.0

    def test_render(self):
        assert "Per-segment" in segment_breakdown(SHORT, APPS).render()

    def test_partition_and_baseline_same_privilege_routing(self):
        """Privilege-level miss rates agree between shared and partitioned
        designs when the partition does not shrink (sanity of the split
        accounting)."""
        r = segment_breakdown(SHORT, APPS)
        base = next(row for row in r.rows if row.design == "baseline")
        static = next(row for row in r.rows if row.design == "static-sram")
        assert static.user_miss_rate == pytest.approx(base.user_miss_rate, abs=0.05)


class TestCharacterization:
    def test_rows_for_all_apps(self):
        r = characterize_suite(SHORT, APPS)
        assert [row.app for row in r.rows] == list(APPS)

    def test_fields_plausible(self):
        r = characterize_suite(SHORT, APPS)
        for row in r.rows:
            assert row.footprint_mb > 0
            assert 0.0 < row.write_fraction < 1.0
            assert 0.0 < row.l2_traffic_fraction < 1.0
            assert 0.0 < row.l2_kernel_share < 1.0

    def test_render_contains_mean(self):
        assert "MEAN" in characterize_suite(SHORT, APPS).render()

"""Unit tests for the replacement policies."""

import pytest

from repro.cache.replacement import (
    POLICY_NAMES,
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    SRRIPPolicy,
    TreePLRUPolicy,
    make_policy,
)


class TestFactory:
    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_make_every_policy(self, name):
        assert make_policy(name).name == name

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown replacement policy"):
            make_policy("belady")


class TestLRU:
    def test_evicts_least_recent(self):
        p = LRUPolicy()
        s = p.init_set(4)
        for w in range(4):
            p.on_fill(s, w)
        p.on_hit(s, 0)  # 0 becomes MRU; 1 is now LRU
        assert p.victim(s, 4) == 1

    def test_hit_refreshes_recency(self):
        p = LRUPolicy()
        s = p.init_set(2)
        p.on_fill(s, 0)
        p.on_fill(s, 1)
        p.on_hit(s, 0)
        assert p.victim(s, 2) == 1

    def test_hit_rank(self):
        p = LRUPolicy()
        s = p.init_set(4)
        for w in range(4):
            p.on_fill(s, w)
        assert p.hit_rank(s, 3, 4) == 0  # most recent
        assert p.hit_rank(s, 0, 4) == 3  # least recent

    def test_resize_shrink_keeps_prefix(self):
        p = LRUPolicy()
        s = p.init_set(4)
        for w in range(4):
            p.on_fill(s, w)
        s2 = p.resize(s, 4, 2)
        assert len(s2) == 2
        assert s2 == s[:2]

    def test_resize_grow_appends_zeros(self):
        p = LRUPolicy()
        s = p.init_set(2)
        p.on_fill(s, 0)
        s2 = p.resize(s, 2, 4)
        assert len(s2) == 4
        assert p.victim(s2, 4) in (1, 2, 3)  # new empty-seq ways are oldest


class TestFIFO:
    def test_evicts_oldest_fill_despite_hits(self):
        p = FIFOPolicy()
        s = p.init_set(3)
        for w in range(3):
            p.on_fill(s, w)
        p.on_hit(s, 0)  # hits must not matter
        assert p.victim(s, 3) == 0

    def test_refill_moves_to_back(self):
        p = FIFOPolicy()
        s = p.init_set(2)
        p.on_fill(s, 0)
        p.on_fill(s, 1)
        p.on_fill(s, 0)  # way 0 refilled, becomes newest
        assert p.victim(s, 2) == 1


class TestRandom:
    def test_victim_in_range(self):
        p = RandomPolicy(seed=1)
        s = p.init_set(8)
        for _ in range(100):
            assert 0 <= p.victim(s, 8) < 8

    def test_deterministic_for_seed(self):
        a = RandomPolicy(seed=5)
        b = RandomPolicy(seed=5)
        assert [a.victim(None, 4) for _ in range(20)] == [b.victim(None, 4) for _ in range(20)]

    def test_covers_all_ways(self):
        p = RandomPolicy(seed=2)
        seen = {p.victim(None, 4) for _ in range(200)}
        assert seen == {0, 1, 2, 3}


class TestTreePLRU:
    def test_state_size(self):
        p = TreePLRUPolicy()
        assert len(p.init_set(8)) == 7

    def test_victim_in_range(self):
        p = TreePLRUPolicy()
        s = p.init_set(8)
        assert 0 <= p.victim(s, 8) < 8

    def test_never_evicts_just_touched(self):
        p = TreePLRUPolicy()
        s = p.init_set(8)
        for w in range(8):
            p.on_fill(s, w)
        for w in range(8):
            p.on_hit(s, w)
            assert p.victim(s, 8) != w

    def test_non_power_of_two_ways(self):
        p = TreePLRUPolicy()
        s = p.init_set(6)
        for w in range(6):
            p.on_fill(s, w)
        for _ in range(20):
            assert 0 <= p.victim(s, 6) < 6

    def test_single_way(self):
        p = TreePLRUPolicy()
        s = p.init_set(1)
        p.on_fill(s, 0)
        assert p.victim(s, 1) == 0


class TestSRRIP:
    def test_fills_start_near_distant(self):
        p = SRRIPPolicy()
        s = p.init_set(4)
        p.on_fill(s, 0)
        assert s[0] == p.max_rrpv - 1

    def test_hit_promotes(self):
        p = SRRIPPolicy()
        s = p.init_set(4)
        p.on_fill(s, 0)
        p.on_hit(s, 0)
        assert s[0] == 0

    def test_victim_is_max_rrpv(self):
        p = SRRIPPolicy()
        s = p.init_set(4)
        for w in range(4):
            p.on_fill(s, w)
        p.on_hit(s, 2)
        victim = p.victim(s, 4)
        assert victim != 2

    def test_aging_terminates(self):
        p = SRRIPPolicy()
        s = p.init_set(4)
        for w in range(4):
            p.on_fill(s, w)
            p.on_hit(s, w)
        assert 0 <= p.victim(s, 4) < 4  # requires aging rounds

    def test_scan_resistance_vs_lru(self):
        """SRRIP keeps a reused block alive through a one-shot scan."""
        from repro.cache.set_assoc import SetAssociativeCache
        from repro.config import CacheGeometry

        geometry = CacheGeometry(4 * 64, 4)  # one set, 4 ways
        hot = 0x0
        results = {}
        for policy in ("lru", "srrip"):
            c = SetAssociativeCache(geometry, policy)
            hits = 0
            scan = 1
            for round_i in range(200):
                r = c.access(hot, False, 0, round_i * 10)
                hits += r.hit
                for j in range(3):  # scanning traffic
                    scan += 1
                    c.access(scan * 64, False, 0, round_i * 10 + j + 1)
            results[policy] = hits
        assert results["srrip"] >= results["lru"]

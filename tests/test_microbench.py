"""Tests for the synthetic microbenchmarks."""

import numpy as np
import pytest

from repro.cache.hierarchy import l1_filter
from repro.config import DEFAULT_PLATFORM
from repro.core import BaselineDesign, DynamicPartitionDesign
from repro.trace.generator import generate_trace
from repro.trace.microbench import MICROBENCH_NAMES, microbench_profile


class TestProfiles:
    def test_all_names_build(self):
        for name in MICROBENCH_NAMES:
            profile = microbench_profile(name)
            assert profile.name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown microbenchmark"):
            microbench_profile("matrix_multiply")

    def test_traces_generate(self):
        for name in MICROBENCH_NAMES:
            t = generate_trace(microbench_profile(name), 5_000, seed=0)
            assert len(t) == 5_000


class TestCharacteristics:
    def _stream(self, name, n=40_000):
        t = generate_trace(microbench_profile(name), n, seed=0)
        return l1_filter(t, DEFAULT_PLATFORM)

    def test_stream_misses_everywhere(self):
        s = self._stream("stream")
        r = BaselineDesign().run(s, DEFAULT_PLATFORM)
        assert r.l2_stats.demand_miss_rate > 0.9

    def test_code_loop_is_absorbed_by_l1(self):
        s = self._stream("code_loop")
        # the loop's signature: the L1I captures nearly everything
        assert len(s.ticks) / s.trace_accesses < 0.15

    def test_pointer_chase_misses_l1_but_fits_l2(self):
        s = self._stream("pointer_chase")
        trace_level_filter_rate = len(s.ticks) / s.trace_accesses
        assert trace_level_filter_rate > 0.4  # most accesses escape the L1s

    def test_syscall_storm_is_kernel_heavy(self):
        s = self._stream("syscall_storm")
        assert s.kernel_share() > 0.6

    def test_idle_burst_has_long_gaps(self):
        t = generate_trace(microbench_profile("idle_burst"), 20_000, seed=0)
        gaps = np.diff(t.ticks.astype(np.int64))
        assert gaps.max() > 100_000

    def test_dynamic_design_gates_on_idle_burst(self):
        s = self._stream("idle_burst")
        r = DynamicPartitionDesign().run(s, DEFAULT_PLATFORM)
        ways = r.extras["timeline_user_ways"]
        assert min(ways) == 1  # gated during the idle spans

    def test_dynamic_design_shrinks_on_pure_stream(self):
        """Streaming earns no hits; the controller should not grow."""
        s = self._stream("stream")
        r = DynamicPartitionDesign().run(s, DEFAULT_PLATFORM)
        assert max(r.extras["timeline_user_ways"]) <= 8  # never grows past start

"""Tests for the way-mask partitioned cache, incl. model equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.partitioned import PartitionedCache
from repro.cache.set_assoc import SetAssociativeCache
from repro.cache.waypart import WayMaskPartitionedCache
from repro.config import CacheGeometry
from repro.types import Privilege

U, K = int(Privilege.USER), int(Privilege.KERNEL)

GEOM = CacheGeometry(8 * 4 * 64, 4)  # 8 sets, 4 ways


class TestConstruction:
    def test_regions_must_be_non_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            WayMaskPartitionedCache(GEOM, user_ways=0)
        with pytest.raises(ValueError, match="non-empty"):
            WayMaskPartitionedCache(GEOM, user_ways=4)

    def test_way_split(self):
        c = WayMaskPartitionedCache(GEOM, user_ways=3)
        assert c.user_ways == 3
        assert c.kernel_ways == 1

    def test_size(self):
        assert WayMaskPartitionedCache(GEOM, 2).size_bytes == GEOM.size_bytes


class TestBehaviour:
    def test_hit_after_fill(self):
        c = WayMaskPartitionedCache(GEOM, 2)
        assert not c.access(0x0, False, U, 0)
        assert c.access(0x0, False, U, 1)

    def test_privileges_isolated(self):
        c = WayMaskPartitionedCache(GEOM, 2)
        c.access(0x0, False, U, 0)
        # same address at kernel privilege looks in different ways: miss
        assert not c.access(0x0, False, K, 1)

    def test_kernel_traffic_cannot_evict_user(self):
        c = WayMaskPartitionedCache(CacheGeometry(1 * 4 * 64, 4), user_ways=2)
        c.access(0x0, False, U, 0)
        for i in range(20):
            c.access((i + 1) * 64, False, K, i + 1)
        assert c.access(0x0, False, U, 100)

    def test_no_cross_privilege_evictions(self):
        import numpy as np

        rng = np.random.default_rng(0)
        c = WayMaskPartitionedCache(GEOM, 2)
        for i in range(2000):
            c.access(int(rng.integers(0, 64)) * 64, bool(rng.integers(0, 2)),
                     int(rng.integers(0, 2)), i)
        assert c.stats.cross_privilege_evictions == 0
        c.stats.check_invariants()

    def test_occupancy_grows(self):
        c = WayMaskPartitionedCache(GEOM, 2)
        assert c.occupancy() == 0.0
        c.access(0x0, False, U, 0)
        assert c.occupancy() > 0.0


access_strategy = st.tuples(
    st.integers(min_value=0, max_value=63),
    st.booleans(),
    st.integers(min_value=0, max_value=1),
)


@given(st.lists(access_strategy, min_size=1, max_size=250))
@settings(max_examples=80, deadline=None)
def test_waymask_equivalent_to_two_segments(accs):
    """The way-mask model and the two-segment model agree hit-for-hit.

    A way-mask partition with u user ways of an s-set array behaves
    exactly like independent u-way and (a-u)-way segment caches with the
    same set count — the structural identity the library's design rests
    on.
    """
    user_ways = 3
    waymask = WayMaskPartitionedCache(GEOM, user_ways=user_ways)
    segments = PartitionedCache({
        Privilege.USER: SetAssociativeCache(GEOM.with_ways(user_ways), "lru"),
        Privilege.KERNEL: SetAssociativeCache(GEOM.with_ways(GEOM.associativity - user_ways), "lru"),
    })
    for i, (block, is_write, priv) in enumerate(accs):
        a = waymask.access(block * 64, is_write, priv, i)
        b = segments.access(block * 64, is_write, priv, i).hit
        assert a == b
    merged = segments.stats
    assert waymask.stats.hits == merged.hits
    assert waymask.stats.misses == merged.misses
    assert waymask.stats.writebacks == merged.writebacks

"""Tests for the platform presets."""

import pytest

from repro.config import DEFAULT_PLATFORM, platform_preset


class TestPresets:
    def test_default_is_the_default(self):
        assert platform_preset("default") is DEFAULT_PLATFORM

    def test_little_is_smaller_and_slower(self):
        little = platform_preset("little")
        assert little.l2.size_bytes < DEFAULT_PLATFORM.l2.size_bytes
        assert little.clock_hz < DEFAULT_PLATFORM.clock_hz
        assert little.base_cpi > DEFAULT_PLATFORM.base_cpi

    def test_big_is_bigger_and_faster(self):
        big = platform_preset("big")
        assert big.l2.size_bytes > DEFAULT_PLATFORM.l2.size_bytes
        assert big.clock_hz > DEFAULT_PLATFORM.clock_hz

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown platform preset"):
            platform_preset("mega")

    def test_presets_are_valid_platforms(self):
        for name in ("little", "big"):
            p = platform_preset(name)
            p.l1i.validate()
            p.l2.validate()

    def test_designs_run_on_presets(self, browser_trace_small):
        from repro.cache.hierarchy import l1_filter
        from repro.core import StaticPartitionDesign

        for name in ("little", "big"):
            platform = platform_preset(name)
            stream = l1_filter(browser_trace_small, platform)
            ways = platform.l2.associativity
            design = StaticPartitionDesign(
                user_ways=max(2, ways // 2), kernel_ways=max(1, ways // 4))
            r = design.run(stream, platform)
            r.l2_stats.check_invariants()
            assert r.l2_energy.total_j > 0

"""Unit tests for the synthetic trace generator."""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.trace.generator import generate_trace
from repro.trace.phases import AppProfile, PhaseSpec, Region
from repro.trace.workloads import app_profile
from repro.types import CACHE_BLOCK_SIZE, KERNEL_SPACE_START, AccessKind, Privilege

_DATA = (0.0, 0.7, 0.3)
_CODE = (1.0, 0.0, 0.0)


def two_phase_profile(**profile_kw):
    user = Region("u", 0x1000_0000, 64 * 1024, "uniform", kind_weights=_DATA)
    kern = Region("k", KERNEL_SPACE_START + 0x10000, 32 * 1024, "uniform", kind_weights=_DATA)
    phases = (
        PhaseSpec("user", Privilege.USER, (user,), (1.0,), mean_accesses=100),
        PhaseSpec("kern", Privilege.KERNEL, (kern,), (1.0,), mean_accesses=100),
    )
    defaults = dict(
        name="twophase",
        description="test",
        phases=phases,
        transitions=((0.0, 1.0), (1.0, 0.0)),
        idle_prob=0.0,
    )
    defaults.update(profile_kw)
    return AppProfile(**defaults)


class TestBasics:
    def test_exact_length(self):
        t = generate_trace(two_phase_profile(), 5000, seed=1)
        assert len(t) == 5000

    def test_rejects_zero_length(self):
        with pytest.raises(ValueError, match="length"):
            generate_trace(two_phase_profile(), 0)

    def test_deterministic(self):
        a = generate_trace(two_phase_profile(), 2000, seed=3)
        b = generate_trace(two_phase_profile(), 2000, seed=3)
        assert np.array_equal(a.records, b.records)

    def test_seed_changes_trace(self):
        a = generate_trace(two_phase_profile(), 2000, seed=3)
        b = generate_trace(two_phase_profile(), 2000, seed=4)
        assert not np.array_equal(a.records, b.records)

    def test_deterministic_across_interpreters(self):
        # str hashing is salted per process (PYTHONHASHSEED), so the seed
        # derivation must not use hash() — otherwise the same (profile,
        # length, seed) triple yields a different trace in every process
        # and the content-addressed result store returns stale results.
        script = (
            "from repro.trace import suite_trace; import hashlib; "
            "print(hashlib.sha256(suite_trace('browser', 2000, 0)"
            ".records.tobytes()).hexdigest())"
        )
        digests = set()
        for hashseed in ("0", "1", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env["PYTHONPATH"] = os.pathsep.join(sys.path)
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True, env=env,
            )
            digests.add(out.stdout.strip())
        assert len(digests) == 1

    def test_ticks_strictly_increasing_without_idle(self):
        t = generate_trace(two_phase_profile(), 3000, seed=0)
        assert np.all(np.diff(t.ticks.astype(np.int64)) >= 1)

    def test_block_aligned_addresses(self):
        t = generate_trace(two_phase_profile(), 1000, seed=0)
        assert np.all(t.addrs % CACHE_BLOCK_SIZE == 0)


class TestPrivilegeAddressConsistency:
    def test_privileges_match_address_space(self):
        t = generate_trace(two_phase_profile(), 5000, seed=2)
        kernel_mask = t.privilege_mask(Privilege.KERNEL)
        assert np.all(t.addrs[kernel_mask] >= KERNEL_SPACE_START)
        assert np.all(t.addrs[~kernel_mask] < KERNEL_SPACE_START)

    def test_rejects_region_on_wrong_side(self):
        bad = Region("bad", 0x1000, 4096, "uniform", kind_weights=_DATA)
        phases = (PhaseSpec("k", Privilege.KERNEL, (bad,), (1.0,)),)
        profile = AppProfile("x", "d", phases, ((1.0,),))
        with pytest.raises(ValueError, match="wrong side"):
            generate_trace(profile, 100)

    def test_both_privileges_present(self):
        t = generate_trace(two_phase_profile(), 5000, seed=2)
        frac = t.kernel_fraction()
        assert 0.2 < frac < 0.8


class TestAddressRanges:
    def test_addresses_stay_inside_regions(self):
        t = generate_trace(two_phase_profile(), 5000, seed=5)
        user = t.addrs[~t.privilege_mask(Privilege.KERNEL)]
        assert user.min() >= 0x1000_0000
        assert user.max() < 0x1000_0000 + 64 * 1024

    def test_kind_weights_respected(self):
        code = Region("c", 0x100_0000, 64 * 1024, "uniform", kind_weights=_CODE)
        phases = (PhaseSpec("p", Privilege.USER, (code,), (1.0,)),)
        profile = AppProfile("codeonly", "d", phases, ((1.0,),), idle_prob=0.0)
        t = generate_trace(profile, 2000, seed=0)
        assert np.all(t.kinds == int(AccessKind.IFETCH))


class TestIdleAndWake:
    def test_idle_extends_duration_not_instructions(self):
        quiet = generate_trace(two_phase_profile(), 20_000, seed=1)
        idle_profile = two_phase_profile(idle_prob=0.8, idle_mean_ticks=50_000)
        noisy = generate_trace(idle_profile, 20_000, seed=1)
        assert noisy.duration_ticks > quiet.duration_ticks * 2
        # instructions should not balloon with idle time
        assert noisy.instructions < noisy.duration_ticks

    def test_wake_phase_entered_after_idle(self):
        profile = two_phase_profile(idle_prob=1.0, idle_mean_ticks=10_000, wake_phase=1)
        t = generate_trace(profile, 20_000, seed=2)
        ticks = t.ticks.astype(np.int64)
        gaps = np.diff(ticks)
        big = np.nonzero(gaps > 5_000)[0]
        assert len(big) > 0
        # the access right after each big idle gap must be a kernel access
        after = t.privs[big + 1]
        assert np.all(after == int(Privilege.KERNEL))

    def test_zero_idle_mean_disables_idle(self):
        profile = two_phase_profile(idle_prob=1.0, idle_mean_ticks=0)
        t = generate_trace(profile, 5000, seed=0)
        assert np.max(np.diff(t.ticks.astype(np.int64))) < 100


class TestPatterns:
    def _single_region_trace(self, region, n=20_000, seed=0):
        phases = (PhaseSpec("p", Privilege.USER, (region,), (1.0,), mean_accesses=500),)
        profile = AppProfile("one", "d", phases, ((1.0,),), idle_prob=0.0)
        return generate_trace(profile, n, seed=seed)

    def test_hot_concentrates_accesses(self):
        region = Region("h", 0x100_0000, 256 * 1024, "hot", hotness=4.0,
                        kind_weights=_DATA, run_mean=1.0)
        t = self._single_region_trace(region)
        blocks, counts = np.unique(t.addrs, return_counts=True)
        counts = np.sort(counts)[::-1]
        top_decile = counts[: max(1, len(counts) // 10)].sum() / counts.sum()
        assert top_decile > 0.4  # top 10% of blocks take >40% of accesses

    def test_uniform_spreads_accesses(self):
        region = Region("u", 0x100_0000, 64 * 1024, "uniform", kind_weights=_DATA,
                        run_mean=1.0)
        t = self._single_region_trace(region)
        blocks, counts = np.unique(t.addrs, return_counts=True)
        assert len(blocks) > 900  # nearly all 1024 blocks touched
        assert counts.max() < counts.mean() * 4

    def test_stream_walks_sequentially(self):
        region = Region("s", 0x100_0000, 1024 * 1024, "stream", kind_weights=_DATA,
                        run_mean=1.0)
        t = self._single_region_trace(region, n=2000)
        diffs = np.diff(t.addrs.astype(np.int64))
        assert np.all(diffs == 64)  # pure sequential walk, no wrap in 2000 accesses

    def test_rotating_changes_active_subset(self):
        region = Region("r", 0x100_0000, 256 * 1024, "rotating", kind_weights=_DATA,
                        subsets=4, rotate_dwells=1, run_mean=1.0)
        t = self._single_region_trace(region, n=40_000)
        # all four quarters of the region eventually used
        quarter = 256 * 1024 // 4
        offsets = (t.addrs - 0x100_0000) // quarter
        assert set(np.unique(offsets)) == {0, 1, 2, 3}

    def test_run_mean_creates_same_block_runs(self):
        region = Region("u", 0x100_0000, 1024 * 1024, "uniform", kind_weights=_DATA,
                        run_mean=8.0)
        t = self._single_region_trace(region, n=10_000)
        same = np.mean(t.addrs[1:] == t.addrs[:-1])
        assert same > 0.6  # most consecutive accesses share a block


class TestSuiteProfiles:
    def test_suite_profile_generates(self):
        t = generate_trace(app_profile("email"), 10_000, seed=0)
        assert len(t) == 10_000
        assert 0.1 < t.kernel_fraction() < 0.8

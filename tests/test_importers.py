"""Tests for the external trace importers."""

import pytest

from repro.trace.importers import load_csv_trace, load_din_trace
from repro.types import AccessKind, Privilege


class TestCsvImporter:
    def write(self, tmp_path, text, name="t.csv"):
        path = tmp_path / name
        path.write_text(text)
        return path

    def test_basic(self, tmp_path):
        path = self.write(tmp_path, "0,0x1000,L,U\n3,0xC0000040,S,K\n")
        t = load_csv_trace(path)
        assert len(t) == 2
        assert t.addrs[1] == 0xC0000040
        assert t.kinds[1] == int(AccessKind.STORE)
        assert t.privs[1] == int(Privilege.KERNEL)

    def test_comments_and_blank_lines(self, tmp_path):
        path = self.write(tmp_path, "# header\n\n0,64,I,U\n")
        assert len(load_csv_trace(path)) == 1

    def test_decimal_addresses(self, tmp_path):
        path = self.write(tmp_path, "0,4096,L,0\n")
        assert load_csv_trace(path).addrs[0] == 4096

    def test_numeric_codes(self, tmp_path):
        path = self.write(tmp_path, "0,64,2,1\n")
        t = load_csv_trace(path)
        assert t.kinds[0] == int(AccessKind.STORE)
        assert t.privs[0] == int(Privilege.KERNEL)

    def test_out_of_order_ticks_sorted(self, tmp_path):
        path = self.write(tmp_path, "5,64,L,U\n2,128,L,U\n")
        t = load_csv_trace(path)
        assert list(t.ticks) == [2, 5]

    def test_name_from_filename(self, tmp_path):
        path = self.write(tmp_path, "0,64,L,U\n", name="mytrace.csv")
        assert load_csv_trace(path).name == "mytrace"

    def test_rejects_bad_kind(self, tmp_path):
        path = self.write(tmp_path, "0,64,X,U\n")
        with pytest.raises(ValueError, match="unknown kind"):
            load_csv_trace(path)

    def test_rejects_bad_field_count(self, tmp_path):
        path = self.write(tmp_path, "0,64,L\n")
        with pytest.raises(ValueError, match="4 fields"):
            load_csv_trace(path)

    def test_rejects_empty_file(self, tmp_path):
        path = self.write(tmp_path, "# nothing\n")
        with pytest.raises(ValueError, match="no trace records"):
            load_csv_trace(path)

    def test_imported_trace_runs_through_designs(self, tmp_path):
        lines = [f"{i * 3},{(i % 64) * 64},L,{'K' if i % 3 == 0 else 'U'}"
                 for i in range(500)]
        # kernel lines need kernel addresses for realism, but the designs
        # route purely on the privilege tag, so this is legal input
        path = self.write(tmp_path, "\n".join(lines))
        t = load_csv_trace(path)
        from repro.cache.hierarchy import l1_filter
        from repro.config import DEFAULT_PLATFORM
        from repro.core import StaticPartitionDesign

        stream = l1_filter(t, DEFAULT_PLATFORM)
        r = StaticPartitionDesign().run(stream, DEFAULT_PLATFORM)
        r.l2_stats.check_invariants()


class TestDinImporter:
    def write(self, tmp_path, text):
        path = tmp_path / "t.din"
        path.write_text(text)
        return path

    def test_basic(self, tmp_path):
        path = self.write(tmp_path, "0 0x1000\n1 0x2000\n2 0x3000\n")
        t = load_din_trace(path)
        assert list(t.kinds) == [int(AccessKind.LOAD), int(AccessKind.STORE),
                                 int(AccessKind.IFETCH)]

    def test_privilege_inferred_from_address(self, tmp_path):
        path = self.write(tmp_path, "0 0x1000\n0 0xC0000000\n")
        t = load_din_trace(path)
        assert list(t.privs) == [int(Privilege.USER), int(Privilege.KERNEL)]

    def test_tick_stride(self, tmp_path):
        path = self.write(tmp_path, "0 0\n0 64\n0 128\n")
        t = load_din_trace(path, tick_stride=5)
        assert list(t.ticks) == [0, 5, 10]

    def test_rejects_bad_stride(self, tmp_path):
        path = self.write(tmp_path, "0 0\n")
        with pytest.raises(ValueError, match="tick_stride"):
            load_din_trace(path, tick_stride=0)

    def test_rejects_unknown_type(self, tmp_path):
        path = self.write(tmp_path, "7 0x1000\n")
        with pytest.raises(ValueError, match="type must be"):
            load_din_trace(path)

    def test_rejects_short_line(self, tmp_path):
        path = self.write(tmp_path, "0\n")
        with pytest.raises(ValueError, match="expected"):
            load_din_trace(path)

"""Tests of the shared design-execution pipeline (repro.core.pipeline).

The pipeline is the single execution path behind every L2 design:
engine dispatch and the reference replay loops (ReplaySession), and the
timing/energy/report assembly (ResultAssembler).  These tests pin the
shared contracts — the uniform ``sim_engine`` extra, the ``"fast"``
rejection rules, prefetch bookkeeping, and the one-call-site rule for
the accounting helpers.
"""

import pathlib

import numpy as np
import pytest

import repro.core
from repro.cache.hierarchy import L2Stream
from repro.cache.prefetch import make_prefetcher
from repro.cache.set_assoc import SetAssociativeCache
from repro.cache.stats import CacheStats
from repro.config import DEFAULT_PLATFORM, CacheGeometry
from repro.core import (
    BaselineDesign,
    DrowsySRAMDesign,
    DynamicPartitionDesign,
    FixedSegment,
    HybridPartitionDesign,
    ReplaySession,
    ResultAssembler,
    StaticPartitionDesign,
    run_fixed_design,
)
from repro.core.multi_retention import multi_retention_design
from repro.energy.technology import sram

ALL_DESIGNS = [
    ("baseline", BaselineDesign),
    ("static", StaticPartitionDesign),
    ("static-stt", multi_retention_design),
    ("dynamic", DynamicPartitionDesign),
    ("drowsy", DrowsySRAMDesign),
    ("hybrid", HybridPartitionDesign),
]


def _stream(rows, name="pipe-synth"):
    ticks = np.array([r[0] for r in rows], dtype=np.int64)
    return L2Stream(
        name=name,
        ticks=ticks,
        addrs=np.array([r[1] for r in rows], dtype=np.uint64),
        privs=np.array([r[2] for r in rows], dtype=np.uint8),
        writes=np.array([r[3] for r in rows], dtype=bool),
        demand=np.array([r[4] for r in rows], dtype=bool),
        instructions=10_000,
        trace_accesses=len(rows),
        duration_ticks=int(ticks[-1]) + 1 if len(rows) else 0,
        l1i_stats=CacheStats(),
        l1d_stats=CacheStats(),
    )


# ----------------------------------------------------------------------
# session-level engine contract


def test_session_rejects_bad_engine(browser_stream_small):
    with pytest.raises(ValueError, match="engine"):
        ReplaySession("x", browser_stream_small, engine="turbo")


@pytest.mark.parametrize("name,factory", ALL_DESIGNS)
def test_every_design_tags_sim_engine(name, factory, browser_stream_small):
    """Every design stamps extras["sim_engine"], on both engine picks."""
    auto = factory().run(browser_stream_small, DEFAULT_PLATFORM)
    assert auto.extras["sim_engine"] in ("fastsim", "reference")
    ref = factory().run(browser_stream_small, DEFAULT_PLATFORM, engine="reference")
    assert ref.extras["sim_engine"] == "reference"


@pytest.mark.parametrize(
    "factory", [DrowsySRAMDesign, HybridPartitionDesign], ids=["drowsy", "hybrid"]
)
def test_per_access_designs_reject_fast(factory, browser_stream_small):
    """Designs without a vectorized path refuse engine="fast" loudly."""
    with pytest.raises(ValueError, match="fast kernel"):
        factory().run(browser_stream_small, DEFAULT_PLATFORM, engine="fast")


# ----------------------------------------------------------------------
# prefetch bookkeeping


def test_stale_prefetch_earns_no_credit():
    """An evicted prefetch must not be credited on a later demand hit.

    One set, two ways: block 64 is prefetched, evicted by a later
    prefetch fill, then demand-missed back in.  The demand hit that
    follows touches the *demand-fetched* copy, so ``prefetch_useful``
    stays zero (the unpruned bookkeeping would credit the dead
    prefetch here).
    """
    geometry = CacheGeometry(128, 2, 64)
    cache = SetAssociativeCache(geometry, "lru", name="l2")
    rows = [
        (0, 0, 0, False, True),     # miss, prefetches 64
        (1, 128, 0, False, True),   # miss; prefetch 192 evicts block 64
        (2, 64, 0, False, True),    # demand miss refetches 64
        (3, 64, 0, False, True),    # demand hit on the demand-fetched copy
    ]
    result = run_fixed_design(
        "pf-prune", _stream(rows), DEFAULT_PLATFORM,
        [FixedSegment("shared", cache, sram())],
        lambda priv: cache,
        prefetcher=make_prefetcher("nextline"),
    )
    assert result.extras["sim_engine"] == "reference"
    assert result.extras["prefetch_issued"] == 3
    assert result.extras["prefetch_useful"] == 0


def test_resident_prefetch_is_credited():
    """The happy path still counts: prefetch, then demand-hit it."""
    geometry = CacheGeometry(128, 2, 64)
    cache = SetAssociativeCache(geometry, "lru", name="l2")
    rows = [
        (0, 0, 0, False, True),   # miss, prefetches 64
        (1, 64, 0, False, True),  # demand hit on the live prefetch
    ]
    result = run_fixed_design(
        "pf-credit", _stream(rows), DEFAULT_PLATFORM,
        [FixedSegment("shared", cache, sram())],
        lambda priv: cache,
        prefetcher=make_prefetcher("nextline"),
    )
    assert result.extras["prefetch_issued"] == 1
    assert result.extras["prefetch_useful"] == 1


# ----------------------------------------------------------------------
# assembler contracts


def test_finish_requires_weigh_timing(browser_stream_small):
    assembler = ResultAssembler(
        ReplaySession("x", browser_stream_small), DEFAULT_PLATFORM
    )
    with pytest.raises(RuntimeError, match="weigh_timing"):
        assembler.finish([])


def test_accounting_helpers_have_one_call_site():
    """compute_timing/segment_energy/dram_energy_j are pipeline-only.

    The refactor's point: no design assembles timing or energy by hand.
    Any new reference to the accounting helpers from another module
    under ``repro.core`` reintroduces a copy-pasted assembly path.
    """
    core_dir = pathlib.Path(repro.core.__file__).parent
    offenders = []
    for path in sorted(core_dir.glob("*.py")):
        if path.name == "pipeline.py":
            continue
        text = path.read_text()
        offenders += [
            f"{path.name}: {fn}"
            for fn in ("compute_timing", "segment_energy", "dram_energy_j")
            if fn in text
        ]
    assert offenders == []

"""Unit tests for the L1 filter / L2 stream stage."""

import numpy as np
import pytest

from conftest import make_trace
from repro.cache.hierarchy import l1_filter
from repro.config import CacheGeometry, PlatformConfig
from repro.types import AccessKind, Privilege

I, L, S = AccessKind.IFETCH, AccessKind.LOAD, AccessKind.STORE
U, K = Privilege.USER, Privilege.KERNEL


@pytest.fixture
def tiny():
    return PlatformConfig(
        l1i=CacheGeometry(4 * 64, 4),  # one set, 4 ways
        l1d=CacheGeometry(4 * 64, 4),
        l2=CacheGeometry(8192, 4),
    )


class TestFiltering:
    def test_l1_hit_does_not_reach_l2(self, tiny):
        t = make_trace([(0, 0x0, L, U), (1, 0x0, L, U)])
        s = l1_filter(t, tiny)
        assert len(s) == 1  # only the compulsory miss

    def test_every_l1_miss_reaches_l2(self, tiny):
        t = make_trace([(i, i * 64 * 64, L, U) for i in range(10)])
        s = l1_filter(t, tiny)
        assert s.demand_count == 10

    def test_ifetch_and_data_use_separate_l1s(self, tiny):
        # same address as ifetch then load: both miss their own L1
        t = make_trace([(0, 0x0, I, U), (1, 0x0, L, U)])
        s = l1_filter(t, tiny)
        assert s.demand_count == 2
        assert s.l1i_stats.accesses == 1
        assert s.l1d_stats.accesses == 1

    def test_dirty_l1_eviction_becomes_writeback_row(self, tiny):
        entries = [(0, 0x0, S, U)]
        # evict 0x0 from the single-set 4-way L1D with 4 more blocks
        entries += [(i + 1, (i + 1) * 64 * 1, L, U) for i in range(4)]
        t = make_trace(entries)
        s = l1_filter(t, tiny)
        wb = ~s.demand
        assert wb.sum() == 1
        assert s.addrs[wb][0] == 0x0
        assert bool(s.writes[wb][0])

    def test_writeback_carries_owner_privilege(self, tiny):
        entries = [(0, 0x0, S, K)]
        entries += [(i + 1, (i + 1) * 64, L, U) for i in range(4)]
        t = make_trace(entries)
        s = l1_filter(t, tiny)
        wb = ~s.demand
        assert s.privs[wb][0] == int(K)

    def test_metadata_passthrough(self, tiny):
        t = make_trace([(0, 0x0, L, U), (5, 0x40, L, U)], name="meta")
        s = l1_filter(t, tiny)
        assert s.name == "meta"
        assert s.trace_accesses == 2
        assert s.duration_ticks == 6
        assert s.instructions == t.instructions


class TestStreamProperties:
    def test_kernel_share(self, tiny):
        t = make_trace([(0, 0x0, L, U), (1, 0xC000_0000, L, K)])
        s = l1_filter(t, tiny)
        assert s.kernel_share() == pytest.approx(0.5)

    def test_empty_stream_kernel_share(self, tiny):
        t = make_trace([(0, 0x0, L, U), (1, 0x0, L, U), (2, 0x0, L, U)])
        s = l1_filter(t, tiny)
        sub = s.select(np.zeros(len(s), dtype=bool))
        assert sub.kernel_share() == 0.0

    def test_select_preserves_metadata(self, tiny):
        t = make_trace([(0, 0x0, L, U), (1, 0x40 * 7, L, U)])
        s = l1_filter(t, tiny)
        sub = s.select(s.demand)
        assert sub.instructions == s.instructions

    def test_l1_demand_misses_property(self, tiny):
        t = make_trace([(0, 0x0, I, U), (1, 0x0, L, U)])
        s = l1_filter(t, tiny)
        assert s.l1_demand_misses == 2

    def test_determinism(self, browser_trace_small):
        from repro.config import DEFAULT_PLATFORM

        a = l1_filter(browser_trace_small, DEFAULT_PLATFORM)
        b = l1_filter(browser_trace_small, DEFAULT_PLATFORM)
        assert np.array_equal(a.addrs, b.addrs)
        assert np.array_equal(a.ticks, b.ticks)

    def test_ticks_non_decreasing(self, browser_stream_small):
        assert np.all(np.diff(browser_stream_small.ticks) >= 0)

    def test_realistic_stream_is_subset_of_trace(self, browser_trace_small, browser_stream_small):
        assert 0 < len(browser_stream_small) < len(browser_trace_small) * 1.5
        assert browser_stream_small.demand_count < len(browser_trace_small)

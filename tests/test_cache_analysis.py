"""Tests for the cache-pressure diagnostics."""

import numpy as np
import pytest

from repro.cache.analysis import occupancy_by_way, set_pressure
from repro.cache.set_assoc import SetAssociativeCache
from repro.config import CacheGeometry

GEOM = CacheGeometry(16 * 4 * 64, 4)  # 16 sets, 4 ways


class TestSetPressure:
    def test_uniform_stream_is_balanced(self):
        addrs = np.arange(16 * 10, dtype=np.uint64) * 64  # sequential: even spread
        p = set_pressure(addrs, GEOM)
        assert p.access_cov == pytest.approx(0.0)
        assert p.block_cov == pytest.approx(0.0)
        assert p.max_blocks_in_a_set == 10

    def test_single_set_hammering(self):
        # all addresses map to set 0 (stride = sets * block)
        addrs = np.arange(50, dtype=np.uint64) * (16 * 64)
        p = set_pressure(addrs, GEOM)
        assert p.accesses_per_set[0] == 50
        assert p.accesses_per_set[1:].sum() == 0
        assert p.access_cov > 3.0

    def test_conflict_prone_fraction(self):
        addrs = np.arange(50, dtype=np.uint64) * (16 * 64)  # 50 blocks in set 0
        p = set_pressure(addrs, GEOM)
        assert p.conflict_prone(4) == pytest.approx(1 / 16)

    def test_repeats_do_not_inflate_block_counts(self):
        addrs = np.array([0, 0, 0, 64, 64], dtype=np.uint64)
        p = set_pressure(addrs, GEOM)
        assert p.blocks_per_set[0] == 1
        assert p.blocks_per_set[1] == 1
        assert p.accesses_per_set[0] == 3

    def test_empty_stream(self):
        p = set_pressure(np.array([], dtype=np.uint64), GEOM)
        assert p.access_cov == 0.0
        assert p.max_blocks_in_a_set == 0


class TestOccupancyByWay:
    def test_empty_cache(self):
        c = SetAssociativeCache(GEOM)
        assert np.all(occupancy_by_way(c) == 0.0)

    def test_fills_populate_ways(self):
        c = SetAssociativeCache(GEOM)
        for i in range(16):  # one block per set
            c.access(i * 64, False, 0, i)
        occ = occupancy_by_way(c)
        assert occ.sum() == pytest.approx(1.0)  # one way's worth

    def test_full_cache(self):
        c = SetAssociativeCache(GEOM)
        for i in range(16 * 4):
            c.access(i * 64, False, 0, i)
        assert np.all(occupancy_by_way(c) == 1.0)

"""Unit tests for the technology and energy models."""

import pytest

from repro.cache.stats import CacheStats
from repro.energy.model import EnergyBreakdown, dram_energy_j, segment_energy
from repro.energy.technology import (
    DRAM_ACCESS_ENERGY_NJ,
    REFERENCE_SIZE_BYTES,
    RETENTION_CLASSES,
    sram,
    stt_ram,
)

MB = 1024 * 1024


class TestRetentionClasses:
    def test_three_classes(self):
        assert set(RETENTION_CLASSES) == {"long", "medium", "short"}

    def test_long_is_unbounded(self):
        assert RETENTION_CLASSES["long"].retention_s is None
        assert RETENTION_CLASSES["long"].retention_ticks(1e9) is None

    def test_shorter_retention_cheaper_writes(self):
        long, med, short = (RETENTION_CLASSES[k] for k in ("long", "medium", "short"))
        assert long.write_energy_scale > med.write_energy_scale > short.write_energy_scale

    def test_shorter_retention_faster_writes(self):
        long, med, short = (RETENTION_CLASSES[k] for k in ("long", "medium", "short"))
        assert long.write_latency_cycles > med.write_latency_cycles > short.write_latency_cycles

    def test_retention_ticks_scaling(self):
        assert RETENTION_CLASSES["short"].retention_ticks(1e9) == int(
            RETENTION_CLASSES["short"].retention_s * 1e9
        )

    def test_medium_longer_than_short(self):
        assert RETENTION_CLASSES["medium"].retention_s > RETENTION_CLASSES["short"].retention_s


class TestTechnologies:
    def test_sram_has_no_retention(self):
        t = sram()
        assert t.retention is None
        assert not t.non_volatile
        assert t.retention_ticks(1e9) is None

    def test_stt_is_non_volatile(self):
        assert stt_ram("short").non_volatile

    def test_stt_leakage_far_below_sram(self):
        assert stt_ram("long").leakage_mw_per_mb < sram().leakage_mw_per_mb * 0.5

    def test_stt_writes_cost_more_than_sram(self):
        assert stt_ram("long").write_energy_nj(MB) > sram().write_energy_nj(MB)

    def test_unknown_retention_rejected(self):
        with pytest.raises(ValueError, match="retention class"):
            stt_ram("forever")

    def test_energy_scales_sublinearly_with_size(self):
        t = sram()
        assert t.read_energy_nj(MB) == pytest.approx(t.read_energy_nj_ref)
        half = t.read_energy_nj(MB // 2)
        assert half == pytest.approx(t.read_energy_nj_ref * (0.5**0.5))

    def test_leakage_linear_in_size(self):
        t = sram()
        assert t.leakage_w(2 * MB) == pytest.approx(2 * t.leakage_w(MB))

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            sram().read_energy_nj(0)

    def test_reference_size_is_1mb(self):
        assert REFERENCE_SIZE_BYTES == MB


class TestEnergyBreakdown:
    def test_total(self):
        e = EnergyBreakdown(1.0, 2.0, 3.0, 4.0)
        assert e.dynamic_j == 9.0
        assert e.total_j == 10.0

    def test_addition(self):
        a = EnergyBreakdown(1, 1, 1, 1)
        b = EnergyBreakdown(2, 2, 2, 2)
        c = a + b
        assert c.total_j == 12

    def test_zero_identity(self):
        e = EnergyBreakdown(1, 2, 3, 4)
        assert (e + EnergyBreakdown.zero()).total_j == e.total_j

    def test_normalized(self):
        a = EnergyBreakdown(1, 0, 0, 0)
        b = EnergyBreakdown(4, 0, 0, 0)
        assert a.normalized_to(b) == pytest.approx(0.25)

    def test_normalized_rejects_zero_baseline(self):
        with pytest.raises(ValueError):
            EnergyBreakdown(1, 0, 0, 0).normalized_to(EnergyBreakdown.zero())


class TestSegmentEnergy:
    def make_stats(self, accesses=1000, fills=100, writes=50, refresh=10):
        st = CacheStats()
        st.accesses = accesses
        st.hits = accesses - fills
        st.misses = fills
        st.fills = fills
        st.write_accesses = writes
        st.refresh_writes = refresh
        return st

    def test_reads_charged_per_access(self):
        st = self.make_stats()
        e = segment_energy(st, sram(), MB, 0.0)
        assert e.read_j == pytest.approx(1000 * sram().read_energy_nj(MB) * 1e-9)

    def test_writes_include_fills_and_write_hits(self):
        st = self.make_stats()
        e = segment_energy(st, sram(), MB, 0.0)
        assert e.write_j == pytest.approx(150 * sram().write_energy_nj(MB) * 1e-9)

    def test_refresh_separate(self):
        st = self.make_stats()
        e = segment_energy(st, stt_ram("short"), MB, 0.0)
        assert e.refresh_j == pytest.approx(10 * stt_ram("short").write_energy_nj(MB) * 1e-9)

    def test_leakage_from_byte_seconds(self):
        st = CacheStats()
        e = segment_energy(st, sram(), MB, byte_seconds=MB * 2.0)  # 1 MB for 2 s
        assert e.leakage_j == pytest.approx(sram().leakage_w(MB) * 2.0)

    def test_leakage_monotonic_in_time(self):
        st = CacheStats()
        e1 = segment_energy(st, sram(), MB, MB * 1.0)
        e2 = segment_energy(st, sram(), MB, MB * 2.0)
        assert e2.leakage_j > e1.leakage_j

    def test_rejects_negative_byte_seconds(self):
        with pytest.raises(ValueError):
            segment_energy(CacheStats(), sram(), MB, -1.0)

    def test_stt_writes_cost_more_than_sram_segment(self):
        st = self.make_stats(refresh=0)
        e_sram = segment_energy(st, sram(), MB, 0.0)
        e_stt = segment_energy(st, stt_ram("long"), MB, 0.0)
        assert e_stt.write_j > e_sram.write_j


class TestDramEnergy:
    def test_counts(self):
        assert dram_energy_j(10, 5) == pytest.approx(15 * DRAM_ACCESS_ENERGY_NJ * 1e-9)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            dram_energy_j(-1, 0)

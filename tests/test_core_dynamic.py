"""Unit/integration tests for the dynamic partition design."""

import numpy as np
import pytest

from repro.cache.hierarchy import L2Stream
from repro.cache.stats import CacheStats
from repro.config import DEFAULT_PLATFORM
from repro.core.dynamic_partition import DynamicControllerConfig, DynamicPartitionDesign
from repro.energy.technology import sram


def synthetic_stream(rows, name="synth", instructions=1_000_000, duration=None):
    """Build an L2Stream from (tick, addr, priv, write, demand) tuples."""
    ticks = np.array([r[0] for r in rows], dtype=np.int64)
    duration = duration if duration is not None else (int(ticks[-1]) + 1 if len(rows) else 0)
    return L2Stream(
        name=name,
        ticks=ticks,
        addrs=np.array([r[1] for r in rows], dtype=np.uint64),
        privs=np.array([r[2] for r in rows], dtype=np.uint8),
        writes=np.array([r[3] for r in rows], dtype=bool),
        demand=np.array([r[4] for r in rows], dtype=bool),
        instructions=instructions,
        trace_accesses=len(rows),
        duration_ticks=duration,
        l1i_stats=CacheStats(),
        l1d_stats=CacheStats(),
    )


class TestControllerConfig:
    def test_defaults_valid(self):
        cfg = DynamicControllerConfig()
        assert cfg.min_ways >= 1

    def test_rejects_bad_epoch(self):
        with pytest.raises(ValueError):
            DynamicControllerConfig(epoch_ticks=0)

    def test_rejects_start_above_max(self):
        with pytest.raises(ValueError):
            DynamicControllerConfig(start_user_ways=12, max_user_ways=10)

    def test_rejects_inverted_hysteresis(self):
        with pytest.raises(ValueError, match="hysteresis"):
            DynamicControllerConfig(grow_miss_rate=0.1, shrink_miss_rate=0.2)

    def test_rejects_zero_grow_step(self):
        with pytest.raises(ValueError, match="grow_step"):
            DynamicControllerConfig(grow_step=0)


class TestIdleGating:
    def test_idle_epochs_gate_to_min(self):
        # activity at start, then a long silent gap spanning many epochs
        rows = [(i * 10, (i % 50) * 64, 0, False, True) for i in range(300)]
        rows.append((2_000_000, 0, 0, False, True))
        stream = synthetic_stream(rows)
        cfg = DynamicControllerConfig(epoch_ticks=25_000)
        r = DynamicPartitionDesign(cfg).run(stream, DEFAULT_PLATFORM)
        uw = r.extras["timeline_user_ways"]
        assert min(uw) == cfg.min_ways  # gated during the silent span

    def test_gating_reduces_byte_seconds(self):
        rows = [(i * 10, (i % 50) * 64, 0, False, True) for i in range(300)]
        rows.append((5_000_000, 0, 0, False, True))
        stream = synthetic_stream(rows)
        r = DynamicPartitionDesign().run(stream, DEFAULT_PLATFORM)
        user_seg = r.segment("user")
        full_time = r.timing.seconds(DEFAULT_PLATFORM)
        assert user_seg.byte_seconds < user_seg.size_bytes * full_time * 0.8

    def test_wake_restores_retained_blocks(self):
        # touch a working set, sleep far beyond several epochs, touch again
        ws = [(i, (i % 20) * 64, 0, False, True) for i in range(2000)]
        wake = [(1_000_000 + i, (i % 20) * 64, 0, False, True) for i in range(2000)]
        stream = synthetic_stream(ws + wake)
        cfg = DynamicControllerConfig(epoch_ticks=25_000)
        d = DynamicPartitionDesign(cfg)  # short retention 8 ms >> 1 M ticks
        r = d.run(stream, DEFAULT_PLATFORM)
        # second burst should hit: data retained through the gated idle
        assert r.l2_stats.hits > 3_000


class TestResizing:
    def test_timeline_recorded(self):
        rows = [(i * 5, (i % 100) * 64, i % 2, False, True) for i in range(5000)]
        stream = synthetic_stream(rows)
        r = DynamicPartitionDesign().run(stream, DEFAULT_PLATFORM)
        tl = r.extras
        assert len(tl["timeline_ticks"]) == len(tl["timeline_user_ways"])
        assert len(tl["timeline_ticks"]) == len(tl["timeline_kernel_ways"])

    def test_ways_respect_bounds(self):
        rows = [(i * 5, int(np.random.default_rng(i % 7).integers(0, 4000)) * 64,
                 i % 2, False, True) for i in range(8000)]
        stream = synthetic_stream(rows)
        cfg = DynamicControllerConfig()
        r = DynamicPartitionDesign(cfg).run(stream, DEFAULT_PLATFORM)
        assert all(cfg.min_ways <= w <= cfg.max_user_ways for w in r.extras["timeline_user_ways"])
        assert all(cfg.min_ways <= w <= cfg.max_kernel_ways for w in r.extras["timeline_kernel_ways"])

    def test_thrashing_segment_grows(self):
        # uniform traffic over a working set far beyond the start size
        rng = np.random.default_rng(3)
        rows = [(i * 3, int(rng.integers(0, 8000)) * 64, 0, False, True)
                for i in range(60_000)]
        stream = synthetic_stream(rows)
        cfg = DynamicControllerConfig(epoch_ticks=10_000, start_user_ways=2)
        r = DynamicPartitionDesign(cfg).run(stream, DEFAULT_PLATFORM)
        assert max(r.extras["timeline_user_ways"]) > 2


def _bursty_rows(n_bursts=6, burst_len=800, idle=120_000):
    """Bursts of mixed-privilege traffic separated by multi-epoch idles."""
    rng = np.random.default_rng(11)
    rows = []
    tick = 0
    for _ in range(n_bursts):
        for _ in range(burst_len):
            tick += int(rng.integers(1, 8))
            rows.append((tick, int(rng.integers(0, 3000)) * 64,
                         int(rng.integers(0, 2)), bool(rng.integers(0, 2)), True))
        tick += idle
    return rows


class TestControllerInvariants:
    """The resize timeline, resize counters and capacity integral must
    tell one consistent story, on both replay engines."""

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_timeline_ways_within_bounds(self, engine):
        stream = synthetic_stream(_bursty_rows())
        cfg = DynamicControllerConfig(epoch_ticks=10_000)
        r = DynamicPartitionDesign(cfg).run(stream, DEFAULT_PLATFORM, engine=engine)
        assert all(
            cfg.min_ways <= w <= cfg.max_user_ways
            for w in r.extras["timeline_user_ways"]
        )
        assert all(
            cfg.min_ways <= w <= cfg.max_kernel_ways
            for w in r.extras["timeline_kernel_ways"]
        )
        ticks = r.extras["timeline_ticks"]
        assert ticks == sorted(ticks) and ticks[0] == 0
        assert ticks[-1] < stream.duration_ticks

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_resizes_match_timeline_transitions(self, engine):
        # idle_accesses=0 disables idle gating, so wake-on-first-access
        # never fires and every resize is a timeline transition
        stream = synthetic_stream(_bursty_rows())
        cfg = DynamicControllerConfig(epoch_ticks=10_000, idle_accesses=0)
        r = DynamicPartitionDesign(cfg).run(stream, DEFAULT_PLATFORM, engine=engine)
        for seg, key in (("user", "timeline_user_ways"), ("kernel", "timeline_kernel_ways")):
            tl = r.extras[key]
            transitions = sum(1 for a, b in zip(tl, tl[1:]) if a != b)
            assert r.extras[f"{seg}_resizes"] == transitions

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_byte_ticks_match_timeline_integral(self, engine):
        # with wake disabled the powered size is piecewise constant
        # between boundaries, so the byte-tick integral is exactly the
        # timeline integral times the bytes per way
        stream = synthetic_stream(_bursty_rows())
        cfg = DynamicControllerConfig(epoch_ticks=10_000, idle_accesses=0)
        r = DynamicPartitionDesign(cfg).run(stream, DEFAULT_PLATFORM, engine=engine)
        l2 = DEFAULT_PLATFORM.l2
        bytes_per_way = l2.num_sets * l2.block_size
        edges = r.extras["timeline_ticks"] + [stream.duration_ticks]
        for seg, key in (("user", "timeline_user_ways"), ("kernel", "timeline_kernel_ways")):
            tl = r.extras[key]
            integral = sum(
                (edges[i + 1] - edges[i]) * tl[i] for i in range(len(tl))
            ) * bytes_per_way
            assert r.extras[f"{seg}_byte_ticks"] == integral

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_byte_ticks_bounded_with_gating(self, engine):
        # with idle gating and wakes the timeline alone cannot pin the
        # integral, but it stays inside the provisioned envelope
        stream = synthetic_stream(_bursty_rows())
        cfg = DynamicControllerConfig(epoch_ticks=10_000)
        r = DynamicPartitionDesign(cfg).run(stream, DEFAULT_PLATFORM, engine=engine)
        l2 = DEFAULT_PLATFORM.l2
        bytes_per_way = l2.num_sets * l2.block_size
        span = stream.duration_ticks
        for seg, cap in (("user", cfg.max_user_ways), ("kernel", cfg.max_kernel_ways)):
            bt = r.extras[f"{seg}_byte_ticks"]
            assert cfg.min_ways * bytes_per_way * span <= bt <= cap * bytes_per_way * span


class TestEnergyAccounting:
    def test_sram_variant_loses_data_on_gating(self):
        ws = [(i, (i % 20) * 64, 0, False, True) for i in range(2000)]
        wake = [(1_000_000 + i, (i % 20) * 64, 0, False, True) for i in range(2000)]
        stream = synthetic_stream(ws + wake)
        cfg = DynamicControllerConfig(epoch_ticks=25_000)
        stt = DynamicPartitionDesign(cfg).run(stream, DEFAULT_PLATFORM)
        sram_d = DynamicPartitionDesign(
            cfg, user_tech=sram(), kernel_tech=sram(), name="dynamic-sram"
        ).run(stream, DEFAULT_PLATFORM)
        assert sram_d.l2_stats.hits <= stt.l2_stats.hits

    def test_segments_report_max_provisioned_size(self):
        rows = [(i, (i % 10) * 64, 0, False, True) for i in range(1000)]
        stream = synthetic_stream(rows)
        cfg = DynamicControllerConfig()
        r = DynamicPartitionDesign(cfg).run(stream, DEFAULT_PLATFORM)
        assert r.segment("user").size_bytes == cfg.max_user_ways * 64 * 1024

    def test_result_structure(self, browser_stream_small):
        r = DynamicPartitionDesign().run(browser_stream_small, DEFAULT_PLATFORM)
        assert r.design == "dynamic-stt"
        r.l2_stats.check_invariants()
        assert r.l2_energy.total_j > 0
        assert r.extras["user_resizes"] >= 0

    def test_dynamic_leakage_below_static_on_idle_heavy_stream(self):
        from repro.core.multi_retention import multi_retention_design

        # bursts separated by long idle spans: gating should win clearly
        rows = []
        for burst in range(5):
            start = burst * 2_000_000
            rows += [(start + i, (i % 40) * 64, i % 2, False, True) for i in range(1000)]
        stream = synthetic_stream(rows)
        dyn = DynamicPartitionDesign().run(stream, DEFAULT_PLATFORM)
        static = multi_retention_design().run(stream, DEFAULT_PLATFORM)
        assert dyn.l2_energy.leakage_j < static.l2_energy.leakage_j

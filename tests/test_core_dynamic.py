"""Unit/integration tests for the dynamic partition design."""

import numpy as np
import pytest

from repro.cache.hierarchy import L2Stream
from repro.cache.stats import CacheStats
from repro.config import DEFAULT_PLATFORM
from repro.core.dynamic_partition import DynamicControllerConfig, DynamicPartitionDesign
from repro.energy.technology import sram, stt_ram
from repro.types import Privilege


def synthetic_stream(rows, name="synth", instructions=1_000_000, duration=None):
    """Build an L2Stream from (tick, addr, priv, write, demand) tuples."""
    ticks = np.array([r[0] for r in rows], dtype=np.int64)
    duration = duration if duration is not None else (int(ticks[-1]) + 1 if len(rows) else 0)
    return L2Stream(
        name=name,
        ticks=ticks,
        addrs=np.array([r[1] for r in rows], dtype=np.uint64),
        privs=np.array([r[2] for r in rows], dtype=np.uint8),
        writes=np.array([r[3] for r in rows], dtype=bool),
        demand=np.array([r[4] for r in rows], dtype=bool),
        instructions=instructions,
        trace_accesses=len(rows),
        duration_ticks=duration,
        l1i_stats=CacheStats(),
        l1d_stats=CacheStats(),
    )


class TestControllerConfig:
    def test_defaults_valid(self):
        cfg = DynamicControllerConfig()
        assert cfg.min_ways >= 1

    def test_rejects_bad_epoch(self):
        with pytest.raises(ValueError):
            DynamicControllerConfig(epoch_ticks=0)

    def test_rejects_start_above_max(self):
        with pytest.raises(ValueError):
            DynamicControllerConfig(start_user_ways=12, max_user_ways=10)

    def test_rejects_inverted_hysteresis(self):
        with pytest.raises(ValueError, match="hysteresis"):
            DynamicControllerConfig(grow_miss_rate=0.1, shrink_miss_rate=0.2)

    def test_rejects_zero_grow_step(self):
        with pytest.raises(ValueError, match="grow_step"):
            DynamicControllerConfig(grow_step=0)


class TestIdleGating:
    def test_idle_epochs_gate_to_min(self):
        # activity at start, then a long silent gap spanning many epochs
        rows = [(i * 10, (i % 50) * 64, 0, False, True) for i in range(300)]
        rows.append((2_000_000, 0, 0, False, True))
        stream = synthetic_stream(rows)
        cfg = DynamicControllerConfig(epoch_ticks=25_000)
        r = DynamicPartitionDesign(cfg).run(stream, DEFAULT_PLATFORM)
        uw = r.extras["timeline_user_ways"]
        assert min(uw) == cfg.min_ways  # gated during the silent span

    def test_gating_reduces_byte_seconds(self):
        rows = [(i * 10, (i % 50) * 64, 0, False, True) for i in range(300)]
        rows.append((5_000_000, 0, 0, False, True))
        stream = synthetic_stream(rows)
        r = DynamicPartitionDesign().run(stream, DEFAULT_PLATFORM)
        user_seg = r.segment("user")
        full_time = r.timing.seconds(DEFAULT_PLATFORM)
        assert user_seg.byte_seconds < user_seg.size_bytes * full_time * 0.8

    def test_wake_restores_retained_blocks(self):
        # touch a working set, sleep far beyond several epochs, touch again
        ws = [(i, (i % 20) * 64, 0, False, True) for i in range(2000)]
        wake = [(1_000_000 + i, (i % 20) * 64, 0, False, True) for i in range(2000)]
        stream = synthetic_stream(ws + wake)
        cfg = DynamicControllerConfig(epoch_ticks=25_000)
        d = DynamicPartitionDesign(cfg)  # short retention 8 ms >> 1 M ticks
        r = d.run(stream, DEFAULT_PLATFORM)
        # second burst should hit: data retained through the gated idle
        assert r.l2_stats.hits > 3_000


class TestResizing:
    def test_timeline_recorded(self):
        rows = [(i * 5, (i % 100) * 64, i % 2, False, True) for i in range(5000)]
        stream = synthetic_stream(rows)
        r = DynamicPartitionDesign().run(stream, DEFAULT_PLATFORM)
        tl = r.extras
        assert len(tl["timeline_ticks"]) == len(tl["timeline_user_ways"])
        assert len(tl["timeline_ticks"]) == len(tl["timeline_kernel_ways"])

    def test_ways_respect_bounds(self):
        rows = [(i * 5, int(np.random.default_rng(i % 7).integers(0, 4000)) * 64,
                 i % 2, False, True) for i in range(8000)]
        stream = synthetic_stream(rows)
        cfg = DynamicControllerConfig()
        r = DynamicPartitionDesign(cfg).run(stream, DEFAULT_PLATFORM)
        assert all(cfg.min_ways <= w <= cfg.max_user_ways for w in r.extras["timeline_user_ways"])
        assert all(cfg.min_ways <= w <= cfg.max_kernel_ways for w in r.extras["timeline_kernel_ways"])

    def test_thrashing_segment_grows(self):
        # uniform traffic over a working set far beyond the start size
        rng = np.random.default_rng(3)
        rows = [(i * 3, int(rng.integers(0, 8000)) * 64, 0, False, True)
                for i in range(60_000)]
        stream = synthetic_stream(rows)
        cfg = DynamicControllerConfig(epoch_ticks=10_000, start_user_ways=2)
        r = DynamicPartitionDesign(cfg).run(stream, DEFAULT_PLATFORM)
        assert max(r.extras["timeline_user_ways"]) > 2


class TestEnergyAccounting:
    def test_sram_variant_loses_data_on_gating(self):
        ws = [(i, (i % 20) * 64, 0, False, True) for i in range(2000)]
        wake = [(1_000_000 + i, (i % 20) * 64, 0, False, True) for i in range(2000)]
        stream = synthetic_stream(ws + wake)
        cfg = DynamicControllerConfig(epoch_ticks=25_000)
        stt = DynamicPartitionDesign(cfg).run(stream, DEFAULT_PLATFORM)
        sram_d = DynamicPartitionDesign(
            cfg, user_tech=sram(), kernel_tech=sram(), name="dynamic-sram"
        ).run(stream, DEFAULT_PLATFORM)
        assert sram_d.l2_stats.hits <= stt.l2_stats.hits

    def test_segments_report_max_provisioned_size(self):
        rows = [(i, (i % 10) * 64, 0, False, True) for i in range(1000)]
        stream = synthetic_stream(rows)
        cfg = DynamicControllerConfig()
        r = DynamicPartitionDesign(cfg).run(stream, DEFAULT_PLATFORM)
        assert r.segment("user").size_bytes == cfg.max_user_ways * 64 * 1024

    def test_result_structure(self, browser_stream_small):
        r = DynamicPartitionDesign().run(browser_stream_small, DEFAULT_PLATFORM)
        assert r.design == "dynamic-stt"
        r.l2_stats.check_invariants()
        assert r.l2_energy.total_j > 0
        assert r.extras["user_resizes"] >= 0

    def test_dynamic_leakage_below_static_on_idle_heavy_stream(self):
        from repro.core.multi_retention import multi_retention_design

        # bursts separated by long idle spans: gating should win clearly
        rows = []
        for burst in range(5):
            start = burst * 2_000_000
            rows += [(start + i, (i % 40) * 64, i % 2, False, True) for i in range(1000)]
        stream = synthetic_stream(rows)
        dyn = DynamicPartitionDesign().run(stream, DEFAULT_PLATFORM)
        static = multi_retention_design().run(stream, DEFAULT_PLATFORM)
        assert dyn.l2_energy.leakage_j < static.l2_energy.leakage_j

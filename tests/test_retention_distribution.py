"""Tests for the exponential retention-lifetime mode."""

import pytest

from repro.cache.set_assoc import SetAssociativeCache
from repro.config import CacheGeometry


def cache(dist="exponential", retention=1000, seed=1):
    return SetAssociativeCache(
        CacheGeometry(4 * 64, 4), "lru",
        retention_ticks=retention, refresh_mode="invalidate",
        retention_distribution=dist, retention_seed=seed,
    )


class TestConstruction:
    def test_rejects_unknown_distribution(self):
        with pytest.raises(ValueError, match="retention_distribution"):
            cache(dist="weibull")

    def test_fixed_mode_draws_no_lifetimes(self):
        c = cache(dist="fixed")
        c.access(0x0, False, 0, 0)
        entry = c._frames[0][0]
        assert entry.life is None

    def test_exponential_mode_draws_lifetimes(self):
        c = cache()
        c.access(0x0, False, 0, 0)
        entry = c._frames[0][0]
        assert entry.life is not None and entry.life >= 1


class TestBehaviour:
    def test_deterministic_for_seed(self):
        a, b = cache(seed=7), cache(seed=7)
        hits_a = hits_b = 0
        for i in range(200):
            t = i * 100
            hits_a += a.access((i % 8) * 64, False, 0, t).hit
            hits_b += b.access((i % 8) * 64, False, 0, t).hit
        assert hits_a == hits_b

    def test_some_early_deaths_under_exponential(self):
        """With rewrites every half mean-lifetime, the fixed window
        never expires but exponential lifetimes sometimes die early."""
        fixed = cache(dist="fixed", retention=1000)
        expo = cache(dist="exponential", retention=1000, seed=3)
        for i in range(400):
            t = i * 500  # stores every 500 ticks reset the cells
            fixed.access(0x0, True, 0, t)
            expo.access(0x0, True, 0, t)
        assert fixed.stats.expiry_invalidations == 0
        assert expo.stats.expiry_invalidations > 0

    def test_write_redraws_lifetime(self):
        c = cache(seed=5)
        c.access(0x0, True, 0, 0)
        first = c._frames[0][0].life
        c.access(0x0, True, 0, 10)
        second = c._frames[0][0].life
        assert first != second  # new draw on rewrite (overwhelmingly likely)

    def test_mean_expiry_rate_tracks_exponential_law(self):
        """P(survive one interval d) should be ~exp(-d/tau)."""
        import math

        tau, d, n = 1000, 700, 3000
        c = cache(retention=tau, seed=11)
        survived = died = 0
        for i in range(n):
            t0 = i * 10 * tau  # far apart: fresh fill each round
            c.access(0x0, False, 0, t0)
            r = c.access(0x0, False, 0, t0 + d)
            if r.hit:
                survived += 1
            elif r.expired:
                died += 1
        p_survive = survived / (survived + died)
        assert p_survive == pytest.approx(math.exp(-d / tau), abs=0.05)

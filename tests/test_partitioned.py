"""Unit tests for the privilege-partitioned cache."""

import pytest

from repro.cache.partitioned import PartitionedCache
from repro.cache.set_assoc import SetAssociativeCache
from repro.config import CacheGeometry
from repro.types import Privilege

U, K = int(Privilege.USER), int(Privilege.KERNEL)


def make_partitioned(user_ways=2, kernel_ways=2, sets=16):
    segs = {
        Privilege.USER: SetAssociativeCache(
            CacheGeometry(sets * user_ways * 64, user_ways), name="u"),
        Privilege.KERNEL: SetAssociativeCache(
            CacheGeometry(sets * kernel_ways * 64, kernel_ways), name="k"),
    }
    return PartitionedCache(segs)


class TestConstruction:
    def test_requires_both_privileges(self):
        seg = SetAssociativeCache(CacheGeometry(2048, 2))
        with pytest.raises(ValueError, match="missing segments"):
            PartitionedCache({Privilege.USER: seg})

    def test_requires_matching_sets(self):
        segs = {
            Privilege.USER: SetAssociativeCache(CacheGeometry(16 * 2 * 64, 2)),
            Privilege.KERNEL: SetAssociativeCache(CacheGeometry(8 * 2 * 64, 2)),
        }
        with pytest.raises(ValueError, match="share set count"):
            PartitionedCache(segs)

    def test_size_is_sum(self):
        pc = make_partitioned(user_ways=4, kernel_ways=2)
        assert pc.size_bytes == pc.user.size_bytes + pc.kernel.size_bytes

    def test_repr(self):
        assert "user" in repr(make_partitioned())


class TestIsolation:
    def test_routing_by_privilege(self):
        pc = make_partitioned()
        pc.access(0x0, False, U, 0)
        pc.access(0xC000_0000, False, K, 1)
        assert pc.user.stats.accesses == 1
        assert pc.kernel.stats.accesses == 1

    def test_kernel_cannot_evict_user(self):
        pc = make_partitioned(user_ways=1, kernel_ways=1, sets=1)
        pc.access(0x0, False, U, 0)
        for i in range(10):  # heavy kernel traffic
            pc.access(0x40 * (i + 1), False, K, i + 1)
        assert pc.access(0x0, False, U, 100).hit

    def test_no_cross_privilege_evictions_ever(self):
        import numpy as np

        rng = np.random.default_rng(1)
        pc = make_partitioned(sets=4)
        for i in range(2000):
            priv = int(rng.integers(0, 2))
            addr = int(rng.integers(0, 64)) * 64
            pc.access(addr, bool(rng.integers(0, 2)), priv, i)
        assert pc.stats.cross_privilege_evictions == 0

    def test_same_address_can_live_in_both_segments(self):
        # With privilege routing, address 0x0 accessed at both levels
        # occupies a frame in each segment independently.
        pc = make_partitioned()
        pc.access(0x0, False, U, 0)
        pc.access(0x0, False, K, 1)
        assert pc.access(0x0, False, U, 2).hit
        assert pc.access(0x0, False, K, 3).hit


class TestAggregation:
    def test_merged_stats(self):
        pc = make_partitioned()
        pc.access(0x0, False, U, 0)
        pc.access(0x0, False, U, 1)
        pc.access(0xC000_0000, False, K, 2)
        merged = pc.stats
        assert merged.accesses == 3
        assert merged.hits == 1
        merged.check_invariants()

    def test_segment_for(self):
        pc = make_partitioned()
        assert pc.segment_for(U) is pc.user
        assert pc.segment_for(K) is pc.kernel

    def test_finalize_propagates(self):
        segs = {
            Privilege.USER: SetAssociativeCache(
                CacheGeometry(16 * 2 * 64, 2), retention_ticks=10,
                refresh_mode="rewrite"),
            Privilege.KERNEL: SetAssociativeCache(CacheGeometry(16 * 2 * 64, 2)),
        }
        pc = PartitionedCache(segs)
        pc.access(0x0, False, U, 0)
        pc.finalize(1000)
        assert pc.user.stats.refresh_writes > 0

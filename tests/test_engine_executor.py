"""Tests for the parallel executor and the grid sweep layer."""

import pytest

import repro.engine.executor as executor_mod
from repro.engine.executor import run_jobs
from repro.engine.spec import JobSpec
from repro.engine.store import ResultStore
from repro.engine.sweep import run_sweep

LENGTH = 8_000


def _grid(designs=("baseline", "static-stt"), apps=("browser", "game")):
    return [JobSpec(d, a, length=LENGTH) for d in designs for a in apps]


class TestRunJobs:
    def test_outcomes_in_input_order(self):
        specs = _grid()
        outcomes = run_jobs(specs, jobs=1)
        assert [o.spec for o in outcomes] == specs
        assert all(not o.cached for o in outcomes)

    def test_parallel_matches_serial(self):
        specs = _grid()
        serial = run_jobs(specs, jobs=1)
        parallel = run_jobs(specs, jobs=2)
        for s, p in zip(serial, parallel):
            assert s.result == p.result

    def test_duplicate_specs_share_one_simulation(self):
        spec = JobSpec("baseline", "browser", length=LENGTH)
        calls = []
        original = executor_mod._timed_execute

        def counting(s):
            calls.append(s)
            return original(s)

        executor_mod._timed_execute = counting
        try:
            outcomes = run_jobs([spec, spec, spec], jobs=1)
        finally:
            executor_mod._timed_execute = original
        assert len(calls) == 1
        assert len(outcomes) == 3
        assert outcomes[0].result == outcomes[2].result

    def test_store_round_trip_between_batches(self, tmp_path):
        store = ResultStore(tmp_path)
        specs = _grid()
        cold = run_jobs(specs, jobs=1, store=store)
        warm = run_jobs(specs, jobs=1, store=store)
        assert all(not o.cached for o in cold)
        assert all(o.cached for o in warm)
        for c, w in zip(cold, warm):
            assert c.result == w.result

    def test_progress_callback_counts(self, tmp_path):
        store = ResultStore(tmp_path)
        specs = _grid()
        run_jobs(specs[:1], jobs=1, store=store)  # pre-warm one entry
        events = []
        run_jobs(specs, jobs=1, store=store, progress=events.append)
        assert len(events) == len(specs)
        assert events[0].cached == 1
        final = events[-1]
        assert final.completed == final.total == len(specs)
        assert final.running == 0
        assert "cached" in final.render()

    def test_retry_once_then_succeed(self):
        spec = JobSpec("baseline", "browser", length=LENGTH)
        original = executor_mod._timed_execute
        failures = iter([RuntimeError("injected")])

        def flaky(s):
            for exc in failures:
                raise exc
            return original(s)

        executor_mod._timed_execute = flaky
        try:
            outcomes = run_jobs([spec], jobs=1)
        finally:
            executor_mod._timed_execute = original
        assert outcomes[0].attempts == 2

    def test_persistent_failure_propagates(self):
        spec = JobSpec("baseline", "browser", length=LENGTH,
                       design_kwargs={"policy": "bogus"})
        with pytest.raises(ValueError):
            run_jobs([spec], jobs=1)

    def test_persistent_failure_propagates_from_pool(self):
        specs = [
            JobSpec("baseline", "browser", length=LENGTH),
            JobSpec("baseline", "game", length=LENGTH,
                    design_kwargs={"policy": "bogus"}),
        ]
        with pytest.raises(ValueError):
            run_jobs(specs, jobs=2)

    def test_bad_jobs_count_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            run_jobs([], jobs=0)


class TestRunSweep:
    def test_sweep_grid_and_summary(self, tmp_path):
        store = ResultStore(tmp_path)
        sweep = run_sweep(("baseline",), ("browser", "game"), seeds=(0, 1),
                          length=LENGTH, store=store)
        assert len(sweep.outcomes) == 4
        assert sweep.simulated == 4
        assert sweep.hit_rate() == 0.0
        assert ("baseline", "game", 1) in sweep.results()
        rendered = sweep.render()
        assert "0/4 jobs served from cache" in rendered

    def test_second_sweep_is_fully_cached(self, tmp_path):
        store = ResultStore(tmp_path)
        args = dict(designs=("baseline",), apps=("browser",), length=LENGTH, store=store)
        run_sweep(**args)
        warm = run_sweep(**args)
        assert warm.cached == 1
        assert warm.hit_rate() == 1.0
        assert "100.0%" in warm.render()

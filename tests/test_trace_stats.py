"""Unit tests for trace statistics."""

import numpy as np
import pytest

from conftest import make_trace
from repro.trace.stats import (
    IntervalSummary,
    footprint_bytes,
    inter_access_intervals,
    kernel_access_share,
    reuse_distances,
    summarize_intervals,
    unique_blocks,
)
from repro.types import AccessKind, Privilege

L, U, K = AccessKind.LOAD, Privilege.USER, Privilege.KERNEL


class TestFootprint:
    def test_unique_blocks_counts_blocks_not_accesses(self):
        t = make_trace([(0, 0, L, U), (1, 0, L, U), (2, 64, L, U), (3, 65, L, U)])
        assert unique_blocks(t) == 2

    def test_footprint_bytes(self):
        t = make_trace([(0, 0, L, U), (1, 128, L, U)])
        assert footprint_bytes(t) == 128

    def test_per_privilege(self):
        t = make_trace([(0, 0, L, U), (1, 0xC000_0000, L, K)])
        assert unique_blocks(t, Privilege.USER) == 1
        assert unique_blocks(t, Privilege.KERNEL) == 1

    def test_empty(self):
        assert unique_blocks(make_trace([])) == 0


class TestKernelShare:
    def test_share(self):
        t = make_trace([(0, 0, L, U), (1, 0xC000_0000, L, K)])
        assert kernel_access_share(t) == pytest.approx(0.5)


class TestReuseDistances:
    def test_no_reuse_no_distances(self):
        t = make_trace([(i, i * 64, L, U) for i in range(5)])
        assert len(reuse_distances(t)) == 0

    def test_immediate_reuse_distance_zero(self):
        t = make_trace([(0, 0, L, U), (1, 0, L, U)])
        assert list(reuse_distances(t)) == [0]

    def test_classic_stack_distance(self):
        # A B C A: distance of final A is 2 (B and C in between)
        t = make_trace([(0, 0, L, U), (1, 64, L, U), (2, 128, L, U), (3, 0, L, U)])
        assert list(reuse_distances(t)) == [2]

    def test_duplicate_intermediate_counts_once(self):
        # A B B A: stack distance of final A is 1
        t = make_trace([(0, 0, L, U), (1, 64, L, U), (2, 64, L, U), (3, 0, L, U)])
        assert list(reuse_distances(t)) == [0, 1]

    def test_max_samples_bounds_work(self):
        t = make_trace([(i, (i % 3) * 64, L, U) for i in range(100)])
        d = reuse_distances(t, max_samples=10)
        assert len(d) <= 10


class TestIntervals:
    def test_gaps_between_same_block(self):
        t = make_trace([(0, 0, L, U), (5, 0, L, U), (12, 0, L, U)])
        assert sorted(inter_access_intervals(t)) == [5, 7]

    def test_different_blocks_no_interval(self):
        t = make_trace([(0, 0, L, U), (5, 64, L, U)])
        assert len(inter_access_intervals(t)) == 0

    def test_privilege_filter(self):
        t = make_trace([(0, 0xC000_0000, L, K), (9, 0xC000_0000, L, K), (10, 0, L, U)])
        assert list(inter_access_intervals(t, Privilege.KERNEL)) == [9]
        assert len(inter_access_intervals(t, Privilege.USER)) == 0

    def test_empty_trace(self):
        assert len(inter_access_intervals(make_trace([]))) == 0


class TestSummaries:
    def test_empty_summary(self):
        s = summarize_intervals(np.array([], dtype=np.int64))
        assert s.count == 0
        assert s.mean == 0.0

    def test_summary_fields(self):
        s = summarize_intervals(np.array([1, 2, 3, 4, 100]))
        assert s.count == 5
        assert s.mean == pytest.approx(22.0)
        assert s.median == 3
        assert s.max == 100
        assert s.p90 >= s.median

    def test_row_order(self):
        s = IntervalSummary(1, 2.0, 3.0, 4.0, 5.0, 6.0)
        assert s.row() == (1, 2.0, 3.0, 4.0, 5.0, 6.0)

"""Suite-level calibration tests: the paper's claims, as test bands.

These are the slowest tests in the suite (experiment-length traces) but
they are the ones that pin the reproduction to the paper:

* >40% of L2 accesses come from the kernel (suite mean);
* the static partition keeps the miss rate similar to the baseline;
* the static multi-retention STT-RAM technique saves ~75% L2 energy at a
  few percent performance loss;
* the dynamic technique saves more energy than the static one (~85%) at
  a slightly higher performance loss.

Bands are deliberately loose — they assert the *shape* of the result,
not the third digit.  EXPERIMENTS.md records the exact measured values.
"""

import numpy as np
import pytest

from repro.experiments import (
    EXPERIMENT_TRACE_LENGTH,
    canonical_result,
    fig1_kernel_share,
    fig8_energy_summary,
    table4_performance,
)
from repro.trace.workloads import APP_NAMES

pytestmark = pytest.mark.slow

LENGTH = EXPERIMENT_TRACE_LENGTH


class TestMotivation:
    def test_kernel_share_exceeds_40_percent(self):
        r = fig1_kernel_share(LENGTH)
        assert r.mean > 0.40
        # and every app shows a substantial kernel component
        assert min(r.shares.values()) > 0.25

    def test_baseline_miss_rate_plausible(self):
        rates = [
            canonical_result("baseline", app, LENGTH).l2_stats.demand_miss_rate
            for app in APP_NAMES
        ]
        assert 0.08 < float(np.mean(rates)) < 0.40

    def test_interference_exists_in_baseline(self):
        xevicts = [
            canonical_result("baseline", app, LENGTH).l2_stats.cross_privilege_evictions
            for app in APP_NAMES
        ]
        assert float(np.mean(xevicts)) > 100


class TestStaticTechnique:
    def test_partition_keeps_miss_rate_similar(self):
        deltas = []
        for app in APP_NAMES:
            base = canonical_result("baseline", app, LENGTH).l2_stats.demand_miss_rate
            part = canonical_result("static-sram", app, LENGTH).l2_stats.demand_miss_rate
            deltas.append(part - base)
        assert float(np.mean(deltas)) < 0.02  # within 2 points of the baseline

    def test_static_stt_energy_saving_near_75_percent(self):
        saving = fig8_energy_summary(LENGTH).saving("static-stt")
        assert 0.65 < saving < 0.85

    def test_static_perf_loss_small(self):
        loss = table4_performance(LENGTH).mean("static-stt")
        assert loss < 0.06  # the paper reports ~2%; we stay in single digits


class TestDynamicTechnique:
    def test_dynamic_saves_more_than_static(self):
        summary = fig8_energy_summary(LENGTH)
        assert summary.saving("dynamic-stt") > summary.saving("static-stt")

    def test_dynamic_energy_saving_near_85_percent(self):
        saving = fig8_energy_summary(LENGTH).saving("dynamic-stt")
        assert 0.75 < saving < 0.92

    def test_dynamic_perf_loss_above_static_but_bounded(self):
        t = table4_performance(LENGTH)
        assert t.mean("static-stt") <= t.mean("dynamic-stt") < 0.12

    def test_dynamic_uses_less_capacity_time(self):
        for app in ("browser", "social"):
            dyn = canonical_result("dynamic-stt", app, LENGTH)
            static = canonical_result("static-stt", app, LENGTH)
            dyn_bs = sum(s.byte_seconds for s in dyn.segments)
            static_bs = sum(s.byte_seconds for s in static.segments)
            assert dyn_bs < static_bs


class TestOrdering:
    def test_energy_ordering_of_all_designs(self):
        summary = fig8_energy_summary(LENGTH)
        assert (
            summary.mean("baseline")
            > summary.mean("static-sram")
            > summary.mean("static-stt")
            > summary.mean("dynamic-stt")
        )

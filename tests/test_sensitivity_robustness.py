"""Tests for the sensitivity and seed-robustness experiments."""

from repro.experiments import (
    dram_latency_sensitivity,
    l2_latency_sensitivity,
    seed_robustness,
)

SHORT = 40_000


class TestSensitivity:
    def test_dram_sweep_structure(self):
        r = dram_latency_sensitivity(SHORT, apps=("game",), latencies=(100, 200))
        assert len(r.rows) == 2
        assert r.rows[0].parameter_value == 100
        assert "Sensitivity" in r.render()

    def test_energy_norm_in_unit_range(self):
        r = dram_latency_sensitivity(SHORT, apps=("game",), latencies=(140,))
        assert 0.0 < r.rows[0].static_stt_energy_norm < 1.0

    def test_higher_dram_latency_lowers_norm(self):
        # more stall time -> more baseline leakage -> lower STT norm
        r = dram_latency_sensitivity(SHORT, apps=("game",), latencies=(80, 300))
        assert r.rows[1].static_stt_energy_norm <= r.rows[0].static_stt_energy_norm

    def test_l2_sweep(self):
        r = l2_latency_sensitivity(SHORT, apps=("game",), latencies=(12, 30))
        assert len(r.rows) == 2
        assert r.energy_spread() >= 0.0


class TestSeedRobustness:
    def test_structure(self):
        r = seed_robustness(SHORT, seeds=(0, 1), apps=("game",))
        assert r.seeds == (0, 1)
        assert len(r.static_savings) == 2
        assert "Seed robustness" in r.render()

    def test_savings_plausible_every_seed(self):
        r = seed_robustness(SHORT, seeds=(0, 1), apps=("game", "email"))
        assert all(0.4 < s < 0.95 for s in r.static_savings)
        assert all(0.5 < s < 0.98 for s in r.dynamic_savings)

    def test_std_computed(self):
        r = seed_robustness(SHORT, seeds=(0, 1), apps=("game",))
        assert r.static_saving_std() >= 0.0

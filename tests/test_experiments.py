"""Tests for the experiment harness (report, runner, figures, tables).

Figure/table functions run on shortened traces and app subsets here; the
full-length versions are exercised by the benchmarks.
"""

import pytest

from repro.experiments import (
    canonical_result,
    experiment_stream,
    fig1_kernel_share,
    fig2_interference,
    fig3_size_sweep,
    fig5_intervals,
    fig6_energy_breakdown,
    fig7_dynamic_timeline,
    fig8_energy_summary,
    format_percent,
    format_series,
    format_table,
    suite_results,
    table1_configuration,
    table2_technology,
    table3_workloads,
    table4_performance,
)

SHORT = 40_000
APPS = ("game", "email")


class TestReport:
    def test_format_percent(self):
        assert format_percent(0.4213) == "42.1%"
        assert format_percent(0.5, digits=0) == "50%"

    def test_format_table_alignment(self):
        out = format_table("T", ["name", "value"], [["a", 1], ["bb", 22]])
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a " in out and " 1" in out

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="cells"):
            format_table("T", ["a", "b"], [["only-one"]])

    def test_format_series(self):
        out = format_series("S", "x", "y", [(1, 2), (3, 4)])
        assert "x" in out and "y" in out


class TestRunner:
    def test_stream_cached(self):
        a = experiment_stream("game", SHORT)
        b = experiment_stream("game", SHORT)
        assert a is b

    def test_canonical_result_cached(self):
        a = canonical_result("baseline", "game", SHORT)
        b = canonical_result("baseline", "game", SHORT)
        assert a is b

    def test_canonical_rejects_unknown_design(self):
        with pytest.raises(ValueError, match="unknown design"):
            canonical_result("foo", "game", SHORT)

    def test_suite_results_keys(self):
        res = suite_results("baseline", SHORT, apps=APPS)
        assert tuple(res) == APPS


class TestFigures:
    def test_fig1(self):
        r = fig1_kernel_share(SHORT, APPS)
        assert set(r.shares) == set(APPS)
        assert 0 < r.mean < 1
        assert "Figure 1" in r.render()

    def test_fig2(self):
        r = fig2_interference(SHORT, ("game",))
        row = r.rows[0]
        assert row.app == "game"
        assert row.cross_evictions_per_kilo_access >= 0
        assert "Figure 2" in r.render()

    def test_fig3_monotone_in_size(self):
        r = fig3_size_sweep(SHORT, ("game",), sizes_kb=(128, 1024))
        sizes = [s for s, _ in r.points]
        rates = [mr for _, mr in r.points]
        assert sizes == sorted(sizes)
        assert rates[0] >= rates[-1]
        assert "Figure 3" in r.render()

    def test_fig5(self):
        r = fig5_intervals(SHORT, ("game",))
        assert {row.privilege for row in r.rows} == {"user", "kernel"}
        for row in r.rows:
            assert row.p50_ms <= row.p90_ms <= row.p99_ms
        assert "retention windows" in r.render()

    def test_fig6(self):
        r = fig6_energy_breakdown(SHORT, APPS)
        designs = [row.design for row in r.rows]
        assert designs == list(("baseline", "static-sram", "static-stt", "dynamic-stt"))
        base = r.rows[0]
        assert base.normalized_total == pytest.approx(1.0)
        assert "Figure 6" in r.render()

    def test_fig7(self):
        r = fig7_dynamic_timeline("game", SHORT)
        assert len(r.ticks) == len(r.user_ways)
        assert r.mean_user_ways > 0
        assert "Figure 7" in r.render()

    def test_fig8(self):
        r = fig8_energy_summary(SHORT, APPS)
        assert r.mean("baseline") == pytest.approx(1.0)
        assert r.saving("static-stt") > 0
        assert "Figure 8" in r.render()


class TestTables:
    def test_table1(self):
        out = table1_configuration().render()
        assert "L2 cache" in out and "1024 KB" in out

    def test_table2(self):
        t = table2_technology()
        assert any("sram" in row[0] for row in t.rows)
        assert any("stt-short" in row[0] for row in t.rows)
        assert "Table 2" in t.render()

    def test_table3_lists_all_apps(self):
        t = table3_workloads()
        assert len(t.rows) == 8

    def test_table4(self):
        t = table4_performance(SHORT, APPS)
        assert set(t.loss) == set(APPS)
        for app in APPS:
            assert "baseline" not in t.loss[app]
        assert "Table 4" in t.render()
        assert t.mean("static-sram") is not None

"""Unit tests for the stack-distance analytics."""

import numpy as np
import pytest

from repro.analytic import profile_blocks, stack_distances


class TestStackDistances:
    def test_empty(self):
        assert len(stack_distances(np.array([], dtype=np.int64))) == 0

    def test_first_touches_are_minus_one(self):
        d = stack_distances(np.array([1, 2, 3]))
        assert list(d) == [-1, -1, -1]

    def test_immediate_reuse(self):
        d = stack_distances(np.array([7, 7]))
        assert d[1] == 0

    def test_classic_sequence(self):
        # A B C A -> final A at distance 2
        d = stack_distances(np.array([0, 1, 2, 0]))
        assert d[3] == 2

    def test_duplicates_counted_once(self):
        # A B B A -> final A at distance 1 (B counted once)
        d = stack_distances(np.array([0, 1, 1, 0]))
        assert d[3] == 1

    def test_matches_naive_model_on_random_stream(self):
        rng = np.random.default_rng(3)
        blocks = rng.integers(0, 30, size=400)
        fast = stack_distances(blocks)
        # naive reference: LRU stack
        stack: list[int] = []
        slow = []
        for b in blocks.tolist():
            if b in stack:
                idx = stack.index(b)
                slow.append(len(stack) - 1 - idx)
                stack.pop(idx)
            else:
                slow.append(-1)
            stack.append(b)
        assert list(fast) == slow


class TestStackProfile:
    def test_cold_share(self):
        p = profile_blocks(np.array([1, 2, 3, 1]))
        assert p.cold == 3
        assert p.cold_share == pytest.approx(0.75)

    def test_miss_rate_monotone_in_capacity(self):
        rng = np.random.default_rng(0)
        p = profile_blocks(rng.integers(0, 100, size=5000))
        rates = [p.miss_rate(c) for c in (1, 4, 16, 64, 256)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_infinite_capacity_leaves_cold_misses(self):
        p = profile_blocks(np.array([1, 2, 1, 2]))
        assert p.miss_rate(10_000) == pytest.approx(p.cold_share)

    def test_capacity_one_catches_immediate_reuse(self):
        p = profile_blocks(np.array([5, 5, 5]))
        assert p.miss_rate(1) == pytest.approx(1 / 3)

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            profile_blocks(np.array([1])).miss_rate(0)

    def test_curve_shape(self):
        p = profile_blocks(np.array([1, 2, 3, 1, 2, 3]))
        curve = p.curve([1, 3, 8])
        assert [c for c, _ in curve] == [1, 3, 8]
        assert curve[-1][1] == pytest.approx(0.5)  # only cold misses left

    def test_empty_profile(self):
        p = profile_blocks(np.array([], dtype=np.int64))
        assert p.miss_rate(4) == 0.0
        assert p.cold_share == 0.0


class TestAgainstSimulator:
    def test_fully_associative_prediction_matches_high_assoc_sim(self):
        """A 64-way set-assoc cache ~= fully associative: predicted
        miss rates must track the simulator within a few points."""
        from repro.cache.set_assoc import SetAssociativeCache
        from repro.config import CacheGeometry

        rng = np.random.default_rng(7)
        # working set with strong locality: 80% of refs to 40 hot blocks
        n = 5000
        hot = rng.integers(0, 40, size=n)
        cold = rng.integers(40, 4000, size=n)
        blocks = np.where(rng.random(n) < 0.8, hot, cold)

        profile = profile_blocks(blocks)
        capacity = 128  # blocks
        predicted = profile.miss_rate(capacity)

        cache = SetAssociativeCache(CacheGeometry(capacity * 64, 64))
        hits = 0
        for i, b in enumerate(blocks.tolist()):
            hits += cache.access(int(b) * 64, False, 0, i).hit
        simulated = 1 - hits / len(blocks)
        assert predicted == pytest.approx(simulated, abs=0.05)

"""Unit/integration tests for the design layer (baseline + static)."""

import pytest

from repro.config import DEFAULT_PLATFORM, CacheGeometry
from repro.core.baseline import BaselineDesign
from repro.core.designs import DESIGN_NAMES, make_design, paper_designs
from repro.core.multi_retention import multi_retention_design
from repro.core.result import DesignResult
from repro.core.static_partition import StaticPartitionDesign
from repro.energy.technology import stt_ram
from repro.types import Privilege


class TestRegistry:
    def test_four_canonical_designs(self):
        assert DESIGN_NAMES == ("baseline", "static-sram", "static-stt", "dynamic-stt")

    def test_make_each(self):
        for name in DESIGN_NAMES:
            assert make_design(name) is not None

    def test_unknown_design(self):
        with pytest.raises(ValueError, match="unknown design"):
            make_design("magic")

    def test_paper_designs_order(self):
        assert tuple(paper_designs()) == DESIGN_NAMES


class TestBaselineDesign:
    def test_run_produces_result(self, browser_stream_small):
        r = BaselineDesign().run(browser_stream_small, DEFAULT_PLATFORM)
        assert isinstance(r, DesignResult)
        assert r.design == "baseline"
        assert r.app == "browser"
        assert [s.name for s in r.segments] == ["shared"]

    def test_stats_consistent_with_stream(self, browser_stream_small):
        r = BaselineDesign().run(browser_stream_small, DEFAULT_PLATFORM)
        assert r.l2_stats.accesses == len(browser_stream_small)
        assert r.l2_stats.demand_accesses == browser_stream_small.demand_count
        r.l2_stats.check_invariants()

    def test_custom_geometry(self, browser_stream_small):
        small = BaselineDesign(geometry=CacheGeometry(128 * 1024, 16))
        big = BaselineDesign()
        mr_small = small.run(browser_stream_small, DEFAULT_PLATFORM).l2_stats.demand_miss_rate
        mr_big = big.run(browser_stream_small, DEFAULT_PLATFORM).l2_stats.demand_miss_rate
        assert mr_small > mr_big

    def test_rejects_finite_retention_tech(self):
        with pytest.raises(ValueError, match="retention"):
            BaselineDesign(tech=stt_ram("short"))

    def test_energy_positive(self, browser_stream_small):
        e = BaselineDesign().run(browser_stream_small, DEFAULT_PLATFORM).l2_energy
        assert e.leakage_j > 0 and e.read_j > 0 and e.write_j > 0
        assert e.refresh_j == 0.0

    def test_dram_energy_tracks_misses(self, browser_stream_small):
        r = BaselineDesign().run(browser_stream_small, DEFAULT_PLATFORM)
        assert r.dram_j > 0

    def test_summary_row_renders(self, browser_stream_small):
        r = BaselineDesign().run(browser_stream_small, DEFAULT_PLATFORM)
        assert "baseline" in r.summary_row()


class TestStaticPartitionDesign:
    def test_segments_named(self, browser_stream_small):
        r = StaticPartitionDesign().run(browser_stream_small, DEFAULT_PLATFORM)
        assert {s.name for s in r.segments} == {"user", "kernel"}

    def test_accesses_routed_by_privilege(self, browser_stream_small):
        r = StaticPartitionDesign().run(browser_stream_small, DEFAULT_PLATFORM)
        user_seg = r.segment("user")
        kernel_seg = r.segment("kernel")
        assert user_seg.stats.accesses_by_priv[int(Privilege.KERNEL)] == 0
        assert kernel_seg.stats.accesses_by_priv[int(Privilege.USER)] == 0

    def test_no_cross_privilege_evictions(self, browser_stream_small):
        r = StaticPartitionDesign().run(browser_stream_small, DEFAULT_PLATFORM)
        assert r.l2_stats.cross_privilege_evictions == 0

    def test_active_bytes(self, browser_stream_small):
        r = StaticPartitionDesign(user_ways=8, kernel_ways=4).run(
            browser_stream_small, DEFAULT_PLATFORM)
        assert r.active_bytes == (8 + 4) * 64 * 1024

    def test_rejects_zero_ways(self):
        with pytest.raises(ValueError):
            StaticPartitionDesign(user_ways=0)

    def test_segment_lookup_error(self, browser_stream_small):
        r = StaticPartitionDesign().run(browser_stream_small, DEFAULT_PLATFORM)
        with pytest.raises(KeyError):
            r.segment("shared")

    def test_shrunk_partition_uses_less_leakage(self, browser_stream_small):
        base = BaselineDesign().run(browser_stream_small, DEFAULT_PLATFORM)
        part = StaticPartitionDesign().run(browser_stream_small, DEFAULT_PLATFORM)
        assert part.l2_energy.leakage_j < base.l2_energy.leakage_j


class TestMultiRetentionDesign:
    def test_canonical_assignment(self):
        d = multi_retention_design()
        assert d.user_tech.retention.name == "medium"
        assert d.kernel_tech.retention.name == "short"

    def test_runs_with_expiries(self, browser_stream_small):
        r = multi_retention_design().run(browser_stream_small, DEFAULT_PLATFORM)
        st = r.l2_stats
        st.check_invariants()
        assert st.accesses == r.segment("user").stats.accesses + r.segment("kernel").stats.accesses

    def test_stt_leakage_below_sram(self, browser_stream_small):
        sram_part = StaticPartitionDesign().run(browser_stream_small, DEFAULT_PLATFORM)
        stt_part = multi_retention_design().run(browser_stream_small, DEFAULT_PLATFORM)
        assert stt_part.l2_energy.leakage_j < sram_part.l2_energy.leakage_j

    def test_rewrite_mode_refreshes(self, browser_stream_small):
        # Use a retention window far below the small trace's span so the
        # refresh controller has something to do.
        from dataclasses import replace

        tech = stt_ram("short")
        tiny = replace(tech, retention=replace(tech.retention, retention_s=2e-5))
        d = StaticPartitionDesign(
            user_tech=tiny, kernel_tech=tiny, refresh_mode="rewrite", name="rw")
        r = d.run(browser_stream_small, DEFAULT_PLATFORM)
        assert r.l2_stats.refresh_writes > 0
        assert r.l2_stats.expiry_invalidations == 0

    def test_invalidate_mode_no_refresh(self, browser_stream_small):
        r = multi_retention_design().run(browser_stream_small, DEFAULT_PLATFORM)
        assert r.l2_stats.refresh_writes == 0

    def test_custom_retentions(self, browser_stream_small):
        d = multi_retention_design(user_retention="long", kernel_retention="long")
        r = d.run(browser_stream_small, DEFAULT_PLATFORM)
        assert r.l2_stats.expiry_invalidations == 0


class TestTimingIntegration:
    def test_stt_write_latency_costs_performance(self, browser_stream_small):
        sram_part = StaticPartitionDesign(name="s").run(browser_stream_small, DEFAULT_PLATFORM)
        stt_part = multi_retention_design().run(browser_stream_small, DEFAULT_PLATFORM)
        assert stt_part.timing.busy_cycles >= sram_part.timing.busy_cycles

    def test_shared_and_partition_same_l1_stalls(self, browser_stream_small):
        a = BaselineDesign().run(browser_stream_small, DEFAULT_PLATFORM)
        b = StaticPartitionDesign().run(browser_stream_small, DEFAULT_PLATFORM)
        assert a.timing.l2_access_stall_cycles == b.timing.l2_access_stall_cycles

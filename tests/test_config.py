"""Unit tests for repro.config."""

import pytest

from repro.config import DEFAULT_PLATFORM, CacheGeometry, LatencyConfig, PlatformConfig


class TestCacheGeometry:
    def test_num_sets(self):
        g = CacheGeometry(1024 * 1024, 16)
        assert g.num_sets == 1024

    def test_num_blocks(self):
        g = CacheGeometry(4096, 4)
        assert g.num_blocks == 64

    def test_custom_block_size(self):
        g = CacheGeometry(8192, 2, block_size=128)
        assert g.num_sets == 32

    @pytest.mark.parametrize("size,assoc", [(0, 4), (-64, 4), (4096, 0), (4096, -1)])
    def test_rejects_non_positive(self, size, assoc):
        with pytest.raises(ValueError):
            CacheGeometry(size, assoc)

    def test_rejects_non_power_of_two_block(self):
        with pytest.raises(ValueError, match="power of two"):
            CacheGeometry(4096, 4, block_size=48)

    def test_rejects_indivisible_size(self):
        with pytest.raises(ValueError, match="not divisible"):
            CacheGeometry(4096 + 64, 4)

    def test_rejects_non_power_of_two_sets(self):
        # 12 sets of 4 ways x 64 B
        with pytest.raises(ValueError, match="power of two"):
            CacheGeometry(12 * 4 * 64, 4)

    def test_with_ways_keeps_sets(self):
        g = CacheGeometry(1024 * 1024, 16)
        h = g.with_ways(4)
        assert h.num_sets == g.num_sets
        assert h.associativity == 4
        assert h.size_bytes == g.size_bytes // 4

    def test_with_ways_can_grow(self):
        g = CacheGeometry(4096, 4)
        assert g.with_ways(8).size_bytes == 8192

    def test_with_ways_rejects_non_positive(self):
        with pytest.raises(ValueError):
            CacheGeometry(4096, 4).with_ways(0)

    def test_frozen(self):
        g = CacheGeometry(4096, 4)
        with pytest.raises(AttributeError):
            g.size_bytes = 1


class TestLatencyConfig:
    def test_defaults_positive(self):
        lat = LatencyConfig()
        assert lat.l1_hit > 0 and lat.l2_hit > 0 and lat.dram > 0

    def test_rejects_zero_latency(self):
        with pytest.raises(ValueError):
            LatencyConfig(l1_hit=0)

    def test_rejects_negative_extra_write(self):
        with pytest.raises(ValueError):
            LatencyConfig(l2_extra_write=-1)

    def test_extra_write_zero_allowed(self):
        assert LatencyConfig(l2_extra_write=0).l2_extra_write == 0


class TestPlatformConfig:
    def test_default_platform_is_mobile_scale(self):
        p = DEFAULT_PLATFORM
        assert p.l1i.size_bytes == 32 * 1024
        assert p.l2.size_bytes == 1024 * 1024
        assert p.l2.associativity == 16

    def test_seconds(self):
        p = PlatformConfig(clock_hz=1e9)
        assert p.seconds(1e9) == pytest.approx(1.0)

    def test_with_l2(self):
        p = DEFAULT_PLATFORM.with_l2(CacheGeometry(512 * 1024, 8))
        assert p.l2.size_bytes == 512 * 1024
        assert p.l1i == DEFAULT_PLATFORM.l1i

    def test_rejects_bad_clock(self):
        with pytest.raises(ValueError):
            PlatformConfig(clock_hz=0)

    def test_rejects_bad_cpi(self):
        with pytest.raises(ValueError):
            PlatformConfig(base_cpi=-1.0)

    def test_rejects_mismatched_block_sizes(self):
        with pytest.raises(ValueError, match="block size"):
            PlatformConfig(l1i=CacheGeometry(32 * 1024, 4, block_size=32))

"""Shared fixtures: small platforms, tiny traces, cached streams.

Unit tests run on deliberately small geometries and short traces so the
whole suite stays fast; the calibration tests (tests/test_calibration.py)
are the only ones that touch experiment-scale traces.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.cache.hierarchy import l1_filter
from repro.config import CacheGeometry, LatencyConfig, PlatformConfig
from repro.trace.access import Trace
from repro.trace.generator import generate_trace
from repro.trace.workloads import app_profile
from repro.types import TRACE_DTYPE, AccessKind, Privilege


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_store(tmp_path_factory):
    """Point the engine's persistent store at a session-private dir.

    Tests still exercise the real store code path, but never read stale
    entries from (or leak entries into) the developer's ``~/.cache``.
    """
    saved = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-store"))
    yield
    if saved is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = saved


def make_trace(entries, name="t", instructions=None) -> Trace:
    """Build a Trace from (tick, addr, kind, priv) tuples."""
    records = np.zeros(len(entries), dtype=TRACE_DTYPE)
    for i, (tick, addr, kind, priv) in enumerate(entries):
        records[i] = (tick, addr, int(kind), int(priv))
    if instructions is None:
        instructions = max(len(entries), int(records["tick"][-1]) + 1 if len(entries) else 0)
    return Trace(name, records, instructions)


@pytest.fixture
def tiny_platform() -> PlatformConfig:
    """A platform small enough that caches fill within a few accesses."""
    return PlatformConfig(
        l1i=CacheGeometry(1024, 2),
        l1d=CacheGeometry(1024, 2),
        l2=CacheGeometry(8192, 4),
        latency=LatencyConfig(l1_hit=1, l2_hit=10, dram=100),
    )


@pytest.fixture
def small_geometry() -> CacheGeometry:
    """4 KB, 4-way, 16 sets — hand-traceable."""
    return CacheGeometry(4096, 4)


@pytest.fixture(scope="session")
def browser_trace_small() -> Trace:
    """A short browser trace shared across tests (session-cached)."""
    return generate_trace(app_profile("browser"), 30_000, seed=7)


@pytest.fixture(scope="session")
def browser_stream_small(browser_trace_small):
    """The small browser trace filtered through default L1s."""
    from repro.config import DEFAULT_PLATFORM

    return l1_filter(browser_trace_small, DEFAULT_PLATFORM)


def sequential_accesses(n, base=0, stride=64, kind=AccessKind.LOAD, priv=Privilege.USER):
    """n accesses at consecutive block addresses, one tick apart."""
    return [(i, base + i * stride, kind, priv) for i in range(n)]

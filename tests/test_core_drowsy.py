"""Unit tests for the drowsy-SRAM comparison design."""

import pytest

from repro.cache.set_assoc import SetAssociativeCache
from repro.config import DEFAULT_PLATFORM, CacheGeometry
from repro.core.baseline import BaselineDesign
from repro.core.drowsy import DROWSY_LEAKAGE_SCALE, DrowsySRAMDesign
from repro.energy.technology import stt_ram


class TestEngineAwakeAccounting:
    def one_set(self, window=100):
        return SetAssociativeCache(CacheGeometry(4 * 64, 4), "lru", drowsy_window=window)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError, match="drowsy_window"):
            self.one_set(window=0)

    def test_awake_time_capped_by_window(self):
        c = self.one_set(window=100)
        c.access(0x0, False, 0, 0)
        c.access(0x0, False, 0, 1000)  # 1000 elapsed, only 100 awake
        assert c.awake_block_ticks == 100
        assert c.drowsy_wakeups == 1

    def test_frequent_touches_stay_awake(self):
        c = self.one_set(window=100)
        c.access(0x0, False, 0, 0)
        c.access(0x0, False, 0, 50)
        c.access(0x0, False, 0, 90)
        assert c.awake_block_ticks == 90  # fully awake span
        assert c.drowsy_wakeups == 0

    def test_finalize_accounts_tail(self):
        c = self.one_set(window=100)
        c.access(0x0, False, 0, 0)
        c.finalize(1_000)
        assert c.awake_block_ticks == 100

    def test_eviction_accounts_victim(self):
        c = SetAssociativeCache(CacheGeometry(1 * 64, 1), "lru", drowsy_window=100)
        c.access(0x0, False, 0, 0)
        c.access(0x40 * 16, False, 0, 500)  # evicts 0x0 after 500 ticks
        assert c.awake_block_ticks == 100

    def test_no_accounting_without_window(self):
        c = SetAssociativeCache(CacheGeometry(4 * 64, 4), "lru")
        c.access(0x0, False, 0, 0)
        c.access(0x0, False, 0, 1000)
        assert c.awake_block_ticks == 0


class TestDrowsyDesign:
    def test_rejects_finite_retention_tech(self):
        with pytest.raises(ValueError, match="SRAM technique"):
            DrowsySRAMDesign(tech=stt_ram("short"))

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            DrowsySRAMDesign(drowsy_window=-5)

    def test_saves_energy_vs_baseline(self, browser_stream_small):
        base = BaselineDesign().run(browser_stream_small, DEFAULT_PLATFORM)
        drowsy = DrowsySRAMDesign().run(browser_stream_small, DEFAULT_PLATFORM)
        assert drowsy.l2_energy.total_j < base.l2_energy.total_j

    def test_leakage_floor_is_drowsy_scale(self, browser_stream_small):
        base = BaselineDesign().run(browser_stream_small, DEFAULT_PLATFORM)
        drowsy = DrowsySRAMDesign().run(browser_stream_small, DEFAULT_PLATFORM)
        # leakage can never drop below the drowsy-voltage floor
        assert drowsy.l2_energy.leakage_j >= base.l2_energy.leakage_j * DROWSY_LEAKAGE_SCALE * 0.9

    def test_same_miss_rate_as_baseline(self, browser_stream_small):
        base = BaselineDesign().run(browser_stream_small, DEFAULT_PLATFORM)
        drowsy = DrowsySRAMDesign().run(browser_stream_small, DEFAULT_PLATFORM)
        # drowsy mode is state-preserving: hit/miss behaviour identical
        assert drowsy.l2_stats.demand_misses == base.l2_stats.demand_misses

    def test_wakeups_cost_performance(self, browser_stream_small):
        base = BaselineDesign().run(browser_stream_small, DEFAULT_PLATFORM)
        drowsy = DrowsySRAMDesign().run(browser_stream_small, DEFAULT_PLATFORM)
        assert drowsy.timing.busy_cycles >= base.timing.busy_cycles
        assert drowsy.extras["drowsy_wakeups"] > 0

    def test_awake_fraction_in_unit_range(self, browser_stream_small):
        drowsy = DrowsySRAMDesign().run(browser_stream_small, DEFAULT_PLATFORM)
        assert 0.0 <= drowsy.extras["awake_fraction"] <= 1.0

    def test_longer_window_more_awake_energy(self, browser_stream_small):
        short = DrowsySRAMDesign(drowsy_window=500).run(browser_stream_small, DEFAULT_PLATFORM)
        long = DrowsySRAMDesign(drowsy_window=200_000).run(browser_stream_small, DEFAULT_PLATFORM)
        assert long.l2_energy.leakage_j > short.l2_energy.leakage_j

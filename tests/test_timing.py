"""Unit tests for the timing model."""

import pytest

from repro.config import DEFAULT_PLATFORM, LatencyConfig, PlatformConfig
from repro.timing.cpu import WRITE_CONTENTION_FACTOR, compute_timing


def timing(**kw):
    defaults = dict(
        platform=DEFAULT_PLATFORM,
        instructions=1_000_000,
        duration_ticks=1_200_000,
        l1_demand_misses=10_000,
        l2_demand_misses=2_000,
        l2_extra_read_cycles=0.0,
        l2_extra_write_cycles=0.0,
        l2_writes=5_000,
    )
    defaults.update(kw)
    return compute_timing(**defaults)


class TestComputeTiming:
    def test_base_cycles(self):
        t = timing()
        assert t.base_cycles == pytest.approx(1_000_000 * DEFAULT_PLATFORM.base_cpi)

    def test_l2_stall_term(self):
        t = timing()
        assert t.l2_access_stall_cycles == pytest.approx(10_000 * DEFAULT_PLATFORM.latency.l2_hit)

    def test_extra_read_latency_adds_stall(self):
        base = timing()
        slow = timing(l2_extra_read_cycles=2.0)
        assert slow.l2_access_stall_cycles - base.l2_access_stall_cycles == pytest.approx(20_000)

    def test_dram_stall_term(self):
        t = timing()
        assert t.dram_stall_cycles == pytest.approx(2_000 * DEFAULT_PLATFORM.latency.dram)

    def test_write_contention(self):
        t = timing(l2_extra_write_cycles=4.0)
        assert t.write_contention_cycles == pytest.approx(5_000 * 4.0 * WRITE_CONTENTION_FACTOR)

    def test_no_contention_for_sram(self):
        assert timing().write_contention_cycles == 0.0

    def test_rejects_zero_instructions(self):
        with pytest.raises(ValueError):
            timing(instructions=0)

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            timing(l2_demand_misses=-1)


class TestTimingResult:
    def test_busy_excludes_idle(self):
        t = timing(duration_ticks=50_000_000)  # mostly idle
        assert t.busy_cycles < t.total_cycles

    def test_total_includes_stalls(self):
        t = timing()
        assert t.total_cycles == pytest.approx(
            t.duration_ticks + (t.base_cycles - t.instructions) + t.stall_cycles
        )

    def test_ipc(self):
        t = timing()
        assert t.ipc == pytest.approx(t.instructions / t.busy_cycles)

    def test_perf_loss_positive_for_more_misses(self):
        fast = timing()
        slow = timing(l2_demand_misses=4_000)
        assert slow.perf_loss_vs(fast) > 0

    def test_perf_loss_zero_vs_self(self):
        t = timing()
        assert t.perf_loss_vs(t) == pytest.approx(0.0)

    def test_seconds(self):
        t = timing()
        p = PlatformConfig(clock_hz=2e9, latency=LatencyConfig())
        assert t.seconds(p) == pytest.approx(t.total_cycles / 2e9)

    def test_stall_cycles_sum(self):
        t = timing(l2_extra_write_cycles=1.0)
        assert t.stall_cycles == pytest.approx(
            t.l2_access_stall_cycles + t.dram_stall_cycles + t.write_contention_cycles
        )

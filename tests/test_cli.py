"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.app == "browser"
        assert args.design == "static-stt"

    def test_figure_range_checked(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "9"])


class TestList:
    def test_lists_everything(self):
        code, out = run_cli("list")
        assert code == 0
        for token in ("browser", "dynamic-stt", "lru", "medium"):
            assert token in out


class TestRun:
    def test_run_baseline(self):
        code, out = run_cli("run", "--app", "game", "--design", "baseline",
                            "--length", "30000")
        assert code == 0
        assert "demand miss rate" in out
        assert "L2 energy" in out

    def test_run_with_prefetcher(self):
        code, out = run_cli("run", "--app", "game", "--design", "baseline",
                            "--length", "30000", "--prefetcher", "nextline")
        assert code == 0

    def test_run_with_banked_dram(self):
        code, out = run_cli("run", "--app", "game", "--design", "static-sram",
                            "--length", "30000", "--banked-dram")
        assert code == 0

    def test_prefetcher_rejected_for_dynamic(self):
        code, _ = run_cli("run", "--app", "game", "--design", "dynamic-stt",
                          "--length", "30000", "--prefetcher", "stride")
        assert code == 2


class TestArtifacts:
    def test_table_1(self):
        code, out = run_cli("table", "1")
        assert code == 0
        assert "Table 1" in out

    def test_table_4_short(self):
        code, out = run_cli("table", "4", "--length", "30000")
        assert code == 0
        assert "Table 4" in out

    def test_figure_1_short(self):
        code, out = run_cli("figure", "1", "--length", "30000")
        assert code == 0
        assert "Figure 1" in out

    def test_figure_7_short(self):
        code, out = run_cli("figure", "7", "--length", "30000")
        assert code == 0
        assert "Figure 7" in out


class TestTraceCommand:
    def test_trace_roundtrip(self, tmp_path):
        out_file = tmp_path / "t.npz"
        code, out = run_cli("trace", "--app", "music", "--length", "5000",
                            "--out", str(out_file))
        assert code == 0
        assert out_file.exists()
        from repro.trace.io import load_trace

        trace = load_trace(out_file)
        assert trace.name == "music"
        assert len(trace) == 5000


class TestSearch:
    def test_search_prints_choice(self):
        code, out = run_cli("search", "--length", "25000", "--apps", "game")
        assert code == 0
        assert "chosen partition" in out


class TestExport:
    def test_export_csv(self, tmp_path):
        out_file = tmp_path / "grid.csv"
        code, out = run_cli("export", "--out", str(out_file), "--length", "30000")
        assert code == 0
        assert "32 rows" in out
        assert out_file.exists()


class TestSweep:
    def test_cold_then_warm(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        argv = ("sweep", "--designs", "baseline", "--apps", "browser", "game",
                "--length", "8000", "--no-progress")
        code, cold = run_cli(*argv)
        assert code == 0
        assert "0/2 jobs served from cache" in cold
        code, warm = run_cli(*argv)
        assert code == 0
        assert "2/2 jobs served from cache (100.0%)" in warm

    def test_parallel_matches_serial_output(self, tmp_path, monkeypatch):
        import re

        monkeypatch.setenv("REPRO_CACHE_DISABLE", "1")
        argv = ("sweep", "--designs", "static-sram", "--apps", "music",
                "--length", "8000", "--no-progress")
        _, serial = run_cli(*argv)
        _, parallel = run_cli(*argv, "--jobs", "2")

        def strip_walltimes(text):
            return re.sub(r"\d+\.\d+s", "Xs", text)

        assert strip_walltimes(serial) == strip_walltimes(parallel)

    def test_progress_lines_go_to_stderr(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code, out = run_cli("sweep", "--designs", "baseline", "--apps", "reader",
                            "--length", "8000")
        assert code == 0
        err = capsys.readouterr().err
        assert "[1/1] baseline:reader" in err
        # stdout (the table) must stay free of progress lines so piped
        # output is machine-readable
        assert "[1/1]" not in out


class TestCache:
    def test_stats_and_clear(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        run_cli("sweep", "--designs", "baseline", "--apps", "video",
                "--length", "8000", "--no-progress")
        code, out = run_cli("cache", "stats")
        assert code == 0
        assert str(tmp_path) in out
        assert "entries" in out
        code, out = run_cli("cache", "clear")
        assert code == 0
        assert "removed 1 cached result(s)" in out
        _, out = run_cli("cache", "stats")
        assert "0" in out

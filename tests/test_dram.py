"""Unit tests for the DRAM bank/row-buffer model."""

import pytest

from repro.dram import DRAMConfig, DRAMModel


class TestConfig:
    def test_defaults_valid(self):
        DRAMConfig()

    def test_rejects_non_pow2_banks(self):
        with pytest.raises(ValueError, match="banks"):
            DRAMConfig(banks=6)

    def test_rejects_non_pow2_row(self):
        with pytest.raises(ValueError, match="row_bytes"):
            DRAMConfig(row_bytes=3000)

    def test_rejects_inverted_latencies(self):
        with pytest.raises(ValueError, match="t_row_hit"):
            DRAMConfig(t_row_hit=200, t_row_miss=100)


class TestAccess:
    def test_first_access_is_row_miss(self):
        d = DRAMModel()
        lat = d.access(0x0, 0)
        assert lat == d.config.t_row_miss
        assert d.stats.row_misses == 1

    def test_same_row_hits(self):
        d = DRAMModel()
        d.access(0x0, 0)
        lat = d.access(0x40, 1_000)
        assert lat == d.config.t_row_hit
        assert d.stats.row_hits == 1

    def test_different_row_same_bank_misses(self):
        d = DRAMModel()
        cfg = d.config
        d.access(0x0, 0)
        # same bank: row index differs by banks
        other = cfg.row_bytes * cfg.banks
        lat = d.access(other, 10_000)
        assert lat == cfg.t_row_miss
        assert d.stats.row_misses == 2

    def test_bank_conflict_adds_wait(self):
        d = DRAMModel()
        cfg = d.config
        d.access(0x0, 0)
        # immediately hit the same bank while busy
        lat = d.access(0x40, 1)
        assert lat > cfg.t_row_hit
        assert d.stats.busy_stalls == 1

    def test_banks_are_independent(self):
        d = DRAMModel()
        cfg = d.config
        d.access(0, 0)
        lat = d.access(cfg.row_bytes, 1)  # next row -> next bank
        assert lat == cfg.t_row_miss  # no busy wait

    def test_read_write_counted(self):
        d = DRAMModel()
        d.access(0x0, 0, is_write=False)
        d.access(0x40, 500, is_write=True)
        assert d.stats.reads == 1
        assert d.stats.writes == 1

    def test_mean_latency(self):
        d = DRAMModel()
        d.access(0x0, 0)
        d.access(0x40, 10_000)
        expected = (d.config.t_row_miss + d.config.t_row_hit) / 2
        assert d.stats.mean_latency == pytest.approx(expected)


class TestEnergy:
    def test_dynamic_components(self):
        d = DRAMModel()
        d.access(0x0, 0)          # miss: activate + column
        d.access(0x40, 10_000)    # hit: column only
        cfg = d.config
        expected = (cfg.e_activate_nj + 2 * cfg.e_column_nj) * 1e-9
        assert d.energy_j() == pytest.approx(expected)

    def test_background_energy(self):
        d = DRAMModel()
        assert d.energy_j(busy_seconds=1.0) == pytest.approx(d.config.e_background_mw * 1e-3)

    def test_rejects_negative_seconds(self):
        with pytest.raises(ValueError):
            DRAMModel().energy_j(-1.0)


class TestReset:
    def test_reset_clears_everything(self):
        d = DRAMModel()
        d.access(0x0, 0)
        d.reset()
        assert d.stats.accesses == 0
        assert d.access(0x0, 0) == d.config.t_row_miss  # row closed again


class TestDesignIntegration:
    def test_streaming_misses_earn_row_hits(self, browser_stream_small):
        from repro.config import DEFAULT_PLATFORM
        from repro.core import BaselineDesign

        dram = DRAMModel()
        r = BaselineDesign().run(browser_stream_small, DEFAULT_PLATFORM, dram_model=dram)
        assert dram.stats.accesses > 0
        assert 0.0 < dram.stats.row_hit_rate < 1.0
        assert r.extras["dram_stats"] is dram.stats

    def test_banked_timing_differs_from_flat(self, browser_stream_small):
        from repro.config import DEFAULT_PLATFORM
        from repro.core import BaselineDesign

        flat = BaselineDesign().run(browser_stream_small, DEFAULT_PLATFORM)
        banked = BaselineDesign().run(
            browser_stream_small, DEFAULT_PLATFORM, dram_model=DRAMModel())
        assert banked.timing.dram_stall_cycles != flat.timing.dram_stall_cycles
        # miss counts are identical — DRAM only changes latency/energy
        assert banked.l2_stats.demand_misses == flat.l2_stats.demand_misses

"""Unit tests for repro.trace.phases (Region / PhaseSpec / AppProfile)."""

import pytest

from repro.trace.phases import AppProfile, PhaseSpec, Region
from repro.types import KERNEL_SPACE_START, Privilege

_KINDS = (0.0, 0.7, 0.3)


def user_region(**kw):
    defaults = dict(name="r", base=0x1000_0000, size=64 * 1024, pattern="uniform",
                    kind_weights=_KINDS)
    defaults.update(kw)
    return Region(**defaults)


def simple_phase(region=None, privilege=Privilege.USER, **kw):
    region = region if region is not None else user_region()
    defaults = dict(name="p", privilege=privilege, regions=(region,), weights=(1.0,))
    defaults.update(kw)
    return PhaseSpec(**defaults)


class TestRegion:
    def test_valid_patterns(self):
        for pattern in ("hot", "stream", "uniform"):
            assert user_region(pattern=pattern).pattern == pattern

    def test_rotating_pattern(self):
        r = user_region(pattern="rotating", subsets=4, rotate_dwells=2)
        assert r.subsets == 4

    def test_rejects_unknown_pattern(self):
        with pytest.raises(ValueError, match="unknown pattern"):
            user_region(pattern="zigzag")

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError, match="size"):
            user_region(size=0)

    def test_rejects_low_hotness(self):
        with pytest.raises(ValueError, match="hotness"):
            user_region(pattern="hot", hotness=0.5)

    def test_rejects_bad_kind_weights(self):
        with pytest.raises(ValueError, match="kind_weights"):
            user_region(kind_weights=(0.5, 0.5, 0.5))

    def test_rejects_low_run_mean(self):
        with pytest.raises(ValueError, match="run_mean"):
            user_region(run_mean=0.5)

    def test_rejects_rotating_with_one_subset(self):
        with pytest.raises(ValueError, match="rotating"):
            user_region(pattern="rotating", subsets=1)


class TestPhaseSpec:
    def test_valid(self):
        p = simple_phase()
        assert p.mean_accesses >= 1

    def test_rejects_empty_regions(self):
        with pytest.raises(ValueError, match="at least one region"):
            PhaseSpec("p", Privilege.USER, (), ())

    def test_rejects_weight_count_mismatch(self):
        with pytest.raises(ValueError, match="weights"):
            PhaseSpec("p", Privilege.USER, (user_region(),), (0.5, 0.5))

    def test_rejects_weights_not_summing_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            PhaseSpec("p", Privilege.USER, (user_region(),), (0.8,))

    def test_rejects_zero_mean_accesses(self):
        with pytest.raises(ValueError, match="mean_accesses"):
            simple_phase(mean_accesses=0)

    def test_rejects_sub_one_gap(self):
        with pytest.raises(ValueError, match="mean_gap"):
            simple_phase(mean_gap=0.5)


class TestAppProfile:
    def make_profile(self, **kw):
        kernel_region = Region("k", KERNEL_SPACE_START + 0x10000, 64 * 1024,
                               "uniform", kind_weights=_KINDS)
        phases = (simple_phase(), simple_phase(kernel_region, Privilege.KERNEL))
        defaults = dict(name="app", description="d", phases=phases,
                        transitions=((0.0, 1.0), (1.0, 0.0)))
        defaults.update(kw)
        return AppProfile(**defaults)

    def test_valid(self):
        p = self.make_profile()
        assert p.kernel_phase_indices == (1,)

    def test_rejects_empty_phases(self):
        with pytest.raises(ValueError, match="at least one phase"):
            AppProfile("a", "d", (), ())

    def test_rejects_wrong_matrix_shape(self):
        with pytest.raises(ValueError, match="transition matrix"):
            self.make_profile(transitions=((1.0,),))

    def test_rejects_non_stochastic_row(self):
        with pytest.raises(ValueError, match="sums to"):
            self.make_profile(transitions=((0.5, 0.4), (1.0, 0.0)))

    def test_rejects_negative_probability(self):
        with pytest.raises(ValueError, match="negative"):
            self.make_profile(transitions=((1.5, -0.5), (1.0, 0.0)))

    def test_rejects_bad_start_phase(self):
        with pytest.raises(ValueError, match="start_phase"):
            self.make_profile(start_phase=5)

    def test_rejects_bad_wake_phase(self):
        with pytest.raises(ValueError, match="wake_phase"):
            self.make_profile(wake_phase=9)

    def test_rejects_bad_idle_prob(self):
        with pytest.raises(ValueError, match="idle_prob"):
            self.make_profile(idle_prob=1.5)

    def test_rejects_negative_idle_mean(self):
        with pytest.raises(ValueError, match="idle_mean_ticks"):
            self.make_profile(idle_mean_ticks=-1)

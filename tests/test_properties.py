"""Property-based tests (hypothesis) on core invariants.

These pin down the behaviours everything else is built on:

* the LRU cache engine matches a brute-force reference model,
* statistics conservation laws hold under arbitrary traffic,
* a privilege-partitioned cache is exactly two independent caches,
* retention can only remove hits, never add them,
* energy accounting is monotone in its inputs.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.partitioned import PartitionedCache
from repro.cache.set_assoc import SetAssociativeCache
from repro.cache.stats import CacheStats
from repro.config import CacheGeometry
from repro.energy.model import segment_energy
from repro.energy.technology import sram
from repro.trace.generator import generate_trace
from repro.trace.workloads import app_profile
from repro.types import Privilege

# An access: (block index, is_write, privilege)
access_strategy = st.tuples(
    st.integers(min_value=0, max_value=63),
    st.booleans(),
    st.integers(min_value=0, max_value=1),
)
traffic = st.lists(access_strategy, min_size=1, max_size=300)

GEOMETRY = CacheGeometry(8 * 4 * 64, 4)  # 8 sets, 4 ways


class ReferenceLRU:
    """Brute-force fully-explicit LRU model for differential testing."""

    def __init__(self, sets: int, ways: int) -> None:
        self.sets = sets
        self.ways = ways
        self.stacks: list[list[int]] = [[] for _ in range(sets)]

    def access(self, block: int) -> bool:
        set_i = block % self.sets
        tag = block // self.sets
        stack = self.stacks[set_i]
        hit = tag in stack
        if hit:
            stack.remove(tag)
        elif len(stack) == self.ways:
            stack.pop(0)
        stack.append(tag)
        return hit


@given(traffic)
@settings(max_examples=120, deadline=None)
def test_lru_cache_matches_reference_model(accs):
    cache = SetAssociativeCache(GEOMETRY, "lru")
    ref = ReferenceLRU(GEOMETRY.num_sets, GEOMETRY.associativity)
    for i, (block, is_write, priv) in enumerate(accs):
        got = cache.access(block * 64, is_write, priv, i).hit
        expected = ref.access(block)
        assert got == expected


@given(traffic)
@settings(max_examples=100, deadline=None)
def test_stats_conservation(accs):
    cache = SetAssociativeCache(GEOMETRY, "lru")
    for i, (block, is_write, priv) in enumerate(accs):
        cache.access(block * 64, is_write, priv, i)
    st_ = cache.stats
    st_.check_invariants()
    assert st_.accesses == len(accs)
    assert st_.fills == st_.misses  # no retention: every miss fills
    live = sum(len(t) for t in cache._tagmaps)
    assert st_.fills - st_.evictions == live  # block conservation


@given(traffic)
@settings(max_examples=80, deadline=None)
def test_partitioned_equals_independent_caches(accs):
    """Routing through PartitionedCache == two standalone simulations."""
    seg_geom = CacheGeometry(8 * 2 * 64, 2)
    pc = PartitionedCache({
        Privilege.USER: SetAssociativeCache(seg_geom, "lru"),
        Privilege.KERNEL: SetAssociativeCache(seg_geom, "lru"),
    })
    solo = {p: SetAssociativeCache(seg_geom, "lru") for p in (0, 1)}
    for i, (block, is_write, priv) in enumerate(accs):
        a = pc.access(block * 64, is_write, priv, i)
        b = solo[priv].access(block * 64, is_write, priv, i)
        assert a.hit == b.hit


@given(traffic)
@settings(max_examples=80, deadline=None)
def test_retention_never_adds_hits(accs):
    """A finite-retention cache hits at most as often as an infinite one."""
    inf = SetAssociativeCache(GEOMETRY, "lru")
    fin = SetAssociativeCache(GEOMETRY, "lru", retention_ticks=20, refresh_mode="invalidate")
    inf_hits = fin_hits = 0
    for i, (block, is_write, priv) in enumerate(accs):
        tick = i * 7
        inf_hits += inf.access(block * 64, is_write, priv, tick).hit
        fin_hits += fin.access(block * 64, is_write, priv, tick).hit
    assert fin_hits <= inf_hits


@given(traffic)
@settings(max_examples=60, deadline=None)
def test_gating_and_ungating_never_corrupts(accs):
    """Alternating power gating keeps every invariant intact."""
    cache = SetAssociativeCache(GEOMETRY, "lru")
    for i, (block, is_write, priv) in enumerate(accs):
        if i % 17 == 5:
            cache.set_powered_ways(1 + (i % GEOMETRY.associativity), i)
        cache.access(block * 64, is_write, priv, i)
    cache.stats.check_invariants()
    # tagmap must agree with frames
    for set_i in range(GEOMETRY.num_sets):
        frames = cache._frames[set_i]
        tagmap = cache._tagmaps[set_i]
        assert len(tagmap) == sum(e is not None for e in frames)
        for tag, way in tagmap.items():
            assert frames[way] is not None and frames[way].tag == tag


@given(
    st.integers(min_value=1, max_value=64),
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
)
@settings(max_examples=60, deadline=None)
def test_leakage_monotone_in_size_and_time(size_mb_times_16, seconds):
    tech = sram()
    size = size_mb_times_16 * 64 * 1024
    stats = CacheStats()
    small = segment_energy(stats, tech, size, size * seconds)
    big = segment_energy(stats, tech, size * 2, size * 2 * seconds)
    assert big.leakage_j >= small.leakage_j


@given(st.integers(min_value=100, max_value=3000), st.integers(min_value=0, max_value=2**31))
@settings(max_examples=20, deadline=None)
def test_generator_invariants(length, seed):
    trace = generate_trace(app_profile("game"), length, seed=seed)
    assert len(trace) == length
    assert trace.instructions >= length
    import numpy as np

    assert np.all(np.diff(trace.ticks.astype(np.int64)) >= 0)
    kernel = trace.privilege_mask(Privilege.KERNEL)
    assert np.all(trace.addrs[kernel] >= 0xC000_0000)
    assert np.all(trace.addrs[~kernel] < 0xC000_0000)

#!/usr/bin/env python3
"""Scenario: choosing STT-RAM retention classes from measured intervals.

This walks the paper's Figure 5 reasoning explicitly: measure the block
inter-access interval distributions of the separated user and kernel L2
streams, compare them with the available retention windows, and then
verify the chosen assignment empirically against the alternatives.

Run:  python examples/retention_tuning.py [trace_length]
"""

import sys

import numpy as np

from repro.cache import l1_filter
from repro.config import DEFAULT_PLATFORM
from repro.core import BaselineDesign, multi_retention_design
from repro.energy import RETENTION_CLASSES
from repro.experiments import format_percent, format_table
from repro.trace import suite_trace
from repro.types import Privilege


def interval_percentiles_ms(stream, privilege):
    mask = stream.privs == np.uint8(privilege)
    blocks = (stream.addrs[mask] // np.uint64(64)).astype(np.int64)
    ticks = stream.ticks[mask].astype(np.int64)
    order = np.argsort(blocks, kind="stable")
    sb, st = blocks[order], ticks[order]
    gaps = (st[1:] - st[:-1])[sb[1:] == sb[:-1]] / DEFAULT_PLATFORM.clock_hz * 1e3
    return np.percentile(gaps, [50, 90, 99])


def main() -> None:
    length = int(sys.argv[1]) if len(sys.argv) > 1 else 360_000
    apps = ("browser", "email")

    print("Step 1: measure interval distributions of the separated segments\n")
    rows = []
    for app in apps:
        stream = l1_filter(suite_trace(app, length), DEFAULT_PLATFORM)
        for priv in (Privilege.USER, Privilege.KERNEL):
            p50, p90, p99 = interval_percentiles_ms(stream, priv)
            rows.append([app, priv.label, f"{p50:.2f}", f"{p90:.2f}", f"{p99:.2f}"])
    print(format_table(
        "Inter-access intervals (ms)",
        ["app", "segment", "p50", "p90", "p99"],
        rows, align_left_cols=2,
    ))

    print("\nAvailable retention windows:")
    for name, cls in RETENTION_CLASSES.items():
        window = "infinite" if cls.retention_s is None else f"{cls.retention_s * 1e3:.0f} ms"
        print(f"  {name:7s} {window:>9s}  (write pulse x{cls.write_energy_scale:.2f})")

    print(
        "\nReading the table: kernel intervals sit well inside the short\n"
        "window; user p90 intervals do not.  Hence: user=medium, kernel=short.\n"
    )

    print("Step 2: verify the assignment empirically\n")
    assignments = [
        ("user=medium, kernel=short (chosen)", "medium", "short"),
        ("user=short,  kernel=short", "short", "short"),
        ("user=long,   kernel=long", "long", "long"),
    ]
    rows = []
    for label, user_ret, kernel_ret in assignments:
        energy, loss = [], []
        for app in apps:
            stream = l1_filter(suite_trace(app, length), DEFAULT_PLATFORM)
            base = BaselineDesign().run(stream, DEFAULT_PLATFORM)
            design = multi_retention_design(
                user_retention=user_ret, kernel_retention=kernel_ret, name=label)
            r = design.run(stream, DEFAULT_PLATFORM)
            energy.append(r.l2_energy.total_j / base.l2_energy.total_j)
            loss.append(r.timing.perf_loss_vs(base.timing))
        rows.append([label, f"{np.mean(energy):.3f}", format_percent(np.mean(loss), 2)])
    print(format_table(
        "Retention assignments compared",
        ["assignment", "norm. energy", "perf loss"],
        rows,
    ))


if __name__ == "__main__":
    main()

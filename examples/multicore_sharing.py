#!/usr/bin/env python3
"""Scenario: does the partitioned design survive a multi-core SoC?

The paper evaluates one core, but phones share the L2 among cores.  Two
things change with core count, in opposite directions:

* user working sets are per-process (disjoint ASIDs) — they *contend*;
* the kernel is one address space — every core's syscalls *share* its
  blocks, so kernel content becomes more valuable per byte.

This script quantifies both and re-runs the designs on 1/2/4-core mixes.

Run:  python examples/multicore_sharing.py [per_core_length]
"""

import sys

from repro.config import DEFAULT_PLATFORM
from repro.core import paper_designs
from repro.experiments import format_percent, format_table
from repro.multicore import kernel_block_sharing, multicore_stream
from repro.types import Privilege


def main() -> None:
    length = int(sys.argv[1]) if len(sys.argv) > 1 else 120_000
    mixes = {
        "1 core": ("browser",),
        "2 cores": ("browser", "game"),
        "4 cores": ("browser", "game", "social", "music"),
    }

    rows = []
    for label, apps in mixes.items():
        stream = multicore_stream(apps, length)
        base = None
        norm = {}
        for name, design in paper_designs().items():
            result = design.run(stream, DEFAULT_PLATFORM)
            if base is None:
                base = result
            norm[name] = result.l2_energy.total_j / base.l2_energy.total_j
        stats = base.l2_stats
        rows.append([
            label,
            format_percent(stats.miss_rate_of(Privilege.USER), 1),
            format_percent(stats.miss_rate_of(Privilege.KERNEL), 1),
            format_percent(kernel_block_sharing(stream), 1),
            f"{norm['static-stt']:.3f}",
            f"{norm['dynamic-stt']:.3f}",
        ])

    print(format_table(
        f"Multi-core shared L2 ({length:,} accesses per core)",
        ["mix", "user mr", "kernel mr", "kernel sharing", "static-stt", "dynamic-stt"],
        rows,
    ))
    print(
        "\nReading the table: kernel miss rate falls as cores are added\n"
        "(cross-core reuse of the single kernel address space) while user\n"
        "miss rate holds or rises (disjoint per-process working sets).\n"
        "A protected kernel segment becomes *more* valuable with core count\n"
        "— the paper's single-core motivation strengthens on real SoCs."
    )


if __name__ == "__main__":
    main()

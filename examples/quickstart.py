#!/usr/bin/env python3
"""Quickstart: evaluate the paper's cache designs on one mobile app.

Generates a browser workload trace, filters it through the L1s once, and
runs all four canonical L2 designs, printing miss rate, energy and
performance relative to the shared SRAM baseline.

Run:  python examples/quickstart.py [trace_length]
"""

import sys

from repro.cache import l1_filter
from repro.config import DEFAULT_PLATFORM
from repro.core import paper_designs
from repro.experiments import format_percent, format_table
from repro.trace import suite_trace


def main() -> None:
    length = int(sys.argv[1]) if len(sys.argv) > 1 else 240_000

    print(f"Generating a {length:,}-access 'browser' trace ...")
    trace = suite_trace("browser", length)
    print(f"  {trace.describe()}")

    print("Filtering through the split 32 KB L1 caches ...")
    stream = l1_filter(trace, DEFAULT_PLATFORM)
    print(
        f"  {len(stream):,} accesses reach the L2 "
        f"({stream.kernel_share():.1%} of them from the OS kernel)"
    )

    print("Running the four canonical L2 designs ...\n")
    baseline = None
    rows = []
    for name, design in paper_designs().items():
        result = design.run(stream, DEFAULT_PLATFORM)
        if baseline is None:
            baseline = result
        energy = result.l2_energy
        rows.append([
            name,
            f"{result.active_bytes // 1024} KB",
            format_percent(result.l2_stats.demand_miss_rate, 2),
            f"{energy.total_j * 1e6:.1f}",
            f"{energy.total_j / baseline.l2_energy.total_j:.3f}",
            format_percent(result.timing.perf_loss_vs(baseline.timing), 2),
        ])
    print(format_table(
        f"Cache designs on 'browser' ({length:,} accesses)",
        ["design", "L2 size", "miss rate", "energy (uJ)", "norm.", "perf loss"],
        rows,
    ))
    print(
        "\nThe static technique (static-stt) trades a small miss-rate/latency\n"
        "penalty for the removal of most SRAM leakage; the dynamic technique\n"
        "(dynamic-stt) additionally power-gates capacity the app is not using."
    )


if __name__ == "__main__":
    main()

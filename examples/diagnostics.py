#!/usr/bin/env python3
"""Scenario: diagnosing *why* a cache configuration misses.

Three tools answer three questions without re-running design sweeps:

1. The stack-distance profile — is the miss rate capacity-bound, and at
   what size would it bend? (analytic Figure 3)
2. Set-pressure statistics — are misses conflict-driven (a few hot sets)
   or spread evenly?
3. Per-privilege interval summaries — which retention class would each
   stream tolerate?

Run:  python examples/diagnostics.py [trace_length]
"""

import sys

import numpy as np

from repro.analytic import profile_blocks
from repro.cache import l1_filter
from repro.cache.analysis import set_pressure
from repro.config import DEFAULT_PLATFORM
from repro.experiments import format_series, format_table
from repro.trace import suite_trace
from repro.types import Privilege

BLOCK = 64


def main() -> None:
    length = int(sys.argv[1]) if len(sys.argv) > 1 else 240_000
    app = "social"
    stream = l1_filter(suite_trace(app, length), DEFAULT_PLATFORM)
    print(f"diagnosing '{app}': {len(stream):,} L2 accesses\n")

    # 1 — capacity: the analytic miss-rate curve
    profile = profile_blocks((stream.addrs // np.uint64(BLOCK)).astype(np.int64))
    points = [
        (f"{kb} KB", f"{profile.miss_rate(kb * 1024 // BLOCK):.1%}")
        for kb in (64, 128, 256, 512, 1024, 2048)
    ]
    print(format_series(
        "1. analytic miss rate vs capacity (fully associative LRU)",
        "capacity", "predicted mr", points))
    print(f"   cold (compulsory) floor: {profile.cold_share:.1%}\n")

    # 2 — conflict: set pressure under the baseline geometry
    pressure = set_pressure(stream.addrs, DEFAULT_PLATFORM.l2)
    print(format_table(
        "2. set pressure under the 1 MB / 16-way geometry",
        ["metric", "value"],
        [
            ["access CoV across sets", f"{pressure.access_cov:.2f}"],
            ["distinct-block CoV", f"{pressure.block_cov:.2f}"],
            ["worst set: distinct blocks", f"{pressure.max_blocks_in_a_set}"],
            ["sets over 16-way demand", f"{pressure.conflict_prone(16):.1%}"],
        ],
        align_left_cols=1,
    ))
    print()

    # 3 — retention: interval percentiles per privilege
    rows = []
    for priv in (Privilege.USER, Privilege.KERNEL):
        mask = stream.privs == np.uint8(priv)
        blocks = (stream.addrs[mask] // np.uint64(BLOCK)).astype(np.int64)
        ticks = stream.ticks[mask].astype(np.int64)
        order = np.argsort(blocks, kind="stable")
        sb, st = blocks[order], ticks[order]
        gaps = (st[1:] - st[:-1])[sb[1:] == sb[:-1]] / DEFAULT_PLATFORM.clock_hz * 1e3
        rows.append([priv.label, f"{np.percentile(gaps, 50):.2f}",
                     f"{np.percentile(gaps, 90):.2f}", f"{np.percentile(gaps, 99):.2f}"])
    print(format_table(
        "3. block inter-access intervals (ms) — pick retention to clear p99",
        ["segment", "p50", "p90", "p99"],
        rows, align_left_cols=1,
    ))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Scenario: evaluating the designs on a trace you brought yourself.

The library's synthetic workloads stand in for real traces, but anything
you captured with gem5/Pin/your own tooling works too: convert it to the
simple CSV format (``tick,addr,kind,priv``) or Dinero format and import.
This script writes a small CSV trace to a temp file to demonstrate the
round trip, then runs the canonical designs on it.

Run:  python examples/external_trace.py
"""

import tempfile

import numpy as np

from repro.cache import l1_filter
from repro.config import DEFAULT_PLATFORM
from repro.core import paper_designs
from repro.experiments import format_percent, format_table
from repro.trace.importers import load_csv_trace


def write_demo_csv(path: str, n: int = 60_000) -> None:
    """Emit a hand-rolled trace: a user loop + kernel service bursts."""
    rng = np.random.default_rng(42)
    with open(path, "w") as f:
        f.write("# tick,addr,kind,priv — demo trace for the importer\n")
        tick = 0
        for i in range(n):
            tick += int(rng.integers(1, 5))
            if (i // 400) % 3 == 2:  # every third burst is kernel service
                addr = 0xC010_0000 + int(rng.integers(0, 1500)) * 64
                kind = "I" if rng.random() < 0.5 else "L"
                f.write(f"{tick},{addr:#x},{kind},K\n")
            else:
                if rng.random() < 0.3:
                    addr = 0x0040_0000 + int((rng.random() ** 3) * 1000) * 64
                    kind = "I"
                else:
                    addr = 0x1000_0000 + int(rng.integers(0, 2500)) * 64
                    kind = "S" if rng.random() < 0.3 else "L"
                f.write(f"{tick},{addr:#x},{kind},U\n")


def main() -> None:
    with tempfile.NamedTemporaryFile(suffix=".csv", mode="w", delete=False) as f:
        csv_path = f.name
    write_demo_csv(csv_path)

    trace = load_csv_trace(csv_path, name="imported-demo")
    print(f"imported: {trace.describe()}")

    stream = l1_filter(trace, DEFAULT_PLATFORM)
    print(f"L2 sees {len(stream):,} accesses ({stream.kernel_share():.1%} kernel)\n")

    baseline = None
    rows = []
    for name, design in paper_designs().items():
        result = design.run(stream, DEFAULT_PLATFORM)
        if baseline is None:
            baseline = result
        rows.append([
            name,
            format_percent(result.l2_stats.demand_miss_rate, 2),
            f"{result.l2_energy.total_j / baseline.l2_energy.total_j:.3f}",
        ])
    print(format_table(
        "Designs on the imported trace",
        ["design", "miss rate", "norm. energy"],
        rows,
    ))


if __name__ == "__main__":
    main()

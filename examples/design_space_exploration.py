#!/usr/bin/env python3
"""Scenario: an SoC architect sizing a partitioned mobile L2.

Given a target workload mix, this script answers two questions the paper's
Figure 3/4 answer for its platform:

1. How does the shared L2's miss rate respond to capacity?  (Is the
   baseline over-provisioned?)
2. What is the smallest user/kernel partition whose miss rate stays
   within a tolerance of the full-size shared cache?

Run:  python examples/design_space_exploration.py [trace_length]
"""

import sys

from repro.cache import l1_filter
from repro.config import DEFAULT_PLATFORM, CacheGeometry
from repro.core import BaselineDesign, find_static_partition, sweep_partitions
from repro.experiments import format_percent, format_table
from repro.trace import suite_trace


def main() -> None:
    length = int(sys.argv[1]) if len(sys.argv) > 1 else 240_000
    apps = ("browser", "social", "game")

    print(f"Preparing L2 streams for {apps} ({length:,} accesses each) ...")
    streams = [l1_filter(suite_trace(app, length), DEFAULT_PLATFORM) for app in apps]

    # -- question 1: capacity response of the shared cache ---------------
    rows = []
    for size_kb in (256, 512, 768, 1024, 2048):
        rates = []
        for stream in streams:
            # constant 1024 sets; capacity varies through the way count
            design = BaselineDesign(geometry=CacheGeometry(size_kb * 1024, size_kb // 64))
            rates.append(design.run(stream, DEFAULT_PLATFORM).l2_stats.demand_miss_rate)
        rows.append([f"{size_kb} KB", format_percent(sum(rates) / len(rates), 2)])
    print()
    print(format_table("Shared L2: miss rate vs capacity", ["size", "miss rate"], rows))

    # -- question 2: smallest admissible partition ------------------------
    print("\nSweeping user/kernel partitions (this replays only the L2) ...")
    points = sweep_partitions(
        streams, DEFAULT_PLATFORM,
        user_way_options=(4, 6, 8, 10), kernel_way_options=(2, 4, 6))
    rows = [
        [f"{p.user_ways}u+{p.kernel_ways}k", f"{p.total_bytes // 1024} KB",
         format_percent(p.demand_miss_rate, 2)]
        for p in sorted(points, key=lambda p: p.total_bytes)
    ]
    print(format_table("Partition design space", ["config", "total", "miss rate"], rows))

    chosen = find_static_partition(
        streams, DEFAULT_PLATFORM, tolerance=0.10,
        user_way_options=(4, 6, 8, 10), kernel_way_options=(2, 4, 6))
    print(
        f"\nSmallest partition within 10% of the shared baseline: "
        f"{chosen.user_ways} user ways + {chosen.kernel_ways} kernel ways "
        f"= {chosen.total_bytes // 1024} KB "
        f"(miss rate {format_percent(chosen.demand_miss_rate, 2)})"
    )


if __name__ == "__main__":
    main()

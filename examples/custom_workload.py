#!/usr/bin/env python3
"""Scenario: evaluating the designs on a workload you define yourself.

The suite's eight apps are built from the same phase model exposed in the
public API; this example models a *camera* application — long bursts of
user-space image processing over large frame buffers, punctuated by
driver-heavy kernel activity for the sensor/ISP — and checks how the
paper's designs hold up on it.

Run:  python examples/custom_workload.py [trace_length]
"""

import sys

from repro.cache import l1_filter
from repro.config import DEFAULT_PLATFORM
from repro.core import paper_designs
from repro.experiments import format_percent, format_table
from repro.trace import AppProfile, PhaseSpec, Region, generate_trace
from repro.types import Privilege

KB = 1024

CODE_KINDS = (0.9, 0.08, 0.02)
DATA_KINDS = (0.0, 0.68, 0.32)
BUF_KINDS = (0.0, 0.5, 0.5)


def camera_profile() -> AppProfile:
    """A camera app: ISP pipelines stream frames; the kernel drives DMA."""
    user_code = Region("cam_code", 0x0040_0000, 96 * KB, "hot", 3.4, CODE_KINDS)
    # per-frame working state: tile buffers reused across pipeline stages
    user_tiles = Region("cam_tiles", 0x1000_0000, 160 * KB, "uniform",
                        kind_weights=DATA_KINDS)
    # full frames stream through once per capture
    user_frames = Region("cam_frames", 0x4000_0000, 16 * 1024 * KB, "stream",
                         kind_weights=DATA_KINDS, run_mean=10.0)
    kernel_code = Region("isp_driver", 0xC010_0000, 96 * KB, "hot", 3.4, CODE_KINDS)
    kernel_state = Region("isp_state", 0xC400_0000, 48 * KB, "uniform",
                          kind_weights=DATA_KINDS)
    kernel_dma = Region("isp_dma", 0xD000_0000, 8 * 1024 * KB, "stream",
                        kind_weights=BUF_KINDS, run_mean=10.0)

    process = PhaseSpec(
        "process_frame", Privilege.USER,
        (user_code, user_tiles, user_frames),
        (0.30, 0.50, 0.20),
        mean_accesses=700, mean_gap=3.0,
    )
    capture = PhaseSpec(
        "capture_irq", Privilege.KERNEL,
        (kernel_code, kernel_state, kernel_dma),
        (0.40, 0.35, 0.25),
        mean_accesses=350, mean_gap=2.5,
    )
    return AppProfile(
        name="camera",
        description="camera capture + ISP processing pipeline",
        phases=(process, capture),
        transitions=((0.0, 1.0), (1.0, 0.0)),
        idle_prob=0.25,          # waiting for the next frame
        idle_mean_ticks=50_000,  # ~ a frame interval at this scale
        wake_phase=1,            # the sensor interrupt wakes the core
    )


def main() -> None:
    length = int(sys.argv[1]) if len(sys.argv) > 1 else 240_000
    profile = camera_profile()

    print(f"Generating a {length:,}-access '{profile.name}' trace ...")
    trace = generate_trace(profile, length, seed=0)
    print(f"  {trace.describe()}")

    stream = l1_filter(trace, DEFAULT_PLATFORM)
    print(f"  L2 sees {len(stream):,} accesses, kernel share {stream.kernel_share():.1%}\n")

    baseline = None
    rows = []
    for name, design in paper_designs().items():
        result = design.run(stream, DEFAULT_PLATFORM)
        if baseline is None:
            baseline = result
        rows.append([
            name,
            format_percent(result.l2_stats.demand_miss_rate, 2),
            f"{result.l2_energy.total_j / baseline.l2_energy.total_j:.3f}",
            format_percent(result.timing.perf_loss_vs(baseline.timing), 2),
        ])
    print(format_table(
        "Designs on the custom 'camera' workload",
        ["design", "miss rate", "norm. energy", "perf loss"],
        rows,
    ))
    print(
        "\nEven on a workload the designs were never tuned for, the energy\n"
        "ordering of the paper should hold: baseline > static-sram > "
        "static-stt > dynamic-stt."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Regenerate every table and figure of the paper in one run.

This is the full reproduction artifact: Tables 1-4 and Figures 1-8 at
experiment scale (or a length you pass).  Expect a few minutes at the
default length; the (design x app) grid is simulated once and shared by
all experiments.

Run:  python examples/reproduce_paper.py [trace_length]
"""

import sys
import time

from repro.experiments import (
    EXPERIMENT_TRACE_LENGTH,
    fig1_kernel_share,
    fig2_interference,
    fig3_size_sweep,
    fig4_static_space,
    fig5_intervals,
    fig6_energy_breakdown,
    fig7_dynamic_timeline,
    fig8_energy_summary,
    table1_configuration,
    table2_technology,
    table3_workloads,
    table4_performance,
)


def main() -> None:
    length = int(sys.argv[1]) if len(sys.argv) > 1 else EXPERIMENT_TRACE_LENGTH
    t0 = time.time()

    static_experiments = [
        ("Table 1", table1_configuration),
        ("Table 2", table2_technology),
        ("Table 3", table3_workloads),
    ]
    sweep_experiments = [
        ("Figure 1", lambda: fig1_kernel_share(length)),
        ("Figure 2", lambda: fig2_interference(length)),
        ("Figure 3", lambda: fig3_size_sweep(length)),
        ("Figure 4", lambda: fig4_static_space(length)),
        ("Figure 5", lambda: fig5_intervals(length)),
        ("Figure 6", lambda: fig6_energy_breakdown(length)),
        ("Figure 7", lambda: fig7_dynamic_timeline("browser", length)),
        ("Figure 8", lambda: fig8_energy_summary(length)),
        ("Table 4", lambda: table4_performance(length)),
    ]

    for label, fn in static_experiments + sweep_experiments:
        start = time.time()
        result = fn()
        print(result.render())
        print(f"[{label} regenerated in {time.time() - start:.1f}s]\n")

    summary = fig8_energy_summary(length)
    perf = table4_performance(length)
    print("=" * 70)
    print("HEADLINE (paper -> measured):")
    print(
        f"  static technique:  ~75% energy saving -> {summary.saving('static-stt'):.1%}, "
        f"~2% perf loss -> {perf.mean('static-stt'):.2%}"
    )
    print(
        f"  dynamic technique: ~85% energy saving -> {summary.saving('dynamic-stt'):.1%}, "
        f"~3% perf loss -> {perf.mean('dynamic-stt'):.2%}"
    )
    print(f"total: {time.time() - t0:.0f}s")


if __name__ == "__main__":
    main()

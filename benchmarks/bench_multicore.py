"""Extension — the designs on a multi-core shared L2.

One app per core, private L1s, disjoint user address spaces, one shared
kernel.  The kernel segment's value grows with core count: every core's
syscalls reuse the same kernel blocks, while user blocks only contend.
"""


from conftest import run_once
from repro.config import DEFAULT_PLATFORM
from repro.core import paper_designs
from repro.experiments import format_table
from repro.multicore import kernel_block_sharing, multicore_stream
from repro.types import Privilege

MIXES = {
    "1-core (browser)": ("browser",),
    "2-core (browser+game)": ("browser", "game"),
    "4-core (brw+gam+soc+mus)": ("browser", "game", "social", "music"),
}


def _sweep(length):
    per_core_length = max(60_000, length // 3)
    rows = []
    for label, apps in MIXES.items():
        stream = multicore_stream(apps, per_core_length)
        base = None
        norm = {}
        stats = {}
        for name, design in paper_designs().items():
            r = design.run(stream, DEFAULT_PLATFORM)
            if base is None:
                base = r
            norm[name] = r.l2_energy.total_j / base.l2_energy.total_j
            stats[name] = r.l2_stats
        rows.append((
            label,
            stats["baseline"].miss_rate_of(Privilege.USER),
            stats["baseline"].miss_rate_of(Privilege.KERNEL),
            kernel_block_sharing(stream),
            norm["static-stt"],
            norm["dynamic-stt"],
        ))
    return rows


def test_multicore_extension(benchmark, bench_length):
    rows = run_once(benchmark, _sweep, bench_length)
    print()
    print(format_table(
        "Extension: multi-core shared L2 (one app per core)",
        ["mix", "user mr", "kernel mr", "kern sharing", "static-stt", "dynamic-stt"],
        [[l, f"{u:.2%}", f"{k:.2%}", f"{s:.1%}", f"{st:.3f}", f"{dy:.3f}"]
         for l, u, k, s, st, dy in rows],
    ))
    by_label = {r[0]: r for r in rows}
    solo = by_label["1-core (browser)"]
    quad = by_label["4-core (brw+gam+soc+mus)"]
    # kernel blocks gain cross-core reuse; user blocks only contend
    assert quad[2] < solo[2]
    assert quad[1] > solo[1] * 0.9
    # the energy conclusion survives multiprogramming
    assert all(r[4] < 0.5 and r[5] < r[4] + 0.05 for r in rows)

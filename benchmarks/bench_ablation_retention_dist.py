"""Ablation — fixed retention window vs thermally realistic lifetimes.

STT-RAM retention failures are exponentially distributed; the "10 ms
retention" of a datasheet is a mean (or a quantile), not a wall.  Under
exponential lifetimes a fraction of cells dies *early*, so a window
chosen to sit just above the reuse interval leaves no margin.  This
ablation quantifies the cost and shows the design consequence: the spec
window must clear the reuse horizon with margin, or a refresh scheme
must mop up the early deaths.
"""

import numpy as np

from conftest import run_once
from repro.core.baseline import BaselineDesign
from repro.core.multi_retention import multi_retention_design
from repro.experiments import format_table, run_design_on

APPS = ("browser", "social", "game")


def _sweep(length):
    rows = []
    for dist in ("fixed", "exponential"):
        design = multi_retention_design(retention_distribution=dist, name=f"stt-{dist}")
        energy, loss, expiry = [], [], []
        for app in APPS:
            base = run_design_on(BaselineDesign(), app, length=length)
            r = run_design_on(design, app, length=length)
            energy.append(r.l2_energy.total_j / base.l2_energy.total_j)
            loss.append(r.timing.perf_loss_vs(base.timing))
            expiry.append(r.l2_stats.expiry_invalidations)
        rows.append((dist, float(np.mean(energy)), float(np.mean(loss)),
                     float(np.mean(expiry))))
    # refresh-rewrite under exponential lifetimes is not modelled (the
    # controller would need per-cell failure prediction); the fixed-window
    # rewrite row bounds it from below.
    return rows


def test_ablation_retention_distribution(benchmark, bench_length):
    rows = run_once(benchmark, _sweep, bench_length)
    print()
    print(format_table(
        "Ablation: retention lifetime distribution (static-stt, 3-app mean)",
        ["distribution", "norm. energy", "perf loss", "expiry misses"],
        [[d, f"{e:.3f}", f"{p:+.2%}", f"{x:.0f}"] for d, e, p, x in rows],
    ))
    by_dist = {d: (e, p, x) for d, e, p, x in rows}
    # early deaths under exponential lifetimes cost extra misses/perf
    assert by_dist["exponential"][2] > by_dist["fixed"][2]
    assert by_dist["exponential"][1] > by_dist["fixed"][1]
    # but the energy conclusion is untouched
    assert abs(by_dist["exponential"][0] - by_dist["fixed"][0]) < 0.05

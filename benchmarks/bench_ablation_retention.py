"""Ablation — retention-class assignment of the static STT-RAM design.

The paper assigns medium retention to the user segment and short to the
kernel segment, based on the interval asymmetry of Figure 5.  This
ablation tries all four assignments and checks the canonical one is on
the energy/performance Pareto frontier of the swap.
"""

import numpy as np

from conftest import run_once
from repro.core.baseline import BaselineDesign
from repro.core.multi_retention import multi_retention_design
from repro.experiments import format_table, run_design_on

APPS = ("browser", "social", "game")

ASSIGNMENTS = [
    ("user=medium kernel=short (paper)", "medium", "short"),
    ("user=short  kernel=medium (swap)", "short", "medium"),
    ("both short", "short", "short"),
    ("both medium", "medium", "medium"),
]


def _sweep(length):
    rows = []
    for label, user_ret, kernel_ret in ASSIGNMENTS:
        design = multi_retention_design(
            user_retention=user_ret, kernel_retention=kernel_ret, name=label)
        energy, loss, expiries = [], [], []
        for app in APPS:
            base = run_design_on(BaselineDesign(), app, length=length)
            r = run_design_on(design, app, length=length)
            energy.append(r.l2_energy.total_j / base.l2_energy.total_j)
            loss.append(r.timing.perf_loss_vs(base.timing))
            expiries.append(r.l2_stats.expiry_invalidations)
        rows.append((label, float(np.mean(energy)), float(np.mean(loss)),
                     float(np.mean(expiries))))
    return rows


def test_ablation_retention_assignment(benchmark, bench_length):
    rows = run_once(benchmark, _sweep, bench_length)
    print()
    print(format_table(
        "Ablation: retention-class assignment in the static STT design (3-app mean)",
        ["assignment", "norm. energy", "perf loss", "expiry misses"],
        [[l, f"{e:.3f}", f"{p:+.2%}", f"{x:.0f}"] for l, e, p, x in rows],
    ))
    by_label = {l: (e, p, x) for l, e, p, x in rows}
    paper = by_label["user=medium kernel=short (paper)"]
    swap = by_label["user=short  kernel=medium (swap)"]
    # swapping the classes puts short retention under long-dead-time user
    # blocks: it must cost more expiry misses and more performance
    assert swap[2] > paper[2]
    assert swap[1] > paper[1]

"""Extension table — structural area/energy estimates of the arrays.

The structural model answers a question the calibrated constants cannot:
what does each design's array *cost in silicon*?  The STT-RAM density
advantage means the paper's 768 KB STT partition is ~5x smaller in area
than the 1 MB SRAM baseline while also burning less leakage.
"""

from conftest import run_once
from repro.config import CacheGeometry
from repro.energy.array_model import SRAM_CELL, STT_CELL, estimate_array
from repro.experiments import format_table

ARRAYS = [
    ("baseline (shared SRAM)", CacheGeometry(1024 * 1024, 16), SRAM_CELL),
    ("static-sram user seg", CacheGeometry(512 * 1024, 8), SRAM_CELL),
    ("static-sram kernel seg", CacheGeometry(256 * 1024, 4), SRAM_CELL),
    ("static-stt user seg", CacheGeometry(512 * 1024, 8), STT_CELL),
    ("static-stt kernel seg", CacheGeometry(256 * 1024, 4), STT_CELL),
]


def _estimate():
    return [(label, estimate_array(geometry, cell)) for label, geometry, cell in ARRAYS]


def test_table_area(benchmark):
    rows = run_once(benchmark, _estimate)
    print()
    print(format_table(
        "Extension table: structural array estimates (45 nm class)",
        ["array", "read (nJ)", "write (nJ)", "leakage (mW)", "area (mm^2)"],
        [[label] + est.row()[1:] for label, est in rows],
    ))
    by_label = dict(rows)
    baseline_area = by_label["baseline (shared SRAM)"].area_mm2
    stt_area = (by_label["static-stt user seg"].area_mm2
                + by_label["static-stt kernel seg"].area_mm2)
    print(f"area: 1 MB SRAM baseline {baseline_area:.2f} mm^2 -> "
          f"768 KB STT partition {stt_area:.2f} mm^2 "
          f"({baseline_area / stt_area:.1f}x smaller)")
    assert stt_area < baseline_area / 3

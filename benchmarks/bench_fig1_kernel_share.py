"""Figure 1 — kernel share of L2 accesses (the >40% motivation)."""

from conftest import run_once
from repro.experiments import fig1_kernel_share


def test_fig1_kernel_share(benchmark, bench_length):
    result = run_once(benchmark, fig1_kernel_share, bench_length)
    print()
    print(result.render())
    print(f"paper claim: >40% on average; measured mean: {result.mean:.1%}")
    assert result.mean > 0.40

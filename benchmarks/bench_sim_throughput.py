"""Simulator throughput — accesses per second of the core engine.

The one bench where wall-clock time is the result itself.  Regressions
here make every experiment slower, so it is tracked with real
pytest-benchmark rounds (the engine is deterministic and side-effect
free across rounds because each round builds a fresh cache).
"""

import numpy as np

from repro.cache.set_assoc import SetAssociativeCache
from repro.config import CacheGeometry

N_ACCESSES = 50_000


def _make_workload():
    rng = np.random.default_rng(42)
    addrs = (rng.integers(0, 1 << 14, size=N_ACCESSES) * 64).tolist()
    writes = (rng.integers(0, 2, size=N_ACCESSES) == 1).tolist()
    privs = (rng.integers(0, 2, size=N_ACCESSES)).tolist()
    return addrs, writes, privs


def _run(addrs, writes, privs):
    cache = SetAssociativeCache(CacheGeometry(256 * 1024, 8), "lru")
    access = cache.access
    for tick, (addr, is_write, priv) in enumerate(zip(addrs, writes, privs)):
        access(addr, is_write, priv, tick)
    return cache.stats.misses


def test_engine_throughput(benchmark):
    addrs, writes, privs = _make_workload()
    misses = benchmark(_run, addrs, writes, privs)
    assert misses > 0
    rate = N_ACCESSES / benchmark.stats["mean"]
    print(f"\nengine throughput: {rate / 1e6:.2f} M accesses/s")

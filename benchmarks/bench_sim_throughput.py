"""Simulator throughput — accesses per second of the core engine.

The one bench where wall-clock time is the result itself.  Regressions
here make every experiment slower, so it is tracked with real
pytest-benchmark rounds (the engine is deterministic and side-effect
free across rounds because each round builds a fresh cache).

Two engines are measured against the same workload: the per-access
reference engine (:class:`~repro.cache.set_assoc.SetAssociativeCache`)
and the vectorized fast-path kernel
(:func:`~repro.cache.fastsim.simulate_trace`); the speedup test also
asserts the two produce bit-identical counters, and that the kernel
clears its >= 5x performance contract (see ``docs/performance.md``).
"""

import time

import numpy as np

from repro.cache.fastsim import simulate_trace
from repro.cache.set_assoc import SetAssociativeCache
from repro.config import CacheGeometry

N_ACCESSES = 50_000

GEOMETRY = CacheGeometry(256 * 1024, 8)

#: The fast kernel must beat the reference engine by at least this factor
#: on the canonical LRU/no-retention workload (the PR's acceptance bar).
MIN_SPEEDUP = 5.0


def _make_workload():
    rng = np.random.default_rng(42)
    addrs = (rng.integers(0, 1 << 14, size=N_ACCESSES) * 64).astype(np.uint64)
    writes = rng.integers(0, 2, size=N_ACCESSES) == 1
    privs = rng.integers(0, 2, size=N_ACCESSES).astype(np.uint8)
    ticks = np.arange(N_ACCESSES, dtype=np.int64)
    return ticks, addrs, privs, writes


def _run_reference(addrs, writes, privs):
    cache = SetAssociativeCache(GEOMETRY, "lru")
    access = cache.access
    for tick, (addr, is_write, priv) in enumerate(zip(addrs, writes, privs)):
        access(addr, is_write, priv, tick)
    return cache.stats


def _run_fast(ticks, addrs, privs, writes):
    stats, _ = simulate_trace(GEOMETRY, ticks, addrs, privs, writes)
    return stats


def test_engine_throughput(benchmark):
    _, addrs, privs, writes = _make_workload()
    addrs, writes, privs = addrs.tolist(), writes.tolist(), privs.tolist()
    stats = benchmark(_run_reference, addrs, writes, privs)
    assert stats.misses > 0
    rate = N_ACCESSES / benchmark.stats["mean"]
    print(f"\nengine throughput: {rate / 1e6:.2f} M accesses/s")


def test_fastsim_throughput(benchmark):
    ticks, addrs, privs, writes = _make_workload()
    stats = benchmark(_run_fast, ticks, addrs, privs, writes)
    assert stats.misses > 0
    rate = N_ACCESSES / benchmark.stats["mean"]
    print(f"\nfastsim throughput: {rate / 1e6:.2f} M accesses/s")


def test_fastsim_speedup(benchmark):
    """Differential throughput: same workload through both engines.

    The fast kernel is timed with real benchmark rounds; the reference
    engine (too slow for many rounds) gets a best-of-3 wall-clock
    measurement.  Best-of is the low-noise statistic on both sides, so
    the asserted ratio is stable across machines.
    """
    ticks, addrs, privs, writes = _make_workload()
    fast_stats = benchmark(_run_fast, ticks, addrs, privs, writes)

    ref_addrs, ref_writes, ref_privs = addrs.tolist(), writes.tolist(), privs.tolist()
    ref_best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        ref_stats = _run_reference(ref_addrs, ref_writes, ref_privs)
        ref_best = min(ref_best, time.perf_counter() - t0)

    assert ref_stats.to_dict() == fast_stats.to_dict()

    fast_best = benchmark.stats["min"]
    speedup = ref_best / fast_best
    print(
        f"\nreference {N_ACCESSES / ref_best / 1e6:.2f} M accesses/s, "
        f"fastsim {N_ACCESSES / fast_best / 1e6:.2f} M accesses/s, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"fast kernel speedup {speedup:.2f}x below the {MIN_SPEEDUP:.0f}x contract"
    )

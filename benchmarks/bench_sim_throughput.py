"""Simulator throughput — accesses per second of the core engine.

The one bench where wall-clock time is the result itself.  Regressions
here make every experiment slower, so it is tracked with real
pytest-benchmark rounds (the engine is deterministic and side-effect
free across rounds because each round builds a fresh cache).

Two engines are measured against the same workload: the per-access
reference engine (:class:`~repro.cache.set_assoc.SetAssociativeCache`)
and the vectorized fast-path kernel
(:func:`~repro.cache.fastsim.simulate_trace`); the speedup test also
asserts the two produce bit-identical counters, and that the kernel
clears its >= 5x performance contract (see ``docs/performance.md``).
A third differential bench does the same for the dynamic partition
design, whose epoch-chunked kernel carries a >= 3x end-to-end contract
on the canonical ``dynamic-stt`` workload.
"""

import time

import numpy as np

from repro import obs
from repro.cache.fastsim import simulate_trace
from repro.cache.hierarchy import l1_filter
from repro.cache.set_assoc import SetAssociativeCache
from repro.config import CacheGeometry, PlatformConfig
from repro.core.designs import make_design
from repro.core.dynamic_partition import DynamicPartitionDesign
from repro.obs.trace import NULL_SPAN
from repro.trace.workloads import suite_trace

N_ACCESSES = 50_000

GEOMETRY = CacheGeometry(256 * 1024, 8)

#: The fast kernel must beat the reference engine by at least this factor
#: on the canonical LRU/no-retention workload (the PR's acceptance bar).
MIN_SPEEDUP = 5.0

#: The epoch-chunked kernel must beat the reference engine by at least
#: this factor end to end on the canonical ``dynamic-stt`` workload
#: (design construction, controller steps and result assembly included).
DYNAMIC_MIN_SPEEDUP = 3.0

#: Disabled observability instrumentation (the no-op recorder plus the
#: always-on counters) may cost at most this fraction of a canonical
#: job's wall time (see ``docs/observability.md``).
OBS_OVERHEAD_BUDGET = 0.02

#: The canonical dynamic-stt workload: the browser app's L2 stream —
#: bursty and interaction-driven, the trace shape the dynamic design
#: is built for (idle gating between bursts, regrowth inside them).
DYNAMIC_APP = "browser"
DYNAMIC_TRACE_LEN = 200_000


def _make_workload():
    rng = np.random.default_rng(42)
    addrs = (rng.integers(0, 1 << 14, size=N_ACCESSES) * 64).astype(np.uint64)
    writes = rng.integers(0, 2, size=N_ACCESSES) == 1
    privs = rng.integers(0, 2, size=N_ACCESSES).astype(np.uint8)
    ticks = np.arange(N_ACCESSES, dtype=np.int64)
    return ticks, addrs, privs, writes


def _run_reference(addrs, writes, privs):
    cache = SetAssociativeCache(GEOMETRY, "lru")
    access = cache.access
    for tick, (addr, is_write, priv) in enumerate(zip(addrs, writes, privs)):
        access(addr, is_write, priv, tick)
    return cache.stats


def _run_fast(ticks, addrs, privs, writes):
    stats, _ = simulate_trace(GEOMETRY, ticks, addrs, privs, writes)
    return stats


def test_engine_throughput(benchmark):
    _, addrs, privs, writes = _make_workload()
    addrs, writes, privs = addrs.tolist(), writes.tolist(), privs.tolist()
    stats = benchmark(_run_reference, addrs, writes, privs)
    assert stats.misses > 0
    rate = N_ACCESSES / benchmark.stats["mean"]
    print(f"\nengine throughput: {rate / 1e6:.2f} M accesses/s")


def test_fastsim_throughput(benchmark):
    ticks, addrs, privs, writes = _make_workload()
    stats = benchmark(_run_fast, ticks, addrs, privs, writes)
    assert stats.misses > 0
    rate = N_ACCESSES / benchmark.stats["mean"]
    print(f"\nfastsim throughput: {rate / 1e6:.2f} M accesses/s")


def test_fastsim_speedup(benchmark):
    """Differential throughput: same workload through both engines.

    The fast kernel is timed with real benchmark rounds; the reference
    engine (too slow for many rounds) gets a best-of-3 wall-clock
    measurement.  Best-of is the low-noise statistic on both sides, so
    the asserted ratio is stable across machines.
    """
    ticks, addrs, privs, writes = _make_workload()
    fast_stats = benchmark(_run_fast, ticks, addrs, privs, writes)

    ref_addrs, ref_writes, ref_privs = addrs.tolist(), writes.tolist(), privs.tolist()
    ref_best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        ref_stats = _run_reference(ref_addrs, ref_writes, ref_privs)
        ref_best = min(ref_best, time.perf_counter() - t0)

    assert ref_stats.to_dict() == fast_stats.to_dict()

    fast_best = benchmark.stats["min"]
    speedup = ref_best / fast_best
    print(
        f"\nreference {N_ACCESSES / ref_best / 1e6:.2f} M accesses/s, "
        f"fastsim {N_ACCESSES / fast_best / 1e6:.2f} M accesses/s, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"fast kernel speedup {speedup:.2f}x below the {MIN_SPEEDUP:.0f}x contract"
    )


def test_dynamic_fast_path_speedup(benchmark):
    """Differential throughput of the dynamic design's two engines.

    Runs the full ``DynamicPartitionDesign.run`` (epoch-chunked kernel
    vs the per-access reference loop) on the canonical dynamic-stt
    workload, asserts the two results are bit-identical apart from the
    ``sim_engine`` tag, and that the fast path clears its >= 3x
    end-to-end contract (see ``docs/performance.md``).
    """
    platform = PlatformConfig()
    trace = suite_trace(DYNAMIC_APP, length=DYNAMIC_TRACE_LEN, seed=7)
    stream = l1_filter(trace, platform)
    design = DynamicPartitionDesign()

    fast_result = benchmark(design.run, stream, platform, "fast")

    ref_best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        ref_result = design.run(stream, platform, engine="reference")
        ref_best = min(ref_best, time.perf_counter() - t0)

    fast_dict, ref_dict = fast_result.to_dict(), ref_result.to_dict()
    assert fast_dict["extras"].pop("sim_engine") == "fastsim"
    assert ref_dict["extras"].pop("sim_engine") == "reference"
    assert fast_dict == ref_dict

    fast_best = benchmark.stats["min"]
    speedup = ref_best / fast_best
    n = len(stream.ticks)
    print(
        f"\ndynamic-stt: reference {n / ref_best / 1e6:.2f} M accesses/s, "
        f"fast path {n / fast_best / 1e6:.2f} M accesses/s, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= DYNAMIC_MIN_SPEEDUP, (
        f"dynamic fast path speedup {speedup:.2f}x below the "
        f"{DYNAMIC_MIN_SPEEDUP:.0f}x contract"
    )


class _CountingRecorder:
    """Tallies span/event call sites without recording anything."""

    enabled = False

    def __init__(self):
        self.spans = 0
        self.events = 0

    def span(self, name, **attrs):
        self.spans += 1
        return NULL_SPAN

    def event(self, name, **attrs):
        self.events += 1

    def emit(self, payload):
        pass

    def metrics(self, registry=None):
        pass

    def close(self):
        pass


def test_obs_disabled_overhead(benchmark):
    """Disabled instrumentation must stay under its 2% budget.

    Strategy: count how many instrumentation operations (no-op spans,
    events and counter increments) one canonical job actually performs,
    price a single disabled operation with a tight micro-benchmark, and
    assert that the product is below ``OBS_OVERHEAD_BUDGET`` of the
    job's measured wall time.  This bounds the overhead far more
    stably than differencing two noisy end-to-end timings.
    """
    platform = PlatformConfig()
    trace = suite_trace("browser", length=60_000, seed=11)

    def job():
        stream = l1_filter(trace, platform)
        return make_design("baseline").run(stream, platform)

    # 1. Count the instrumentation ops of one job.
    counting = _CountingRecorder()
    previous = obs.set_recorder(counting)
    counters_before = sum(obs.REGISTRY.counters.values())
    try:
        job()
    finally:
        obs.set_recorder(previous)
    n_spans = counting.spans + counting.events
    n_incs = sum(obs.REGISTRY.counters.values()) - counters_before
    assert n_spans > 0, "the job is expected to hit instrumented code"

    # 2. Price one disabled span (enter/exit) and one counter increment.
    n = 20_000
    t0 = time.perf_counter()
    for _ in range(n):
        with obs.span("bench", probe=1):
            pass
    span_cost = (time.perf_counter() - t0) / n
    t0 = time.perf_counter()
    for _ in range(n):
        obs.inc("bench.probe")
    inc_cost = (time.perf_counter() - t0) / n

    # 3. The job's wall time with instrumentation disabled (as shipped).
    benchmark(job)
    job_wall = benchmark.stats["min"]

    overhead_s = n_spans * span_cost + n_incs * inc_cost
    overhead = overhead_s / job_wall
    print(
        f"\nobs disabled overhead: {n_spans} spans x {span_cost * 1e9:.0f} ns + "
        f"{n_incs} counter incs x {inc_cost * 1e9:.0f} ns = {overhead_s * 1e6:.1f} us "
        f"of a {job_wall * 1e3:.1f} ms job ({overhead:.4%})"
    )
    assert overhead < OBS_OVERHEAD_BUDGET, (
        f"disabled instrumentation overhead {overhead:.2%} exceeds the "
        f"{OBS_OVERHEAD_BUDGET:.0%} budget"
    )

"""Sensitivity — headline robustness to timing-model constants."""

from conftest import run_once
from repro.experiments import dram_latency_sensitivity, l2_latency_sensitivity


def test_dram_latency_sensitivity(benchmark, bench_length):
    result = run_once(benchmark, dram_latency_sensitivity, bench_length)
    print()
    print(result.render())
    # the energy conclusion must not hinge on the DRAM latency choice
    assert result.energy_spread() < 0.05
    assert all(r.static_stt_energy_norm < 0.35 for r in result.rows)


def test_l2_latency_sensitivity(benchmark, bench_length):
    result = run_once(benchmark, l2_latency_sensitivity, bench_length)
    print()
    print(result.render())
    assert result.energy_spread() < 0.05
    assert all(r.static_stt_energy_norm < 0.35 for r in result.rows)

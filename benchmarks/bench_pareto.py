"""Synthesis — the energy/performance Pareto frontier over all designs."""

from conftest import run_once
from repro.experiments import pareto_frontier


def test_pareto_frontier(benchmark, bench_length):
    result = run_once(benchmark, pareto_frontier, bench_length)
    print()
    print(result.render())
    frontier = {p.design for p in result.frontier()}
    # the baseline anchors the frontier at zero loss; the paper's dynamic
    # technique must be on the frontier (nothing saves more for less)
    assert "baseline" in frontier
    assert "dynamic-stt" in frontier
    # the paper's static technique beats every SRAM-only option on energy
    points = {p.design: p for p in result.points}
    assert points["static-stt"].energy_norm < points["drowsy-sram"].energy_norm
    assert points["static-stt"].energy_norm < points["static-sram"].energy_norm
    # and the naive hybrid is dominated (it never makes the frontier here)
    assert not points["hybrid"].on_frontier

"""Extended Table 3 — workload characterization of the suite."""

import numpy as np

from conftest import run_once
from repro.experiments import characterize_suite


def test_characterization(benchmark, bench_length):
    result = run_once(benchmark, characterize_suite, bench_length)
    print()
    print(result.render())
    rows = result.rows
    # the properties the reproduction depends on, per app
    assert all(r.l2_kernel_share > 0.3 for r in rows)
    assert all(0.05 < r.l1i_miss_rate < 0.35 for r in rows)
    assert all(0.15 < r.write_fraction < 0.35 for r in rows)
    # mean L2 kernel share is the paper's >40% claim
    assert float(np.mean([r.l2_kernel_share for r in rows])) > 0.40

"""Comparison — the paper's designs vs a drowsy-SRAM competitor.

Drowsy caching is the strongest SRAM-only leakage technique a designer
would try before changing memory technology.  This bench pits it
against the paper's STT-RAM designs on the full suite: the STT designs
must beat it for the paper's conclusion to stand.
"""

import numpy as np

from conftest import run_once
from repro.core.baseline import BaselineDesign
from repro.core.drowsy import DrowsySRAMDesign
from repro.experiments import canonical_result, format_table, run_design_on
from repro.trace.workloads import APP_NAMES


def _sweep(length):
    rows = []
    drowsy = DrowsySRAMDesign()
    energy, loss = [], []
    for app in APP_NAMES:
        base = run_design_on(BaselineDesign(), app, length=length)
        r = run_design_on(drowsy, app, length=length)
        energy.append(r.l2_energy.total_j / base.l2_energy.total_j)
        loss.append(r.timing.perf_loss_vs(base.timing))
    rows.append(("drowsy-sram", float(np.mean(energy)), float(np.mean(loss))))
    for design in ("static-stt", "dynamic-stt"):
        energy, loss = [], []
        for app in APP_NAMES:
            base = canonical_result("baseline", app, length)
            r = canonical_result(design, app, length)
            energy.append(r.l2_energy.total_j / base.l2_energy.total_j)
            loss.append(r.timing.perf_loss_vs(base.timing))
        rows.append((design, float(np.mean(energy)), float(np.mean(loss))))
    return rows


def test_comparison_drowsy_sram(benchmark, bench_length):
    rows = run_once(benchmark, _sweep, bench_length)
    print()
    print(format_table(
        "Comparison: drowsy SRAM vs the paper's STT designs (suite mean)",
        ["design", "norm. energy", "perf loss"],
        [[d, f"{e:.3f}", f"{p:+.2%}"] for d, e, p in rows],
    ))
    by_design = {d: e for d, e, _ in rows}
    # the paper's techniques must beat the best SRAM-only competitor
    assert by_design["static-stt"] < by_design["drowsy-sram"]
    assert by_design["dynamic-stt"] < by_design["static-stt"]

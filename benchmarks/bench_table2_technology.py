"""Table 2 — SRAM vs multi-retention STT-RAM technology parameters."""

from conftest import run_once
from repro.experiments import table2_technology


def test_table2_technology(benchmark):
    table = run_once(benchmark, table2_technology)
    print()
    print(table.render())
    names = [row[0] for row in table.rows]
    assert names == ["sram", "stt-long", "stt-medium", "stt-short"]

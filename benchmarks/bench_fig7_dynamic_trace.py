"""Figure 7 — dynamic partition way timeline."""

from conftest import run_once
from repro.experiments import fig7_dynamic_timeline


def test_fig7_dynamic_timeline(benchmark, bench_length):
    result = run_once(benchmark, fig7_dynamic_timeline, "browser", bench_length)
    print()
    print(result.render())
    # the controller must actually move capacity around
    assert min(result.user_ways) < max(result.user_ways)
    # and on average power less than the static design's 12 ways
    assert result.mean_user_ways + result.mean_kernel_ways < result.static_total_ways

"""Ablation — dynamic controller epoch length.

Shorter epochs react faster to idle spans (more gating, more savings)
but decide on noisier statistics; longer epochs are stable but leave
leakage on the table.  This sweep shows the trade-off the default
(25k ticks) sits in.
"""

import numpy as np

from conftest import run_once
from repro.core.baseline import BaselineDesign
from repro.core.dynamic_partition import DynamicControllerConfig, DynamicPartitionDesign
from repro.experiments import format_table, run_design_on

APPS = ("browser", "social")
EPOCHS = (10_000, 25_000, 50_000, 100_000)


def _sweep(length):
    rows = []
    for epoch in EPOCHS:
        cfg = DynamicControllerConfig(epoch_ticks=epoch)
        design = DynamicPartitionDesign(cfg, name=f"dyn-{epoch}")
        energy, loss = [], []
        for app in APPS:
            base = run_design_on(BaselineDesign(), app, length=length)
            r = run_design_on(design, app, length=length)
            energy.append(r.l2_energy.total_j / base.l2_energy.total_j)
            loss.append(r.timing.perf_loss_vs(base.timing))
        rows.append((epoch, float(np.mean(energy)), float(np.mean(loss))))
    return rows


def test_ablation_epoch_length(benchmark, bench_length):
    rows = run_once(benchmark, _sweep, bench_length)
    print()
    print(format_table(
        "Ablation: dynamic-controller epoch length (2-app mean)",
        ["epoch (ticks)", "norm. energy", "perf loss"],
        [[f"{e:,}", f"{n:.3f}", f"{p:+.2%}"] for e, n, p in rows],
    ))
    energies = [n for _, n, _ in rows]
    # every epoch choice must still save the large majority of L2 energy
    assert max(energies) < 0.4

"""Supporting analysis — kernel L2 share vs L1 size.

The >40% kernel share of L2 accesses (Figure 1) is a property of what
the L1s *fail* to filter.  Bigger L1s capture more of the user hot set
than of the kernel's (the kernel's state is touched from many contexts
and thrashes small L1s less predictably), so the kernel's L2 share is
robust to — indeed grows slowly with — reasonable L1 sizing.  This bench
pins that, heading off the "your L1s are just too small" critique.
"""

import numpy as np

from conftest import run_once
from repro.cache.hierarchy import l1_filter
from repro.config import DEFAULT_PLATFORM, CacheGeometry, PlatformConfig
from repro.experiments import format_table
from repro.trace.workloads import suite_trace

APPS = ("browser", "social", "game")
L1_KB = (16, 32, 64)


def _sweep(length):
    rows = []
    for l1_kb in L1_KB:
        platform = PlatformConfig(
            l1i=CacheGeometry(l1_kb * 1024, 4),
            l1d=CacheGeometry(l1_kb * 1024, 4),
            l2=DEFAULT_PLATFORM.l2,
            latency=DEFAULT_PLATFORM.latency,
        )
        shares, volumes = [], []
        for app in APPS:
            stream = l1_filter(suite_trace(app, max(120_000, length // 4)), platform)
            shares.append(stream.kernel_share())
            volumes.append(len(stream.ticks))
        rows.append((l1_kb, float(np.mean(shares)), float(np.mean(volumes))))
    return rows


def test_l1_size_sensitivity(benchmark, bench_length):
    rows = run_once(benchmark, _sweep, bench_length)
    print()
    print(format_table(
        "Supporting: kernel share of L2 accesses vs L1 size (3-app mean)",
        ["L1 size", "kernel L2 share", "L2 accesses"],
        [[f"{kb} KB", f"{s:.1%}", f"{v:,.0f}"] for kb, s, v in rows],
    ))
    shares = [s for _, s, _ in rows]
    # the >40%-class kernel share is not an artifact of one L1 size
    assert all(s > 0.30 for s in shares)
    # larger L1s filter traffic but do not erase the kernel share
    volumes = [v for _, _, v in rows]
    assert volumes[0] > volumes[-1]

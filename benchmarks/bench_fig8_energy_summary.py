"""Figure 8 — normalized L2 energy per design (the headline result)."""

from conftest import run_once
from repro.experiments import fig8_energy_summary


def test_fig8_energy_summary(benchmark, bench_length):
    result = run_once(benchmark, fig8_energy_summary, bench_length)
    print()
    print(result.render())
    static_saving = result.saving("static-stt")
    dynamic_saving = result.saving("dynamic-stt")
    print(f"paper: static technique saves ~75%; measured: {static_saving:.1%}")
    print(f"paper: dynamic technique saves ~85%; measured: {dynamic_saving:.1%}")
    assert 0.65 < static_saving < 0.85
    assert 0.75 < dynamic_saving < 0.92
    assert dynamic_saving > static_saving

"""Comparison — hybrid SRAM/STT segments vs multi-retention STT.

Two rival answers to STT-RAM's expensive writes: segregate the write
stream into a few SRAM ways (hybrid, HPCA'09 lineage) or cheapen every
write by relaxing retention (the paper).  On leakage-dominated mobile
workloads the SRAM ways' standing cost is the deciding factor.
"""

import numpy as np

from conftest import run_once
from repro.core.baseline import BaselineDesign
from repro.core.hybrid import HybridPartitionDesign
from repro.core.multi_retention import multi_retention_design
from repro.experiments import format_table, run_design_on

APPS = ("browser", "social", "game")


def _sweep(length):
    designs = [
        ("hybrid (1 SRAM way/segment)", HybridPartitionDesign()),
        ("hybrid (2 SRAM ways/segment)", HybridPartitionDesign(
            user_sram_ways=2, user_stt_ways=6, kernel_sram_ways=2, kernel_stt_ways=2,
            name="hybrid-2")),
        ("multi-retention (paper)", multi_retention_design()),
    ]
    rows = []
    for label, design in designs:
        energy, loss, leak, write = [], [], [], []
        for app in APPS:
            base = run_design_on(BaselineDesign(), app, length=length)
            r = run_design_on(design, app, length=length)
            energy.append(r.l2_energy.total_j / base.l2_energy.total_j)
            loss.append(r.timing.perf_loss_vs(base.timing))
            leak.append(r.l2_energy.leakage_j * 1e6)
            write.append(r.l2_energy.write_j * 1e6)
        rows.append((label, float(np.mean(energy)), float(np.mean(loss)),
                     float(np.mean(leak)), float(np.mean(write))))
    return rows


def test_comparison_hybrid(benchmark, bench_length):
    rows = run_once(benchmark, _sweep, bench_length)
    print()
    print(format_table(
        "Comparison: hybrid vs multi-retention STT (3-app mean)",
        ["design", "norm. energy", "perf loss", "leak (uJ)", "write (uJ)"],
        [[l, f"{e:.3f}", f"{p:+.2%}", f"{lk:.0f}", f"{w:.1f}"] for l, e, p, lk, w in rows],
    ))
    by_label = {l: (e, p, lk, w) for l, e, p, lk, w in rows}
    paper = by_label["multi-retention (paper)"]
    hybrid1 = by_label["hybrid (1 SRAM way/segment)"]
    # hybrid's write energy is competitive...
    assert hybrid1[3] < paper[3] * 2.0
    # ...but its SRAM-way leakage loses the overall comparison here
    assert paper[0] < hybrid1[0]
    # more SRAM ways only makes the leakage problem worse
    assert by_label["hybrid (2 SRAM ways/segment)"][2] > hybrid1[2]

"""Figure 2 — user/kernel interference in the shared L2."""

import numpy as np

from conftest import run_once
from repro.experiments import fig2_interference


def test_fig2_interference(benchmark, bench_length):
    result = run_once(benchmark, fig2_interference, bench_length)
    print()
    print(result.render())
    mean_xe = float(np.mean([r.cross_evictions_per_kilo_access for r in result.rows]))
    print(f"mean cross-privilege evictions per 1k L2 accesses (shared): {mean_xe:.1f}")
    assert mean_xe > 0.0
    # partitioning at equal size must not hurt on average
    mean_penalty = float(np.mean([r.interference_penalty for r in result.rows]))
    assert mean_penalty > -0.01

"""Ablation — L2 prefetching on top of the partitioned designs.

The suite's streaming tiers are prefetchable; the interesting question
is whether prefetch pollution undoes the shrunk partition.  Because
prefetches are installed into the missing access's own segment, the
user/kernel isolation guarantee survives.
"""

import numpy as np

from conftest import run_once
from repro.cache.prefetch import make_prefetcher
from repro.core.baseline import BaselineDesign
from repro.core.static_partition import StaticPartitionDesign
from repro.experiments import experiment_stream, format_table
from repro.config import DEFAULT_PLATFORM

APPS = ("video", "music", "browser")  # streaming-heavy apps


def _sweep(length):
    rows = []
    configs = [
        ("baseline", BaselineDesign, None),
        ("baseline+nextline", BaselineDesign, "nextline"),
        ("baseline+stride", BaselineDesign, "stride"),
        ("static+nextline", StaticPartitionDesign, "nextline"),
        ("static", StaticPartitionDesign, None),
    ]
    for label, design_cls, pf_name in configs:
        rates, useful = [], []
        for app in APPS:
            stream = experiment_stream(app, length)
            pf = make_prefetcher(pf_name) if pf_name else None
            r = design_cls().run(stream, DEFAULT_PLATFORM, prefetcher=pf)
            rates.append(r.l2_stats.demand_miss_rate)
            if pf is not None and r.extras.get("prefetch_issued"):
                useful.append(r.extras["prefetch_useful"] / r.extras["prefetch_issued"])
        rows.append((label, float(np.mean(rates)),
                     float(np.mean(useful)) if useful else None))
    return rows


def test_ablation_prefetch(benchmark, bench_length):
    rows = run_once(benchmark, _sweep, bench_length)
    print()
    print(format_table(
        "Ablation: L2 prefetching (3 streaming apps, mean)",
        ["config", "demand miss rate", "prefetch accuracy"],
        [[l, f"{mr:.2%}", "-" if acc is None else f"{acc:.1%}"] for l, mr, acc in rows],
    ))
    by_label = {l: mr for l, mr, _ in rows}
    assert by_label["baseline+nextline"] < by_label["baseline"]
    assert by_label["static+nextline"] < by_label["static"]

"""Figure 4 — static partition design space and the chosen shrink."""

from conftest import run_once
from repro.experiments import fig4_static_space


def test_fig4_static_space(benchmark, bench_length):
    result = run_once(benchmark, fig4_static_space, bench_length)
    print()
    print(result.render())
    # the chosen point must be smaller than the 1 MB baseline
    assert result.chosen.total_bytes < 1024 * 1024
    # and its miss rate within the 10% tolerance band of the baseline
    assert result.chosen.demand_miss_rate <= result.baseline_miss_rate * 1.12

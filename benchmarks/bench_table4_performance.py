"""Table 4 — performance loss of each design vs the baseline."""

from conftest import run_once
from repro.experiments import table4_performance


def test_table4_performance(benchmark, bench_length):
    table = run_once(benchmark, table4_performance, bench_length)
    print()
    print(table.render())
    static_loss = table.mean("static-stt")
    dynamic_loss = table.mean("dynamic-stt")
    print(f"paper: static ~2% loss; measured: {static_loss:.2%}")
    print(f"paper: dynamic ~3% loss; measured: {dynamic_loss:.2%}")
    assert static_loss < 0.06
    assert static_loss <= dynamic_loss < 0.12

"""Engine scaling — sweep throughput at 1 vs N worker processes.

Runs the same (design x app) batch through :func:`repro.engine.run_jobs`
serially and with a process pool, both with the persistent store
disabled so every job pays for real simulation.  On a multi-core box the
pool run should approach ``min(N, cores)`` speedup (each job is an
independent simulation); on a single core it documents the fan-out
overhead instead.  Like :mod:`bench_sim_throughput`, wall-clock time is
the result itself, and ``REPRO_BENCH_LENGTH`` shrinks the traces for a
faster pass.
"""

import os

from conftest import run_once
from repro.engine import JobSpec, run_jobs

DESIGNS = ("baseline", "static-stt")
APPS = ("browser", "game", "social", "music")

#: Pool width for the parallel measurement (env-overridable).
N_WORKERS = int(os.environ.get("REPRO_BENCH_ENGINE_WORKERS",
                               str(min(4, os.cpu_count() or 1))))


def _grid(length):
    # a fraction of the canonical length keeps the serial pass tractable
    per_job = max(60_000, length // 6)
    return [JobSpec(d, a, length=per_job) for d in DESIGNS for a in APPS]


def _run(specs, jobs):
    outcomes = run_jobs(specs, jobs=jobs, store=None)
    assert all(not o.cached for o in outcomes)
    return sum(o.result.l2_stats.accesses for o in outcomes)


def _report(benchmark, specs, label):
    total_accesses = specs[0].length * len(specs)
    rate = total_accesses / benchmark.stats["mean"]
    print(f"\nengine sweep throughput ({label}): "
          f"{rate / 1e6:.2f} M trace accesses/s over {len(specs)} jobs")


def test_engine_scaling_serial(benchmark, bench_length):
    specs = _grid(bench_length)
    accesses = run_once(benchmark, _run, specs, 1)
    assert accesses > 0
    _report(benchmark, specs, "1 worker")


def test_engine_scaling_parallel(benchmark, bench_length):
    specs = _grid(bench_length)
    accesses = run_once(benchmark, _run, specs, N_WORKERS)
    assert accesses > 0
    _report(benchmark, specs, f"{N_WORKERS} workers")

"""Engine scaling — sweep throughput at 1 vs N workers, cold vs warm streams.

Runs the same (design x app) batch through :func:`repro.engine.run_jobs`
serially and with a process pool, both with the persistent store
disabled so every job pays for real simulation.  On a multi-core box the
pool run should approach ``min(N, cores)`` speedup (each job is an
independent simulation); on a single core it documents the fan-out
overhead instead.  Like :mod:`bench_sim_throughput`, wall-clock time is
the result itself, and ``REPRO_BENCH_LENGTH`` shrinks the traces for a
faster pass.

The stream-cache benches measure the front-end contract of
`repro.engine.streamcache` on the canonical (design x app) grid:

* a **cold** sweep (empty caches) must build each unique stream exactly
  once process-wide — asserted via the ``streamcache.build`` obs counter
  in-process and the persisted ``stream_counters.json`` writes across a
  worker pool;
* a **warm-stream, cold-result** sweep (streams on disk, every design
  re-simulated) must run >= 2x faster than the cold sweep, because the
  mmap load replaces the dominant ``trace.generate`` + ``l1.filter``
  front-end cost.
"""

import contextlib
import os
import shutil
import tempfile
import time

import pytest
from conftest import run_once
from repro.core.designs import DESIGN_NAMES
from repro.engine import JobSpec, StreamCache, run_jobs
from repro.engine.executor import _worker_stream
from repro.obs.metrics import REGISTRY
from repro.trace.workloads import APP_NAMES

DESIGNS = ("baseline", "static-stt")
APPS = ("browser", "game", "social", "music")

#: Pool width for the parallel measurement (env-overridable).
N_WORKERS = int(os.environ.get("REPRO_BENCH_ENGINE_WORKERS",
                               str(min(4, os.cpu_count() or 1))))


def _grid(length):
    # a fraction of the canonical length keeps the serial pass tractable
    per_job = max(60_000, length // 6)
    return [JobSpec(d, a, length=per_job) for d in DESIGNS for a in APPS]


def _run(specs, jobs):
    outcomes = run_jobs(specs, jobs=jobs, store=None)
    assert all(not o.cached for o in outcomes)
    return sum(o.result.l2_stats.accesses for o in outcomes)


def _report(benchmark, specs, label):
    total_accesses = specs[0].length * len(specs)
    rate = total_accesses / benchmark.stats["mean"]
    print(f"\nengine sweep throughput ({label}): "
          f"{rate / 1e6:.2f} M trace accesses/s over {len(specs)} jobs")


def test_engine_scaling_serial(benchmark, bench_length):
    specs = _grid(bench_length)
    accesses = run_once(benchmark, _run, specs, 1)
    assert accesses > 0
    _report(benchmark, specs, "1 worker")


def test_engine_scaling_parallel(benchmark, bench_length):
    specs = _grid(bench_length)
    accesses = run_once(benchmark, _run, specs, N_WORKERS)
    assert accesses > 0
    _report(benchmark, specs, f"{N_WORKERS} workers")


# --- stream cache: cold vs warm front end ---------------------------------


@contextlib.contextmanager
def _empty_cache_dir():
    """Point the caches at a fresh directory and drop in-process memos."""
    if os.environ.get("REPRO_CACHE_DISABLE"):
        pytest.skip("stream cache disabled (REPRO_CACHE_DISABLE/REPRO_BENCH_COLD)")
    saved = os.environ.get("REPRO_CACHE_DIR")
    root = tempfile.mkdtemp(prefix="repro-streambench-")
    os.environ["REPRO_CACHE_DIR"] = root
    _worker_stream.cache_clear()
    try:
        yield root
    finally:
        _worker_stream.cache_clear()
        shutil.rmtree(root, ignore_errors=True)
        if saved is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = saved


def _canonical_grid(length):
    per_job = max(60_000, length // 6)
    return [JobSpec(d, a, length=per_job) for d in DESIGN_NAMES for a in APP_NAMES]


def test_stream_cache_cold_vs_warm(benchmark, bench_length):
    """Warm-stream cold-result sweep must beat the cold sweep >= 2x."""
    specs = _canonical_grid(bench_length)
    unique_streams = len({s.stream_key for s in specs})
    with _empty_cache_dir() as root:
        builds_before = REGISTRY.counters.get("streamcache.build", 0)
        t0 = time.perf_counter()
        _run(specs, 1)
        cold_s = time.perf_counter() - t0
        builds = REGISTRY.counters.get("streamcache.build", 0) - builds_before
        assert builds == unique_streams, (
            f"cold sweep built {builds} streams, expected {unique_streams}"
        )
        persisted = StreamCache(root).counters()
        assert persisted["writes"] == unique_streams
        assert StreamCache(root).stats().entries == unique_streams

        # drop the in-process memo so the warm run pays real mmap loads
        _worker_stream.cache_clear()
        hits_before = REGISTRY.counters.get("streamcache.hit", 0)
        run_once(benchmark, _run, specs, 1)
        warm_s = benchmark.stats["mean"]
        builds_warm = REGISTRY.counters.get("streamcache.build", 0) - builds_before
        assert builds_warm == unique_streams, "warm sweep must not rebuild streams"
        assert REGISTRY.counters.get("streamcache.hit", 0) - hits_before == unique_streams

    speedup = cold_s / warm_s if warm_s else float("inf")
    print(f"\nstream cache: cold {cold_s:.2f}s, warm-stream {warm_s:.2f}s "
          f"({speedup:.1f}x, {unique_streams} streams, {len(specs)} jobs)")
    assert cold_s >= 2.0 * warm_s, (
        f"warm-stream sweep only {speedup:.2f}x faster than cold (need >= 2x)"
    )


def test_stream_built_once_across_pool(benchmark, bench_length):
    """A parallel cold grid builds each stream exactly once process-wide."""
    per_job = max(40_000, bench_length // 12)
    specs = [JobSpec(d, a, length=per_job) for d in DESIGN_NAMES for a in APP_NAMES]
    unique_streams = len({s.stream_key for s in specs})
    with _empty_cache_dir() as root:
        run_once(benchmark, _run, specs, N_WORKERS)
        persisted = StreamCache(root).counters()
        stats = StreamCache(root).stats()
    # the prebuild wave publishes one bundle per unique stream; design
    # jobs then map them (every miss became exactly one build + write).
    # Cross-worker mmap hits depend on how affinity distributes streams,
    # so they are reported, not asserted.
    assert stats.entries == unique_streams
    assert persisted["writes"] == unique_streams, persisted
    assert persisted["misses"] == unique_streams, persisted
    print(f"\nstream cache parallel: {unique_streams} streams built once across "
          f"{N_WORKERS} workers ({persisted['hits']} mmap hits)")

"""Figure 6 — L2 energy breakdown per design."""

from conftest import run_once
from repro.experiments import fig6_energy_breakdown


def test_fig6_energy_breakdown(benchmark, bench_length):
    result = run_once(benchmark, fig6_energy_breakdown, bench_length)
    print()
    print(result.render())
    rows = {r.design: r for r in result.rows}
    # the baseline is leakage-dominated; STT designs are not
    base = rows["baseline"]
    assert base.leakage_uj > base.read_uj + base.write_uj
    stt = rows["static-stt"]
    assert stt.leakage_uj < base.leakage_uj * 0.35

"""Table 3 — the interactive smartphone workload suite."""

from conftest import run_once
from repro.experiments import table3_workloads


def test_table3_workloads(benchmark):
    table = run_once(benchmark, table3_workloads)
    print()
    print(table.render())
    assert len(table.rows) == 8

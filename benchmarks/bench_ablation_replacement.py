"""Ablation — L2 replacement policy under user/kernel interference.

The paper's platform uses LRU; this ablation checks how much of the
interference story depends on that choice by re-running the shared
baseline under every implemented policy.
"""

import numpy as np

from conftest import run_once
from repro.cache.replacement import POLICY_NAMES
from repro.core.baseline import BaselineDesign
from repro.experiments import format_table, run_design_on

APPS = ("browser", "social", "game")


def _sweep(length):
    rows = []
    for policy in POLICY_NAMES:
        rates, xevicts = [], []
        for app in APPS:
            r = run_design_on(BaselineDesign(policy=policy, name=f"base-{policy}"),
                              app, length=length)
            rates.append(r.l2_stats.demand_miss_rate)
            xevicts.append(r.l2_stats.cross_privilege_evictions)
        rows.append((policy, float(np.mean(rates)), float(np.mean(xevicts))))
    return rows


def test_ablation_replacement_policy(benchmark, bench_length):
    rows = run_once(benchmark, _sweep, bench_length)
    print()
    print(format_table(
        "Ablation: shared-L2 replacement policy (3-app mean)",
        ["policy", "demand miss rate", "cross evictions"],
        [[p, f"{mr:.2%}", f"{xe:.0f}"] for p, mr, xe in rows],
    ))
    rates = {p: mr for p, mr, _ in rows}
    # true LRU should be at least as good as random on these workloads
    assert rates["lru"] <= rates["random"] + 0.01
    # interference (cross evictions) appears under every policy
    assert all(xe > 0 for _, _, xe in rows)

"""Benchmark-session configuration.

Each bench regenerates one table or figure of the paper at full
experiment scale and prints the artifact.  Two cache layers make that
cheap: the runner-level memos in :mod:`repro.experiments.runner` share
the (design x app) grid within one pytest session, and the engine's
persistent store (:mod:`repro.engine.store`) shares it *across*
sessions — a second bench run on the same machine replays the grid from
disk instead of re-simulating it.

Set ``REPRO_BENCH_LENGTH`` to shrink the per-app trace length for a
faster (less converged) pass.  Set ``REPRO_BENCH_COLD=1`` to disable
the persistent store for the session, so wall-clock numbers measure
real simulation instead of store reads.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.runner import EXPERIMENT_TRACE_LENGTH


def pytest_configure(config):
    """Honour ``REPRO_BENCH_COLD`` before any bench touches the store."""
    if os.environ.get("REPRO_BENCH_COLD"):
        os.environ["REPRO_CACHE_DISABLE"] = "1"


@pytest.fixture(scope="session")
def bench_length() -> int:
    """Trace length used by every bench (env-overridable)."""
    return int(os.environ.get("REPRO_BENCH_LENGTH", EXPERIMENT_TRACE_LENGTH))


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer.

    The experiments are deterministic end-to-end, so repeated rounds
    would only re-measure the memoisation cache.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

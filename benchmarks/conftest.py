"""Benchmark-session configuration.

Each bench regenerates one table or figure of the paper at full
experiment scale and prints the artifact.  The runner-level caches in
:mod:`repro.experiments.runner` are shared across the whole pytest
session, so the (design x app) grid is simulated exactly once no matter
how many benches read from it.

Set ``REPRO_BENCH_LENGTH`` to shrink the per-app trace length for a
faster (less converged) pass.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.runner import EXPERIMENT_TRACE_LENGTH


@pytest.fixture(scope="session")
def bench_length() -> int:
    """Trace length used by every bench (env-overridable)."""
    return int(os.environ.get("REPRO_BENCH_LENGTH", EXPERIMENT_TRACE_LENGTH))


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer.

    The experiments are deterministic end-to-end, so repeated rounds
    would only re-measure the memoisation cache.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

"""Figure 3 — shared-L2 miss rate vs capacity."""

from conftest import run_once
from repro.experiments import fig3_size_sweep


def test_fig3_size_sweep(benchmark, bench_length):
    result = run_once(benchmark, fig3_size_sweep, bench_length)
    print()
    print(result.render())
    rates = [mr for _, mr in result.points]
    assert all(a >= b - 1e-9 for a, b in zip(rates, rates[1:])), "miss rate must not rise with size"

"""Supporting — per-segment miss/energy breakdown of every design."""

from conftest import run_once
from repro.experiments import segment_breakdown


def test_segment_breakdown(benchmark, bench_length):
    result = run_once(benchmark, segment_breakdown, bench_length)
    print()
    print(result.render())
    by_design = {r.design: r for r in result.rows}
    static = by_design["static-stt"]
    # the kernel segment is a quarter of the capacity but serves ~40% of
    # the traffic: its energy share must sit well above its size share
    assert static.kernel_energy_share > 0.25
    # and the partition keeps both sides' miss rates in the same regime
    assert abs(static.user_miss_rate - by_design["baseline"].user_miss_rate) < 0.05

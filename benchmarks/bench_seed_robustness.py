"""Robustness — the headline across independent trace seeds."""

from conftest import run_once
from repro.experiments import seed_robustness


def test_seed_robustness(benchmark, bench_length):
    # three full-suite grids x three seeds is the most expensive bench;
    # restrict to a 4-app subset at full length
    result = run_once(
        benchmark, seed_robustness, bench_length, (0, 1, 2),
        ("browser", "social", "game", "email"),
    )
    print()
    print(result.render())
    # savings must be stable across seeds (not a seed-0 artifact)
    assert result.static_saving_std() < 0.03
    assert min(result.static_savings) > 0.65
    assert min(result.dynamic_savings) > 0.75

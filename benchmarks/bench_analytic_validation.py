"""Validation — analytic stack-distance prediction vs the simulator.

The analytic model predicts the full miss-rate-vs-capacity curve from
one pass over the L2 stream (Mattson's stack algorithm).  This bench
compares it against the simulated Figure 3 sweep: the fully associative
prediction should track the 16-way simulation closely and bound it from
below (associativity conflicts only add misses).
"""

import numpy as np

from conftest import run_once
from repro.analytic import profile_blocks
from repro.config import CacheGeometry
from repro.core.baseline import BaselineDesign
from repro.experiments import experiment_stream, format_table, run_design_on

APPS = ("browser", "game")
SIZES_KB = (128, 256, 512, 1024)


def _sweep(length):
    rows = []
    profiles = {
        app: profile_blocks(
            (experiment_stream(app, length).addrs // np.uint64(64)).astype(np.int64)
        )
        for app in APPS
    }
    for size_kb in SIZES_KB:
        capacity_blocks = size_kb * 1024 // 64
        predicted = float(np.mean([profiles[a].miss_rate(capacity_blocks) for a in APPS]))
        geometry = CacheGeometry(size_kb * 1024, max(8, size_kb // 64))
        simulated = float(np.mean([
            run_design_on(BaselineDesign(geometry=geometry), app, length=length)
            .l2_stats.miss_rate
            for app in APPS
        ]))
        rows.append((size_kb, predicted, simulated))
    return rows


def test_analytic_vs_simulated(benchmark, bench_length):
    rows = run_once(benchmark, _sweep, bench_length)
    print()
    print(format_table(
        "Validation: analytic (fully assoc.) vs simulated miss rate (2-app mean)",
        ["size", "analytic", "simulated", "gap"],
        [[f"{kb} KB", f"{p:.2%}", f"{s:.2%}", f"{s - p:+.2%}"] for kb, p, s in rows],
    ))
    for _, predicted, simulated in rows:
        # FA-LRU is a lower bound (within noise) and should track closely
        assert simulated >= predicted - 0.02
        assert abs(simulated - predicted) < 0.06

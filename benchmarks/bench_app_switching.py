"""Extension — app switching on one core (scheduler timeslicing).

Phones switch foreground apps constantly.  Each switch turns the user
working set over (different ASID, cold blocks) while the kernel working
set is the *same* for every app.  Comparing the switched mix against the
single-app runs shows the asymmetry directly: the (per-ASID) user side
gains nothing — it only loses capacity to its rival — while the kernel
side's miss rate drops sharply, because both apps hammer the *same*
kernel blocks and keep them warm for each other.  Kernel L2 content is
the only thing an app switch cannot destroy — another reason it
deserves its own protected segment.
"""

import numpy as np

from conftest import run_once
from repro.cache.hierarchy import l1_filter
from repro.config import DEFAULT_PLATFORM
from repro.core import BaselineDesign
from repro.experiments import format_table
from repro.trace.transform import remap_user_space, timeslice
from repro.trace.workloads import suite_trace
from repro.types import Privilege

APPS = ("browser", "game")
QUANTUM = 200_000  # ~0.2 ms at 1 GHz — an aggressive foreground switch rate


def _measure(trace):
    stream = l1_filter(trace, DEFAULT_PLATFORM)
    stats = BaselineDesign().run(stream, DEFAULT_PLATFORM).l2_stats
    return (
        stats.miss_rate_of(Privilege.USER),
        stats.miss_rate_of(Privilege.KERNEL),
    )


def _sweep(length):
    per_app = max(120_000, length // 4)
    rows = []
    singles_user, singles_kernel = [], []
    traces = []
    for i, app in enumerate(APPS):
        trace = remap_user_space(suite_trace(app, per_app, seed=i), i)
        traces.append(trace)
        user_mr, kernel_mr = _measure(trace)
        singles_user.append(user_mr)
        singles_kernel.append(kernel_mr)
        rows.append((f"{app} alone", user_mr, kernel_mr))
    switched = timeslice(traces, QUANTUM)
    mix_user, mix_kernel = _measure(switched)
    rows.append((f"switched mix (q={QUANTUM // 1000}k)", mix_user, mix_kernel))
    rows.append(("single-app mean", float(np.mean(singles_user)), float(np.mean(singles_kernel))))
    return rows


def test_app_switching(benchmark, bench_length):
    rows = run_once(benchmark, _sweep, bench_length)
    print()
    print(format_table(
        "Extension: foreground app switching (shared 1 MB L2)",
        ["workload", "user miss rate", "kernel miss rate"],
        [[label, f"{u:.2%}", f"{k:.2%}"] for label, u, k in rows],
    ))
    by_label = {label: (u, k) for label, u, k in rows}
    mix = next(v for l, v in by_label.items() if l.startswith("switched"))
    mean = by_label["single-app mean"]
    user_penalty = mix[0] - mean[0]
    kernel_penalty = mix[1] - mean[1]
    print(f"switching penalty: user {user_penalty:+.2%}, kernel {kernel_penalty:+.2%}")
    # the user side never benefits from a rival app...
    assert user_penalty > -0.01
    # ...while the shared kernel content is kept warm by both apps
    assert kernel_penalty < -0.02
    assert user_penalty > kernel_penalty + 0.03

"""Ablation — what non-volatility is worth to the dynamic controller.

The dynamic design gates ways during idle.  On STT-RAM the gated ways
*keep their contents* (non-volatile cells); on SRAM the same controller
loses everything it gates.  Running the identical controller on both
technologies isolates the value of retention-through-gating.
"""

import numpy as np

from conftest import run_once
from repro.core.baseline import BaselineDesign
from repro.core.dynamic_partition import DynamicPartitionDesign
from repro.energy.technology import sram
from repro.experiments import format_table, run_design_on

APPS = ("browser", "social", "game")


def _sweep(length):
    designs = [
        ("dynamic on STT (retains)", DynamicPartitionDesign()),
        ("dynamic on SRAM (loses)", DynamicPartitionDesign(
            user_tech=sram(), kernel_tech=sram(), name="dynamic-sram")),
    ]
    rows = []
    for label, design in designs:
        energy, loss, mr = [], [], []
        for app in APPS:
            base = run_design_on(BaselineDesign(), app, length=length)
            r = run_design_on(design, app, length=length)
            energy.append(r.l2_energy.total_j / base.l2_energy.total_j)
            loss.append(r.timing.perf_loss_vs(base.timing))
            mr.append(r.l2_stats.demand_miss_rate)
        rows.append((label, float(np.mean(energy)), float(np.mean(loss)),
                     float(np.mean(mr))))
    return rows


def test_ablation_gating_volatility(benchmark, bench_length):
    rows = run_once(benchmark, _sweep, bench_length)
    print()
    print(format_table(
        "Ablation: gated-way volatility under the dynamic controller (3-app mean)",
        ["configuration", "norm. energy", "perf loss", "miss rate"],
        [[l, f"{e:.3f}", f"{p:+.2%}", f"{m:.2%}"] for l, e, p, m in rows],
    ))
    by_label = {l: (e, p, m) for l, e, p, m in rows}
    stt = by_label["dynamic on STT (retains)"]
    sram_row = by_label["dynamic on SRAM (loses)"]
    # losing the gated contents costs misses and performance
    assert sram_row[2] > stt[2]
    assert sram_row[1] > stt[1]

"""Figure 5 — inter-access intervals of the separated segments."""

import numpy as np

from conftest import run_once
from repro.experiments import fig5_intervals


def test_fig5_intervals(benchmark, bench_length):
    result = run_once(benchmark, fig5_intervals, bench_length)
    print()
    print(result.render())
    user_p90 = np.mean([r.p90_ms for r in result.rows if r.privilege == "user"])
    kernel_p90 = np.mean([r.p90_ms for r in result.rows if r.privilege == "kernel"])
    print(f"suite mean p90: user {user_p90:.2f} ms vs kernel {kernel_p90:.2f} ms")
    # the paper's asymmetry: user dead times well beyond kernel's
    assert user_p90 > kernel_p90 * 1.5

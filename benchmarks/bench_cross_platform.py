"""Robustness — the headline on little/default/big platform presets.

Do the conclusions survive a different SoC corner?  The little core has
half the L2 (so the static segments are proportionally resized); the big
core has twice the L2 and a faster clock.  The energy ordering and the
bulk of the saving should hold everywhere.
"""

import numpy as np

from conftest import run_once
from repro.cache.hierarchy import l1_filter
from repro.config import platform_preset
from repro.core import BaselineDesign, multi_retention_design
from repro.experiments import format_table
from repro.trace.workloads import suite_trace

APPS = ("browser", "game")


def _sweep(length):
    rows = []
    for preset in ("little", "default", "big"):
        platform = platform_preset(preset)
        # resize the partition proportionally to the platform's L2
        scale = platform.l2.associativity / 16
        user_ways = max(2, round(8 * scale))
        kernel_ways = max(1, round(4 * scale))
        energy, loss = [], []
        for app in APPS:
            stream = l1_filter(suite_trace(app, max(120_000, length // 4)), platform)
            base = BaselineDesign().run(stream, platform)
            stt = multi_retention_design(user_ways=user_ways, kernel_ways=kernel_ways)
            r = stt.run(stream, platform)
            energy.append(r.l2_energy.total_j / base.l2_energy.total_j)
            loss.append(r.timing.perf_loss_vs(base.timing))
        rows.append((preset, f"{user_ways}+{kernel_ways}",
                     float(np.mean(energy)), float(np.mean(loss))))
    return rows


def test_cross_platform(benchmark, bench_length):
    rows = run_once(benchmark, _sweep, bench_length)
    print()
    print(format_table(
        "Robustness: static-stt headline across platform presets (2-app mean)",
        ["platform", "partition", "norm. energy", "perf loss"],
        [[p, w, f"{e:.3f}", f"{l:+.2%}"] for p, w, e, l in rows],
    ))
    # the static technique must save the majority of L2 energy on every
    # preset, at single-digit performance cost
    for _, _, energy, loss in rows:
        assert energy < 0.45
        assert loss < 0.10

"""Table 1 — simulated platform configuration."""

from conftest import run_once
from repro.experiments import table1_configuration


def test_table1_configuration(benchmark):
    table = run_once(benchmark, table1_configuration)
    print()
    print(table.render())
    assert any("L2 cache" in row[0] for row in table.rows)

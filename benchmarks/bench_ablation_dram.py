"""Ablation — flat DRAM latency vs the bank/row-buffer model.

The canonical results charge a flat 140 cycles per L2 miss.  This
ablation replays the headline designs against the banked LPDDR model to
check the conclusions are not an artifact of that simplification.
"""

import numpy as np

from conftest import run_once
from repro.core.baseline import BaselineDesign
from repro.core.multi_retention import multi_retention_design
from repro.dram import DRAMModel
from repro.experiments import experiment_stream, format_table
from repro.config import DEFAULT_PLATFORM

APPS = ("browser", "social", "game")


def _sweep(length):
    rows = []
    for label, dram_factory in (("flat-140", lambda: None), ("banked", DRAMModel)):
        base_loss, hit_rates = [], []
        for app in APPS:
            stream = experiment_stream(app, length)
            dram_b = dram_factory()
            base = BaselineDesign().run(stream, DEFAULT_PLATFORM, dram_model=dram_b)
            dram_s = dram_factory()
            stt = multi_retention_design().run(stream, DEFAULT_PLATFORM, dram_model=dram_s)
            base_loss.append(stt.timing.perf_loss_vs(base.timing))
            if dram_b is not None:
                hit_rates.append(dram_b.stats.row_hit_rate)
        rows.append((
            label,
            float(np.mean(base_loss)),
            float(np.mean(hit_rates)) if hit_rates else None,
        ))
    return rows


def test_ablation_dram_model(benchmark, bench_length):
    rows = run_once(benchmark, _sweep, bench_length)
    print()
    print(format_table(
        "Ablation: DRAM model vs static-stt performance loss (3-app mean)",
        ["DRAM model", "static-stt perf loss", "row-hit rate"],
        [[l, f"{p:+.2%}", "-" if h is None else f"{h:.1%}"] for l, p, h in rows],
    ))
    losses = {l: p for l, p, _ in rows}
    # conclusion robust: perf loss stays in the same few-percent regime
    assert abs(losses["banked"] - losses["flat-140"]) < 0.05

"""Ablation — expiry handling: invalidate-on-decay vs refresh-rewrite.

The canonical designs let decayed blocks die (invalidate); the
alternative refreshes live blocks before expiry.  Refresh removes the
expiry misses but pays a stream of extra write pulses.
"""

import numpy as np

from conftest import run_once
from repro.core.baseline import BaselineDesign
from repro.core.multi_retention import multi_retention_design
from repro.experiments import format_table, run_design_on

APPS = ("browser", "social", "game")


def _sweep(length):
    rows = []
    for mode in ("invalidate", "rewrite"):
        design = multi_retention_design(refresh_mode=mode, name=f"static-stt-{mode}")
        energy, loss, refresh, expiry = [], [], [], []
        for app in APPS:
            base = run_design_on(BaselineDesign(), app, length=length)
            r = run_design_on(design, app, length=length)
            energy.append(r.l2_energy.total_j / base.l2_energy.total_j)
            loss.append(r.timing.perf_loss_vs(base.timing))
            refresh.append(r.l2_stats.refresh_writes)
            expiry.append(r.l2_stats.expiry_invalidations)
        rows.append((mode, float(np.mean(energy)), float(np.mean(loss)),
                     float(np.mean(refresh)), float(np.mean(expiry))))
    return rows


def test_ablation_refresh_policy(benchmark, bench_length):
    rows = run_once(benchmark, _sweep, bench_length)
    print()
    print(format_table(
        "Ablation: STT-RAM decay handling (3-app mean)",
        ["mode", "norm. energy", "perf loss", "refresh writes", "expiry misses"],
        [[m, f"{e:.3f}", f"{p:+.2%}", f"{r:.0f}", f"{x:.0f}"] for m, e, p, r, x in rows],
    ))
    by_mode = {m: (e, p, r, x) for m, e, p, r, x in rows}
    assert by_mode["rewrite"][3] == 0  # refresh eliminates expiry misses
    assert by_mode["invalidate"][2] == 0  # and invalidate never refreshes

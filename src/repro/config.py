"""Configuration dataclasses for the simulated platform.

Every knob of the model platform lives here so that experiments are fully
described by plain data.  The default values model the kind of mobile SoC
the paper evaluates: a dual-issue in-order ARM application core with split
32 KB L1 caches and a shared 1 MB 16-way L2, clocked at 1 GHz.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.types import CACHE_BLOCK_SIZE

__all__ = [
    "CacheGeometry",
    "LatencyConfig",
    "PlatformConfig",
    "DEFAULT_PLATFORM",
    "platform_preset",
]


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one cache level.

    ``size_bytes`` must equal ``num_sets * associativity * block_size``
    with power-of-two sets and block size; :meth:`validate` checks this.
    """

    size_bytes: int
    associativity: int
    block_size: int = CACHE_BLOCK_SIZE

    def __post_init__(self) -> None:
        self.validate()

    @property
    def num_sets(self) -> int:
        """Number of sets implied by size, associativity and block size."""
        return self.size_bytes // (self.associativity * self.block_size)

    @property
    def num_blocks(self) -> int:
        """Total number of block frames in the cache."""
        return self.size_bytes // self.block_size

    def validate(self) -> None:
        """Raise :class:`ValueError` for a geometry the model cannot index."""
        if self.size_bytes <= 0 or self.associativity <= 0 or self.block_size <= 0:
            raise ValueError(f"cache geometry fields must be positive: {self}")
        if self.block_size & (self.block_size - 1):
            raise ValueError(f"block_size must be a power of two, got {self.block_size}")
        sets = self.size_bytes / (self.associativity * self.block_size)
        if sets != int(sets) or int(sets) < 1:
            raise ValueError(
                f"size {self.size_bytes} not divisible into {self.associativity}-way "
                f"sets of {self.block_size}-byte blocks"
            )
        n = int(sets)
        if n & (n - 1):
            raise ValueError(f"number of sets must be a power of two, got {n}")

    def with_ways(self, associativity: int) -> "CacheGeometry":
        """Same set count and block size, different way count.

        This is how partitioned segments are derived from a parent
        geometry: a segment of *k* ways of a 1024-set cache keeps the
        1024 sets and has ``k * num_sets * block_size`` bytes.
        """
        if associativity <= 0:
            raise ValueError(f"associativity must be positive, got {associativity}")
        return CacheGeometry(
            size_bytes=self.num_sets * associativity * self.block_size,
            associativity=associativity,
            block_size=self.block_size,
        )


@dataclass(frozen=True)
class LatencyConfig:
    """Access latencies in core cycles for the timing model.

    ``l2_extra_write`` models the longer write pulse of STT-RAM; it is
    zero for SRAM and filled in per retention class by the energy layer.
    """

    l1_hit: int = 2
    l2_hit: int = 20
    l2_extra_write: int = 0
    dram: int = 140

    def __post_init__(self) -> None:
        if min(self.l1_hit, self.l2_hit, self.dram) <= 0 or self.l2_extra_write < 0:
            raise ValueError(f"latencies must be positive (extra write >= 0): {self}")


@dataclass(frozen=True)
class PlatformConfig:
    """Complete description of the simulated mobile platform."""

    l1i: CacheGeometry = field(default_factory=lambda: CacheGeometry(32 * 1024, 4))
    l1d: CacheGeometry = field(default_factory=lambda: CacheGeometry(32 * 1024, 4))
    l2: CacheGeometry = field(default_factory=lambda: CacheGeometry(1024 * 1024, 16))
    latency: LatencyConfig = field(default_factory=LatencyConfig)
    clock_hz: float = 1.0e9
    base_cpi: float = 1.2

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ValueError(f"clock_hz must be positive, got {self.clock_hz}")
        if self.base_cpi <= 0:
            raise ValueError(f"base_cpi must be positive, got {self.base_cpi}")
        if not (self.l1i.block_size == self.l1d.block_size == self.l2.block_size):
            raise ValueError("all cache levels must share one block size")

    def with_l2(self, l2: CacheGeometry) -> "PlatformConfig":
        """Copy of this platform with a different L2 geometry."""
        return replace(self, l2=l2)

    def seconds(self, cycles: float) -> float:
        """Convert a cycle count to wall-clock seconds at ``clock_hz``."""
        return cycles / self.clock_hz


#: The default platform used by every experiment unless overridden.
DEFAULT_PLATFORM = PlatformConfig()


def platform_preset(name: str) -> PlatformConfig:
    """Named platform configurations for cross-platform robustness checks.

    * ``"default"`` — the paper-era mobile SoC (1 GHz, 1 MB/16-way L2).
    * ``"little"`` — an efficiency core: 800 MHz, 16 KB L1s, 512 KB/8-way
      L2, slower DRAM path.
    * ``"big"`` — a performance core: 2 GHz, 64 KB L1s, 2 MB/16-way L2,
      lower base CPI.
    """
    if name == "default":
        return DEFAULT_PLATFORM
    if name == "little":
        return PlatformConfig(
            l1i=CacheGeometry(16 * 1024, 4),
            l1d=CacheGeometry(16 * 1024, 4),
            l2=CacheGeometry(512 * 1024, 8),
            latency=LatencyConfig(l1_hit=2, l2_hit=16, dram=170),
            clock_hz=0.8e9,
            base_cpi=1.4,
        )
    if name == "big":
        return PlatformConfig(
            l1i=CacheGeometry(64 * 1024, 4),
            l1d=CacheGeometry(64 * 1024, 4),
            l2=CacheGeometry(2 * 1024 * 1024, 16),
            latency=LatencyConfig(l1_hit=3, l2_hit=24, dram=220),
            clock_hz=2.0e9,
            base_cpi=0.9,
        )
    raise ValueError(f"unknown platform preset {name!r}; choose default/little/big")

"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — available apps, designs, policies and retention classes.
* ``run`` — one design on one app, with optional prefetcher/DRAM model.
* ``figure N`` / ``table N`` — regenerate one artifact of the paper.
* ``trace`` — generate a workload trace and save it as ``.npz``.
* ``search`` — the static-partition design-space search.
* ``validate`` — check the paper's headline claims end to end (exits
  non-zero if a claim band fails, for CI use).
* ``sweep`` — run a design x app x seed grid through the execution
  engine (``--jobs N`` for multiprocess fan-out, store-backed).
* ``cache`` — inspect (``stats``, ``--json`` for machines) or empty
  (``clear``, with ``--results`` / ``--streams`` / ``--all`` selectors)
  the persistent result store and L2-stream cache; ``stats`` includes
  each cache's lifetime hit-rate and corruption counters.
* ``obs`` — observability tooling: ``obs summary RUN.jsonl`` renders a
  where-did-the-time-go table from a structured run log.

``run``, ``sweep`` and ``validate`` accept ``--trace PATH`` to write a
JSONL run log of the execution (spans, events, metrics — see
``docs/observability.md``); progress lines always go to stderr so piped
stdout stays machine-readable.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro import obs
from repro.cache.hierarchy import l1_filter
from repro.cache.prefetch import make_prefetcher
from repro.cache.replacement import POLICY_NAMES
from repro.config import DEFAULT_PLATFORM, platform_preset
from repro.core.designs import DESIGN_NAMES, make_design
from repro.engine import default_store, default_stream_cache, run_sweep
from repro.engine.store import ResultStore
from repro.engine.streamcache import StreamCache
from repro.core.search import find_static_partition
from repro.dram import DRAMModel
from repro.energy.technology import RETENTION_CLASSES
from repro.experiments import (
    EXPERIMENT_TRACE_LENGTH,
    fig1_kernel_share,
    fig2_interference,
    fig3_size_sweep,
    fig4_static_space,
    fig5_intervals,
    fig6_energy_breakdown,
    fig7_dynamic_timeline,
    fig8_energy_summary,
    format_percent,
    format_table,
    table1_configuration,
    table2_technology,
    table3_workloads,
    table4_performance,
)
from repro.trace.generator import generate_trace
from repro.trace.io import save_trace
from repro.trace.workloads import APP_NAMES, app_profile, suite_trace

__all__ = ["main", "build_parser"]

_FIGURES = {
    1: fig1_kernel_share,
    2: fig2_interference,
    3: fig3_size_sweep,
    4: fig4_static_space,
    5: fig5_intervals,
    6: fig6_energy_breakdown,
    7: lambda length: fig7_dynamic_timeline("browser", length),
    8: fig8_energy_summary,
}

_TABLES = {
    1: lambda length: table1_configuration(),
    2: lambda length: table2_technology(),
    3: lambda length: table3_workloads(),
    4: table4_performance,
}


def build_parser() -> argparse.ArgumentParser:
    """Assemble the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Energy-efficient user/kernel-partitioned L2 cache reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show available apps, designs and policies")

    run_p = sub.add_parser("run", help="run one design on one app")
    run_p.add_argument("--app", choices=APP_NAMES, default="browser")
    run_p.add_argument("--design", choices=DESIGN_NAMES, default="static-stt")
    run_p.add_argument("--length", type=int, default=240_000)
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--prefetcher", choices=("nextline", "stride"))
    run_p.add_argument("--banked-dram", action="store_true",
                       help="use the bank/row-buffer DRAM model")
    run_p.add_argument("--trace", metavar="PATH",
                       help="write a JSONL run log of the execution to PATH")

    fig_p = sub.add_parser("figure", help="regenerate one figure")
    fig_p.add_argument("number", type=int, choices=sorted(_FIGURES))
    fig_p.add_argument("--length", type=int, default=EXPERIMENT_TRACE_LENGTH)

    tab_p = sub.add_parser("table", help="regenerate one table")
    tab_p.add_argument("number", type=int, choices=sorted(_TABLES))
    tab_p.add_argument("--length", type=int, default=EXPERIMENT_TRACE_LENGTH)

    trace_p = sub.add_parser("trace", help="generate a trace and save as .npz")
    trace_p.add_argument("--app", choices=APP_NAMES, required=True)
    trace_p.add_argument("--out", required=True)
    trace_p.add_argument("--length", type=int, default=240_000)
    trace_p.add_argument("--seed", type=int, default=0)

    search_p = sub.add_parser("search", help="static-partition design-space search")
    search_p.add_argument("--length", type=int, default=240_000)
    search_p.add_argument("--tolerance", type=float, default=0.10)
    search_p.add_argument("--apps", nargs="+", choices=APP_NAMES,
                          default=["browser", "social", "game"])

    val_p = sub.add_parser("validate", help="check the paper's headline claims")
    val_p.add_argument("--length", type=int, default=EXPERIMENT_TRACE_LENGTH)
    val_p.add_argument("--trace", metavar="PATH",
                       help="write a JSONL run log of the execution to PATH")

    exp_p = sub.add_parser("export", help="dump the (design x app) grid as CSV")
    exp_p.add_argument("--out", required=True)
    exp_p.add_argument("--length", type=int, default=EXPERIMENT_TRACE_LENGTH)

    sweep_p = sub.add_parser("sweep", help="run a design x app x seed grid via the engine")
    sweep_p.add_argument("--designs", nargs="+", choices=DESIGN_NAMES,
                         default=list(DESIGN_NAMES))
    sweep_p.add_argument("--apps", nargs="+", choices=APP_NAMES, default=list(APP_NAMES))
    sweep_p.add_argument("--seeds", nargs="+", type=int, default=[0])
    sweep_p.add_argument("--length", type=int, default=EXPERIMENT_TRACE_LENGTH)
    sweep_p.add_argument("--platform", choices=("default", "little", "big"),
                         default="default")
    sweep_p.add_argument("--jobs", type=int, default=1,
                         help="worker processes (results are identical for any value)")
    sweep_p.add_argument("--no-progress", action="store_true",
                         help="suppress per-job progress lines (written to stderr)")
    sweep_p.add_argument("--trace", metavar="PATH",
                         help="write a JSONL run log of the sweep to PATH")

    cache_p = sub.add_parser("cache", help="manage the persistent result and stream caches")
    cache_p.add_argument("action", choices=("stats", "clear"))
    cache_p.add_argument("--json", action="store_true",
                         help="stats: print machine-readable JSON instead of tables")
    cache_scope = cache_p.add_mutually_exclusive_group()
    cache_scope.add_argument("--results", action="store_true",
                             help="clear: only the result store")
    cache_scope.add_argument("--streams", action="store_true",
                             help="clear: only the stream cache")
    cache_scope.add_argument("--all", action="store_true",
                             help="clear: results and streams (the default)")

    obs_p = sub.add_parser("obs", help="observability tooling for run logs")
    obs_p.add_argument("action", choices=("summary",))
    obs_p.add_argument("log", metavar="RUN_LOG",
                       help="JSONL run log written by --trace or REPRO_TRACE")

    return parser


def _cmd_list(out) -> int:
    print(format_table("apps", ["name", "description"],
                       [[a, app_profile(a).description] for a in APP_NAMES],
                       align_left_cols=2), file=out)
    print(file=out)
    print(format_table("designs", ["name"], [[d] for d in DESIGN_NAMES]), file=out)
    print(file=out)
    print(format_table("replacement policies", ["name"], [[p] for p in POLICY_NAMES]), file=out)
    print(file=out)
    print(format_table("retention classes", ["name", "window"],
                       [[n, "infinite" if c.retention_s is None else f"{c.retention_s * 1e3:.0f} ms"]
                        for n, c in RETENTION_CLASSES.items()], align_left_cols=2), file=out)
    return 0


def _cmd_run(args, out) -> int:
    trace = suite_trace(args.app, args.length, args.seed)
    stream = l1_filter(trace, DEFAULT_PLATFORM)
    design = make_design(args.design)
    kwargs = {}
    if args.prefetcher:
        if args.design == "dynamic-stt":
            print("error: prefetcher is not supported by the dynamic design", file=sys.stderr)
            return 2
        kwargs["prefetcher"] = make_prefetcher(args.prefetcher)
    if args.banked_dram:
        if args.design == "dynamic-stt":
            print("error: banked DRAM is not supported by the dynamic design", file=sys.stderr)
            return 2
        kwargs["dram_model"] = DRAMModel()
    result = design.run(stream, DEFAULT_PLATFORM, **kwargs)
    stats = result.l2_stats
    energy = result.l2_energy
    rows = [
        ["L2 accesses", f"{stats.accesses:,}"],
        ["demand miss rate", format_percent(stats.demand_miss_rate, 2)],
        ["cross-priv evictions", f"{stats.cross_privilege_evictions:,}"],
        ["expiry misses", f"{stats.expiry_invalidations:,}"],
        ["L2 energy", f"{energy.total_j * 1e6:.1f} uJ"],
        ["  leakage", f"{energy.leakage_j * 1e6:.1f} uJ"],
        ["  dynamic", f"{energy.dynamic_j * 1e6:.1f} uJ"],
        ["busy cycles", f"{result.timing.busy_cycles:,.0f}"],
        ["IPC", f"{result.timing.ipc:.3f}"],
    ]
    print(format_table(f"{args.design} on {args.app} ({args.length:,} accesses)",
                       ["metric", "value"], rows, align_left_cols=2), file=out)
    return 0


def _cmd_validate(length, out) -> int:
    checks = []
    share = fig1_kernel_share(length).mean
    checks.append(("kernel share > 40%", share > 0.40, f"{share:.1%}"))
    summary = fig8_energy_summary(length)
    s_saving = summary.saving("static-stt")
    d_saving = summary.saving("dynamic-stt")
    checks.append(("static saving in [65%, 85%]", 0.65 < s_saving < 0.85, f"{s_saving:.1%}"))
    checks.append(("dynamic saving in [75%, 92%]", 0.75 < d_saving < 0.92, f"{d_saving:.1%}"))
    checks.append(("dynamic beats static", d_saving > s_saving, ""))
    perf = table4_performance(length)
    s_loss = perf.mean("static-stt")
    d_loss = perf.mean("dynamic-stt")
    checks.append(("static perf loss < 6%", s_loss < 0.06, f"{s_loss:.2%}"))
    checks.append(("dynamic perf loss < 12%", d_loss < 0.12, f"{d_loss:.2%}"))
    rows = [[name, "PASS" if ok else "FAIL", measured] for name, ok, measured in checks]
    print(format_table("headline claim validation", ["claim", "status", "measured"],
                       rows, align_left_cols=1), file=out)
    return 0 if all(ok for _, ok, _ in checks) else 1


def _cmd_sweep(args, out) -> int:
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    progress = None
    if not args.no_progress:
        # Progress is ephemeral status, not output: stderr keeps piped
        # stdout (tables, CSV, JSON) free of interleaved status lines.
        def progress(event):
            print(event.render(), file=sys.stderr)
    sweep = run_sweep(
        designs=args.designs,
        apps=args.apps,
        seeds=args.seeds,
        length=args.length,
        platform=platform_preset(args.platform),
        jobs=args.jobs,
        store=default_store(),
        progress=progress,
    )
    print(sweep.render(), file=out)
    return 0


def _stats_rows(stats) -> list[list[str]]:
    return [
        ["root", str(stats.root)],
        ["entries", f"{stats.entries:,}"],
        ["size", f"{stats.total_bytes / 1024:.1f} KiB"],
        ["lookups", f"{stats.lookups:,}"],
        ["hits", f"{stats.hits:,}"],
        ["misses", f"{stats.misses:,}"],
        ["hit rate", format_percent(stats.hit_rate, 1)],
        ["writes", f"{stats.writes:,}"],
        ["corrupt evictions", f"{stats.corrupt_evictions:,}"],
    ]


def _cmd_cache(args, out) -> int:
    store = default_store()
    if store is None:
        store = ResultStore()
    streams = default_stream_cache()
    if streams is None:
        streams = StreamCache()
    if args.action == "stats":
        result_stats, stream_stats = store.stats(), streams.stats()
        if args.json:
            import json as _json

            def payload(stats):
                return {
                    "root": str(stats.root),
                    "entries": stats.entries,
                    "total_bytes": stats.total_bytes,
                    "hits": stats.hits,
                    "misses": stats.misses,
                    "hit_rate": stats.hit_rate,
                    "writes": stats.writes,
                    "corrupt_evictions": stats.corrupt_evictions,
                }
            print(_json.dumps({"results": payload(result_stats),
                               "streams": payload(stream_stats)},
                              indent=2, sort_keys=True), file=out)
            return 0
        print(format_table("result store", ["field", "value"], _stats_rows(result_stats),
                           align_left_cols=2), file=out)
        print(file=out)
        print(format_table("stream cache", ["field", "value"], _stats_rows(stream_stats),
                           align_left_cols=2), file=out)
        return 0
    clear_results = args.results or args.all or not (args.results or args.streams)
    clear_streams = args.streams or args.all or not (args.results or args.streams)
    if clear_results:
        removed = store.clear()
        print(f"removed {removed} cached result(s) from {store.root}", file=out)
    if clear_streams:
        removed = streams.clear()
        print(f"removed {removed} stream bundle(s) from {streams.root}", file=out)
    return 0


def _cmd_obs(args, out) -> int:
    from repro.obs import summary as obs_summary

    try:
        run = obs_summary.load_run(args.log)
    except FileNotFoundError:
        print(f"error: no run log at {args.log}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(obs_summary.summarize(run).render(), file=out)
    return 0


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code.

    When the selected command carries ``--trace PATH``, a JSONL
    recorder is installed for the duration of the command (and exported
    through ``REPRO_TRACE`` so ``--jobs`` pool workers append their
    spans to the same log); a final metrics snapshot is written before
    the recorder closes.
    """
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)

    trace_path = getattr(args, "trace", None)
    if not trace_path:
        return _dispatch(args, out)
    saved_env = os.environ.get(obs.TRACE_ENV)
    os.environ[obs.TRACE_ENV] = trace_path
    recorder = obs.configure(trace_path)
    try:
        return _dispatch(args, out)
    finally:
        recorder.metrics()
        obs.configure(None)
        if saved_env is None:
            os.environ.pop(obs.TRACE_ENV, None)
        else:
            os.environ[obs.TRACE_ENV] = saved_env


def _dispatch(args, out) -> int:
    if args.command == "list":
        return _cmd_list(out)
    if args.command == "run":
        return _cmd_run(args, out)
    if args.command == "figure":
        print(_FIGURES[args.number](args.length).render(), file=out)
        return 0
    if args.command == "table":
        print(_TABLES[args.number](args.length).render(), file=out)
        return 0
    if args.command == "trace":
        trace = generate_trace(app_profile(args.app), args.length, args.seed)
        save_trace(trace, args.out)
        print(f"wrote {trace.describe()} -> {args.out}", file=out)
        return 0
    if args.command == "search":
        streams = [
            l1_filter(suite_trace(app, args.length), DEFAULT_PLATFORM) for app in args.apps
        ]
        point = find_static_partition(streams, DEFAULT_PLATFORM, args.tolerance)
        print(
            f"chosen partition: {point.user_ways} user + {point.kernel_ways} kernel ways "
            f"({point.total_bytes // 1024} KB) at miss rate "
            f"{format_percent(point.demand_miss_rate, 2)}",
            file=out,
        )
        return 0
    if args.command == "validate":
        return _cmd_validate(args.length, out)
    if args.command == "sweep":
        return _cmd_sweep(args, out)
    if args.command == "cache":
        return _cmd_cache(args, out)
    if args.command == "obs":
        return _cmd_obs(args, out)
    if args.command == "export":
        from repro.experiments.export import export_grid_csv

        rows = export_grid_csv(args.out, args.length)
        print(f"wrote {rows} rows -> {args.out}", file=out)
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")

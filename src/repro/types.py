"""Fundamental value types shared across the whole library.

The simulator is trace driven: a workload is a sequence of tagged memory
accesses (see :mod:`repro.trace`).  The types here define the vocabulary
used by every layer — privilege levels, access kinds, and the numpy record
layout of a trace — so that the trace generator, the cache simulator, the
energy model, and the experiment harness all agree on the encoding.
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = [
    "Privilege",
    "AccessKind",
    "TRACE_DTYPE",
    "CACHE_BLOCK_SIZE",
    "block_address",
    "KERNEL_SPACE_START",
    "is_kernel_address",
]


#: Cache block (line) size in bytes used throughout the model hierarchy.
#: The paper's platform uses 64-byte lines, the near-universal choice for
#: ARM application processors of the era.
CACHE_BLOCK_SIZE = 64

#: Start of the kernel virtual address range.  We follow the classic
#: 32-bit Linux 3G/1G split used by the Android platforms the paper
#: studies: user addresses live below ``0xC0000000``, kernel addresses at
#: or above it.
KERNEL_SPACE_START = 0xC000_0000


class Privilege(enum.IntEnum):
    """Privilege level of a memory access (who issued it)."""

    USER = 0
    KERNEL = 1

    @property
    def label(self) -> str:
        """Lower-case human-readable name (``"user"`` / ``"kernel"``)."""
        return self.name.lower()


class AccessKind(enum.IntEnum):
    """What a memory access does.

    ``IFETCH`` goes through the L1 instruction cache, ``LOAD`` and
    ``STORE`` through the L1 data cache.  ``WRITEBACK`` never appears in a
    generated trace; it is synthesised by the cache model when a dirty
    block is evicted from an upper level.
    """

    IFETCH = 0
    LOAD = 1
    STORE = 2
    WRITEBACK = 3

    @property
    def is_write(self) -> bool:
        """True for kinds that modify the target block."""
        return self in (AccessKind.STORE, AccessKind.WRITEBACK)


#: Numpy record layout of one trace entry.
#:
#: ``tick``
#:     Logical time of the access in core cycles since trace start.  Ticks
#:     are strictly non-decreasing.  They drive the leakage/refresh clock
#:     of the energy model and the retention-expiry clock of STT-RAM.
#: ``addr``
#:     Byte address of the access.
#: ``kind``
#:     An :class:`AccessKind` value.
#: ``priv``
#:     A :class:`Privilege` value.
TRACE_DTYPE = np.dtype(
    [
        ("tick", np.uint64),
        ("addr", np.uint64),
        ("kind", np.uint8),
        ("priv", np.uint8),
    ]
)


def block_address(addr: int | np.ndarray, block_size: int = CACHE_BLOCK_SIZE) -> int | np.ndarray:
    """Return the block-aligned address containing ``addr``.

    Works element-wise on numpy arrays.  ``block_size`` must be a power of
    two (all cache geometry in this library is power-of-two).
    """
    if block_size & (block_size - 1):
        raise ValueError(f"block_size must be a power of two, got {block_size}")
    return addr & ~np.uint64(block_size - 1) if isinstance(addr, np.ndarray) else addr & ~(block_size - 1)


def is_kernel_address(addr: int | np.ndarray) -> bool | np.ndarray:
    """True when ``addr`` lies in the kernel half of the address space."""
    return addr >= KERNEL_SPACE_START

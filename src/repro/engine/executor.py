"""Multiprocess execution of job batches with store lookup and retry.

:func:`run_jobs` is the engine's front door: it answers a batch of
:class:`~repro.engine.spec.JobSpec` from the persistent store where it
can, fans the rest out over a :class:`~concurrent.futures.ProcessPoolExecutor`,
retries each failed job once, persists fresh results, and reports
progress after every completion.

The executor is *stream-aware*: jobs that differ only in design share
one L1-filtered L2 stream (see :attr:`JobSpec.stream_key`), so a batch
first ensures every unique stream exists in the persistent
:class:`~repro.engine.streamcache.StreamCache` — a parallel prebuild
wave of one task per missing stream, not per design — and then
schedules design jobs with *stream affinity*: at most ``jobs`` tasks
are in flight, and when a worker finishes a job the replacement task
is drawn from the same stream, so the worker's memory-mapped columns
stay hot.  Streams load through ``mmap`` and are therefore shared
page-cache-backed across all workers either way; affinity saves the
per-job bundle re-open and keeps each worker's per-process memo
effective.

Determinism: a job's result is a pure function of its spec (trace
generation, L1 filtering and every design are seeded and deterministic),
so the outcome of a batch is bit-identical whether it runs on 1 worker,
N workers, straight from the store, or from a cached stream.  Duplicate
specs in a batch are simulated once and share the result.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Sequence

from repro import obs
from repro.cache.hierarchy import L2Stream, l1_filter
from repro.config import PlatformConfig
from repro.core.designs import make_design
from repro.core.result import DesignResult
from repro.engine.spec import JobSpec
from repro.engine.store import ResultStore
from repro.engine.streamcache import default_stream_cache
from repro.trace.workloads import suite_trace

__all__ = ["JobOutcome", "BatchProgress", "run_jobs", "execute_spec"]


@lru_cache(maxsize=16)
def _worker_stream(app: str, length: int, seed: int, platform: PlatformConfig) -> L2Stream:
    """Per-process memo of L1-filtered streams, backed by the mmap cache.

    Entries are zero-copy column views over the persistent
    :class:`~repro.engine.streamcache.StreamCache` bundles, so what this
    ``lru_cache`` keeps alive is a handful of memory maps the kernel
    pages in and out on demand — not private heap copies of 720k-row
    streams (the unbounded-retention problem the per-process rebuild
    cache had).  Only with caching disabled (``REPRO_CACHE_DISABLE``)
    does an entry own its arrays.
    """
    cache = default_stream_cache()
    if cache is None:
        return l1_filter(suite_trace(app, length, seed), platform)
    stream = cache.get_or_build(app, length, seed, platform)
    # one flush per unique stream per process (memoised afterwards)
    cache.flush_counters()
    return stream


def _prebuild_stream(app: str, length: int, seed: int, platform: PlatformConfig) -> None:
    """Pool entry point of the prebuild wave: publish one stream bundle.

    Returns nothing so the built stream is never pickled back to the
    parent; the deliverable is the bundle on disk (and a warm memo in
    this worker).
    """
    _worker_stream(app, length, seed, platform)


def _prebuild_missing_streams(pool, specs: Sequence[JobSpec], fresh: dict) -> None:
    """First wave of a parallel batch: build absent streams, one task each.

    Without this, up to ``jobs`` workers would race to build the same
    stream on first touch; with it, the cold grid pays each unique
    front end exactly once process-wide.  A prebuild failure is not
    fatal here — the design job that needs the stream rebuilds it and
    surfaces the error through the normal retry path.
    """
    cache = default_stream_cache()
    if cache is None:
        return
    unique: dict[str, JobSpec] = {}
    for indices in fresh.values():
        spec = specs[indices[0]]
        unique.setdefault(spec.stream_key, spec)
    missing = [
        s for s in unique.values() if not cache.has(s.app, s.length, s.seed, s.platform)
    ]
    if not missing:
        return
    with obs.span("stream.prebuild", streams=len(missing)):
        futures = [
            pool.submit(_prebuild_stream, s.app, s.length, s.seed, s.platform)
            for s in missing
        ]
        for spec, future in zip(missing, futures):
            exc = future.exception()
            if exc is not None:
                obs.inc("streamcache.prebuild-error")
                obs.event("stream.prebuild-error", app=spec.app,
                          error=type(exc).__name__)


def execute_spec(spec: JobSpec) -> DesignResult:
    """Simulate one job from scratch (no store involved)."""
    with obs.span("job", label=spec.label(), design=spec.design, app=spec.app):
        stream = _worker_stream(spec.app, spec.length, spec.seed, spec.platform)
        design = make_design(spec.design, **spec.kwargs)
        return design.run(stream, spec.platform)


def _timed_execute(spec: JobSpec) -> tuple[DesignResult, float, float]:
    """Pool entry point: run one spec, measuring wall and CPU time.

    Both clocks are read *inside* the worker process, so the returned
    ``cpu_s`` is the job's own compute (not the parent's), and it ships
    back to the parent inside the future result / :class:`JobOutcome`.
    """
    start = time.perf_counter()
    cpu_start = time.process_time()
    result = execute_spec(spec)
    return result, time.perf_counter() - start, time.process_time() - cpu_start


@dataclass(frozen=True)
class JobOutcome:
    """How one spec of a batch was satisfied."""

    spec: JobSpec
    result: DesignResult
    cached: bool
    wall_s: float
    attempts: int
    cpu_s: float = 0.0


@dataclass(frozen=True)
class BatchProgress:
    """Snapshot passed to the progress callback after each completion.

    ``started_at`` is the batch's ``time.perf_counter()`` start, so a
    renderer can derive elapsed time, fresh-job throughput and an ETA at
    print time; ``last.wall_s`` / ``last.cpu_s`` carry the finished
    job's own measured durations.
    """

    total: int
    completed: int
    cached: int
    running: int
    last: JobOutcome
    started_at: float = 0.0

    @property
    def elapsed_s(self) -> float:
        """Seconds since the batch started (0.0 when not stamped)."""
        return time.perf_counter() - self.started_at if self.started_at else 0.0

    def render(self) -> str:
        """One status line, e.g.
        ``[ 7/32] dynamic-stt:game 12.3s (5 cached, 3 running) 0.5 job/s eta 6s``."""
        source = "store" if self.last.cached else f"{self.last.wall_s:.1f}s"
        line = (
            f"[{self.completed:>{len(str(self.total))}}/{self.total}] "
            f"{self.last.spec.label()} {source} ({self.cached} cached, "
            f"{self.running} running)"
        )
        fresh_done = self.completed - self.cached
        elapsed = self.elapsed_s
        if fresh_done > 0 and elapsed > 0:
            rate = fresh_done / elapsed
            line += f" {rate:.1f} job/s"
            if self.running:
                line += f" eta {self.running / rate:.0f}s"
        return line


def run_jobs(
    specs: Sequence[JobSpec],
    jobs: int = 1,
    store: ResultStore | None = None,
    progress: Callable[[BatchProgress], None] | None = None,
    retries: int = 1,
) -> list[JobOutcome]:
    """Execute a batch of specs, returning outcomes in input order.

    Args:
        specs: Jobs to satisfy (duplicates are computed once).
        jobs: Worker processes; 1 runs everything in-process.
        store: Persistent store consulted before and updated after each
            simulation; None disables persistence.
        progress: Called after every job completes (cached jobs first).
        retries: Extra attempts per failed job (transient failures —
            e.g. a worker killed by the OOM reaper — get one more shot
            by default).  The last failure propagates.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    with obs.span("batch", total=len(specs), jobs=jobs):
        outcomes = _run_batch(specs, jobs, store, progress, retries)
    if store is not None:
        store.flush_counters()
    obs.recorder().metrics()
    return outcomes


def _run_batch(
    specs: Sequence[JobSpec],
    jobs: int,
    store: ResultStore | None,
    progress: Callable[[BatchProgress], None] | None,
    retries: int,
) -> list[JobOutcome]:
    outcomes: list[JobOutcome | None] = [None] * len(specs)
    total = len(specs)
    cached_count = 0
    completed = 0
    started_at = time.perf_counter()

    # Serve what the store already has, and dedupe the rest by key.
    fresh: dict[str, list[int]] = {}
    with obs.span("store.lookup", specs=len(specs)):
        for i, spec in enumerate(specs):
            result = store.get(spec) if store is not None else None
            if result is not None:
                outcomes[i] = JobOutcome(spec, result, cached=True, wall_s=0.0, attempts=0)
                cached_count += 1
            else:
                fresh.setdefault(spec.content_key, []).append(i)
    obs.inc("engine.job.cached", cached_count)
    pending = len(fresh)
    for outcome in outcomes:
        if outcome is not None:
            completed += 1
            obs.event("job.cached", label=outcome.spec.label())
            if progress is not None:
                progress(BatchProgress(total, completed, cached_count, pending,
                                       outcome, started_at))

    def finish(indices: list[int], result: DesignResult, wall_s: float,
               cpu_s: float, attempts: int) -> None:
        nonlocal completed
        if store is not None:
            with obs.span("store.write"):
                store.put(specs[indices[0]], result)
        for i in indices:
            outcomes[i] = JobOutcome(specs[i], result, cached=False,
                                     wall_s=wall_s, attempts=attempts, cpu_s=cpu_s)
        completed += len(indices)
        obs.inc("engine.job.fresh")
        obs.observe("engine.job", wall_s)
        obs.event("job.done", label=specs[indices[0]].label(), wall_s=wall_s,
                  cpu_s=cpu_s, attempts=attempts,
                  sim_engine=result.extras.get("sim_engine"))

    if jobs == 1 or pending <= 1:
        remaining = pending
        # Stream-major order: consecutive jobs share a stream, so the
        # in-process memo (`_worker_stream`) stays hot even when the
        # batch spans more unique streams than the memo holds.
        for key, indices in sorted(fresh.items(),
                                   key=lambda kv: specs[kv[1][0]].stream_key):
            result, wall_s, cpu_s, attempts = _run_with_retry(
                _timed_execute, specs[indices[0]], retries
            )
            finish(indices, result, wall_s, cpu_s, attempts)
            remaining -= 1
            if progress is not None:
                progress(BatchProgress(total, completed, cached_count,
                                       remaining, outcomes[indices[0]], started_at))
        return [o for o in outcomes if o is not None]

    with ProcessPoolExecutor(max_workers=min(jobs, pending)) as pool:
        _prebuild_missing_streams(pool, specs, fresh)
        attempts_left = {key: 1 + retries for key in fresh}
        attempt_no = {key: 0 for key in fresh}

        # Stream-affinity scheduling: keep at most `jobs` tasks in
        # flight, drawn from per-stream queues.  When a worker finishes
        # a job it is the pool's only idle worker, so the single task
        # submitted next — preferring the finished job's stream — lands
        # on it with its mmap and memo already warm.  Initial tasks
        # round-robin across streams so workers start on distinct ones.
        queues: dict[str, deque[str]] = {}
        for key, indices in fresh.items():
            queues.setdefault(specs[indices[0]].stream_key, deque()).append(key)
        stream_order = deque(queues)
        futures = {}

        def submit(preferred: str | None = None, key: str | None = None) -> None:
            if key is None:
                if preferred is None or not queues.get(preferred):
                    while stream_order and not queues[stream_order[0]]:
                        stream_order.popleft()
                    if not stream_order:
                        return
                    preferred = stream_order[0]
                    stream_order.rotate(-1)
                key = queues[preferred].popleft()
            attempt_no[key] += 1
            futures[pool.submit(_timed_execute, specs[fresh[key][0]])] = key

        for _ in range(min(jobs, pending)):
            submit()
        while futures:
            done, _ = wait(futures, return_when=FIRST_COMPLETED)
            for future in done:
                key = futures.pop(future)
                indices = fresh[key]
                try:
                    result, wall_s, cpu_s = future.result()
                except Exception as exc:
                    attempts_left[key] -= 1
                    if attempts_left[key] <= 0:
                        for other in futures:
                            other.cancel()
                        raise
                    obs.inc("engine.job.retry")
                    obs.event("job.retry", label=specs[indices[0]].label(),
                              attempt=attempt_no[key] + 1, error=type(exc).__name__)
                    submit(key=key)
                    continue
                finish(indices, result, wall_s, cpu_s, attempt_no[key])
                submit(preferred=specs[indices[0]].stream_key)
                if progress is not None:
                    progress(BatchProgress(total, completed, cached_count,
                                           len(futures) + sum(map(len, queues.values())),
                                           outcomes[indices[0]], started_at))
    return [o for o in outcomes if o is not None]


def _run_with_retry(fn, spec: JobSpec, retries: int):
    """In-process execute with the same retry budget as the pool path."""
    attempts = 0
    while True:
        attempts += 1
        try:
            result, wall_s, cpu_s = fn(spec)
            return result, wall_s, cpu_s, attempts
        except Exception as exc:
            if attempts > retries:
                raise
            obs.inc("engine.job.retry")
            obs.event("job.retry", label=spec.label(), attempt=attempts,
                      error=type(exc).__name__)

"""Grid sweeps: design x app x seed batches over the engine.

:func:`run_sweep` is what ``repro sweep`` calls: it expands the grid
into :class:`~repro.engine.spec.JobSpec` rows (in a stable order, so
repeated sweeps address the same store entries), hands the batch to
:func:`~repro.engine.executor.run_jobs`, and wraps the outcomes in a
:class:`SweepResult` that renders the paper-style summary table.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from itertools import product
from typing import Callable, Sequence

from repro.config import DEFAULT_PLATFORM, PlatformConfig
from repro.engine.executor import BatchProgress, JobOutcome, run_jobs
from repro.engine.spec import EXPERIMENT_TRACE_LENGTH, JobSpec
from repro.engine.store import ResultStore

__all__ = ["SweepResult", "run_sweep"]


@dataclass(frozen=True)
class SweepResult:
    """Outcomes of one grid sweep plus batch-level accounting."""

    outcomes: tuple[JobOutcome, ...]
    wall_s: float

    @property
    def cached(self) -> int:
        """Jobs answered from the persistent store."""
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def simulated(self) -> int:
        """Jobs that ran fresh simulations."""
        return len(self.outcomes) - self.cached

    def hit_rate(self) -> float:
        """Store hit rate over the batch (0.0 for an empty sweep)."""
        return self.cached / len(self.outcomes) if self.outcomes else 0.0

    @property
    def fastsim_jobs(self) -> int:
        """Jobs whose replay ran on the vectorized fast kernel."""
        return sum(
            1 for o in self.outcomes
            if o.result.extras.get("sim_engine") == "fastsim"
        )

    @property
    def reference_jobs(self) -> int:
        """Jobs whose replay used the per-access reference engine."""
        return sum(
            1 for o in self.outcomes
            if o.result.extras.get("sim_engine") == "reference"
        )

    def results(self) -> dict[tuple[str, str, int], object]:
        """``(design, app, seed) -> DesignResult`` for every job."""
        return {(o.spec.design, o.spec.app, o.spec.seed): o.result for o in self.outcomes}

    def render(self) -> str:
        """Summary table plus the store-accounting footer line."""
        from repro.experiments.report import format_table

        rows = []
        for o in self.outcomes:
            stats = o.result.l2_stats
            rows.append([
                o.spec.design,
                o.spec.app,
                str(o.spec.seed),
                f"{stats.demand_miss_rate:6.2%}",
                f"{o.result.l2_energy.total_j * 1e6:9.1f}",
                f"{o.result.timing.busy_cycles / 1e6:8.2f}",
                "store" if o.cached else f"{o.wall_s:.1f}s",
            ])
        table = format_table(
            "sweep results",
            ["design", "app", "seed", "miss rate", "L2 uJ", "Mcycles", "source"],
            rows,
            align_left_cols=2,
        )
        footer = (
            f"store: {self.cached}/{len(self.outcomes)} jobs served from cache "
            f"({self.hit_rate():.1%}); {self.simulated} simulated in {self.wall_s:.1f}s; "
            f"sim engine: {self.fastsim_jobs} fastsim / {self.reference_jobs} reference"
        )
        return f"{table}\n{footer}"


def run_sweep(
    designs: Sequence[str],
    apps: Sequence[str],
    seeds: Sequence[int] = (0,),
    length: int = EXPERIMENT_TRACE_LENGTH,
    platform: PlatformConfig = DEFAULT_PLATFORM,
    jobs: int = 1,
    store: ResultStore | None = None,
    progress: Callable[[BatchProgress], None] | None = None,
) -> SweepResult:
    """Run the full design x app x seed grid through the engine."""
    specs = [
        JobSpec(design=design, app=app, length=length, seed=seed, platform=platform)
        for design, app, seed in product(designs, apps, seeds)
    ]
    start = time.perf_counter()
    outcomes = run_jobs(specs, jobs=jobs, store=store, progress=progress)
    return SweepResult(outcomes=tuple(outcomes), wall_s=time.perf_counter() - start)

"""Content-addressed on-disk cache of simulation results.

Layout under the store root (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``)::

    results/<key[:2]>/<key>.json

Each entry is a versioned JSON document carrying the spec payload it was
keyed from (for ``repro cache stats`` introspection) and the serialised
:class:`~repro.core.result.DesignResult`.  Writes are atomic (tempfile +
``os.replace``) so a crashed or concurrent writer can never publish a
half-written entry; reads treat *any* undecodable entry as a miss and
delete it, so a corrupt cache degrades to re-simulation, never a crash.

Every lookup and write is tallied twice: into the process-local
observability registry (``store.hit`` / ``store.miss`` / ``store.write``
/ ``store.corrupt-evicted`` counters, see :mod:`repro.obs`) and into a
per-instance delta that :meth:`ResultStore.flush_counters` folds into a
cumulative ``counters.json`` beside the entries — that file is what
``repro cache stats`` reads to report the store's lifetime hit rate and
corruption history across processes.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro import obs
from repro.core.result import DesignResult
from repro.engine.spec import SCHEMA_VERSION, JobSpec, canonical_json

try:  # POSIX only; counter flushes fall back to best-effort elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

__all__ = [
    "COUNTER_KEYS",
    "CounterFile",
    "ResultStore",
    "StoreStats",
    "default_store",
    "default_cache_dir",
]

#: Keys of the persisted cumulative counters (``counters.json``).
COUNTER_KEYS = ("hits", "misses", "writes", "corrupt_evictions")

#: Environment variable overriding the store location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Set to a non-empty value to disable the persistent store entirely
#: (``default_store`` then returns None; simulations always run fresh).
CACHE_DISABLE_ENV = "REPRO_CACHE_DISABLE"


def default_cache_dir() -> Path:
    """Store root honouring ``$REPRO_CACHE_DIR``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


def default_store() -> "ResultStore | None":
    """The process-default store, or None when caching is disabled."""
    if os.environ.get(CACHE_DISABLE_ENV):
        return None
    return ResultStore(default_cache_dir())


class CounterFile:
    """Cumulative named tallies persisted as one small JSON file.

    This is the accounting mechanism shared by :class:`ResultStore`
    (``counters.json``) and the stream cache (``stream_counters.json``):
    instances accumulate deltas in memory via :meth:`tally` and fold
    them into the on-disk totals with :meth:`flush` — a read-add-replace
    guarded by an ``flock`` sidecar lock where available, so concurrent
    pool workers don't lose each other's deltas.  A missing or corrupt
    file reads as all-zero; the counters are accounting, never truth.
    """

    def __init__(self, path: Path, keys: tuple[str, ...]) -> None:
        self.path = Path(path)
        self.keys = tuple(keys)
        self._pending = dict.fromkeys(self.keys, 0)

    def tally(self, key: str, value: int = 1) -> None:
        """Add ``value`` to the unsaved delta of counter ``key``."""
        self._pending[key] += value

    def read(self) -> dict[str, int]:
        """Persisted cumulative counters (zeros when absent/corrupt)."""
        try:
            payload = json.loads(self.path.read_text())
            return {key: int(payload.get(key, 0)) for key in self.keys}
        except (OSError, ValueError, TypeError):
            return dict.fromkeys(self.keys, 0)

    def live(self) -> dict[str, int]:
        """Persisted counters plus this instance's unsaved deltas."""
        totals = self.read()
        for key in self.keys:
            totals[key] += self._pending[key]
        return totals

    def flush(self) -> dict[str, int]:
        """Fold unsaved deltas into the file; returns the new totals."""
        if not any(self._pending.values()):
            return self.read()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        lock_fd = None
        if fcntl is not None:
            lock_fd = os.open(f"{self.path}.lock", os.O_CREAT | os.O_RDWR, 0o644)
            fcntl.flock(lock_fd, fcntl.LOCK_EX)
        try:
            totals = self.read()
            for key in self.keys:
                totals[key] += self._pending[key]
                self._pending[key] = 0
            fd, tmp = tempfile.mkstemp(dir=self.path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(canonical_json(totals))
                os.replace(tmp, self.path)
            except BaseException:
                _discard(Path(tmp))
                raise
        finally:
            if lock_fd is not None:
                fcntl.flock(lock_fd, fcntl.LOCK_UN)
                os.close(lock_fd)
        return totals

    def reset(self) -> None:
        """Drop the persisted history and any unsaved deltas."""
        _discard(self.path)
        _discard(Path(f"{self.path}.lock"))
        self._pending = dict.fromkeys(self.keys, 0)


def _discard(path: Path) -> None:
    try:
        path.unlink()
    except OSError:
        pass


@dataclass(frozen=True)
class StoreStats:
    """Summary of a store's on-disk contents and lifetime counters."""

    root: Path
    entries: int
    total_bytes: int
    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt_evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total lifetime lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Lifetime hit rate (0.0 for a never-queried store)."""
        return self.hits / self.lookups if self.lookups else 0.0


class ResultStore:
    """Persistent ``JobSpec -> DesignResult`` mapping on disk."""

    def __init__(self, root: Path | str | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self._counters = CounterFile(self.root / "counters.json", COUNTER_KEYS)

    @property
    def results_dir(self) -> Path:
        """Directory holding the fanned-out entry files."""
        return self.root / "results"

    @property
    def counters_path(self) -> Path:
        """The cumulative-counters sidecar file."""
        return self._counters.path

    def _entry_path(self, key: str) -> Path:
        return self.results_dir / key[:2] / f"{key}.json"

    def _tally(self, key: str, metric: str) -> None:
        self._counters.tally(key)
        obs.inc(metric)

    def get(self, spec: JobSpec) -> DesignResult | None:
        """Stored result for ``spec``, or None on miss.

        A present-but-unreadable entry (truncated write from a killed
        process, disk corruption, an old schema) is removed and reported
        as a miss.
        """
        path = self._entry_path(spec.content_key)
        try:
            payload = json.loads(path.read_text())
            if payload["schema"] != SCHEMA_VERSION:
                raise ValueError(f"schema {payload['schema']} != {SCHEMA_VERSION}")
            result = DesignResult.from_dict(payload["result"])
        except FileNotFoundError:
            self._tally("misses", "store.miss")
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self._discard(path)
            self._tally("corrupt_evictions", "store.corrupt-evicted")
            self._tally("misses", "store.miss")
            return None
        self._tally("hits", "store.hit")
        return result

    def put(self, spec: JobSpec, result: DesignResult) -> Path:
        """Persist ``result`` under ``spec``'s content key, atomically."""
        path = self._entry_path(spec.content_key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": SCHEMA_VERSION,
            "key": spec.content_key,
            "spec": spec.describe(),
            "result": result.to_dict(),
        }
        blob = canonical_json(payload)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except BaseException:
            self._discard(Path(tmp))
            raise
        self._tally("writes", "store.write")
        return path

    def __contains__(self, spec: JobSpec) -> bool:
        return self._entry_path(spec.content_key).is_file()

    def flush_counters(self) -> dict[str, int]:
        """Fold this instance's unsaved tallies into ``counters.json``.

        Read-add-replace under a file lock (see :class:`CounterFile`);
        returns the new cumulative counters.
        """
        return self._counters.flush()

    def counters(self) -> dict[str, int]:
        """Live view: persisted counters plus this instance's tallies."""
        return self._counters.live()

    def stats(self) -> StoreStats:
        """Entry count, total size and lifetime counters of the store."""
        entries = 0
        total = 0
        if self.results_dir.is_dir():
            for path in self.results_dir.glob("*/*.json"):
                entries += 1
                total += path.stat().st_size
        counters = self.counters()
        return StoreStats(root=self.root, entries=entries, total_bytes=total, **counters)

    def clear(self) -> int:
        """Delete every entry (and the counter history); returns how
        many entries were removed."""
        removed = 0
        if self.results_dir.is_dir():
            for path in self.results_dir.glob("*/*.json"):
                self._discard(path)
                removed += 1
            for sub in self.results_dir.iterdir():
                try:
                    sub.rmdir()
                except OSError:
                    pass
        self._counters.reset()
        return removed

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

"""Content-addressed on-disk cache of simulation results.

Layout under the store root (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``)::

    results/<key[:2]>/<key>.json

Each entry is a versioned JSON document carrying the spec payload it was
keyed from (for ``repro cache stats`` introspection) and the serialised
:class:`~repro.core.result.DesignResult`.  Writes are atomic (tempfile +
``os.replace``) so a crashed or concurrent writer can never publish a
half-written entry; reads treat *any* undecodable entry as a miss and
delete it, so a corrupt cache degrades to re-simulation, never a crash.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.core.result import DesignResult
from repro.engine.spec import SCHEMA_VERSION, JobSpec, canonical_json

__all__ = ["ResultStore", "StoreStats", "default_store", "default_cache_dir"]

#: Environment variable overriding the store location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Set to a non-empty value to disable the persistent store entirely
#: (``default_store`` then returns None; simulations always run fresh).
CACHE_DISABLE_ENV = "REPRO_CACHE_DISABLE"


def default_cache_dir() -> Path:
    """Store root honouring ``$REPRO_CACHE_DIR``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


def default_store() -> "ResultStore | None":
    """The process-default store, or None when caching is disabled."""
    if os.environ.get(CACHE_DISABLE_ENV):
        return None
    return ResultStore(default_cache_dir())


@dataclass(frozen=True)
class StoreStats:
    """Summary of a store's on-disk contents."""

    root: Path
    entries: int
    total_bytes: int


class ResultStore:
    """Persistent ``JobSpec -> DesignResult`` mapping on disk."""

    def __init__(self, root: Path | str | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    @property
    def results_dir(self) -> Path:
        """Directory holding the fanned-out entry files."""
        return self.root / "results"

    def _entry_path(self, key: str) -> Path:
        return self.results_dir / key[:2] / f"{key}.json"

    def get(self, spec: JobSpec) -> DesignResult | None:
        """Stored result for ``spec``, or None on miss.

        A present-but-unreadable entry (truncated write from a killed
        process, disk corruption, an old schema) is removed and reported
        as a miss.
        """
        path = self._entry_path(spec.content_key)
        try:
            payload = json.loads(path.read_text())
            if payload["schema"] != SCHEMA_VERSION:
                raise ValueError(f"schema {payload['schema']} != {SCHEMA_VERSION}")
            return DesignResult.from_dict(payload["result"])
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self._discard(path)
            return None

    def put(self, spec: JobSpec, result: DesignResult) -> Path:
        """Persist ``result`` under ``spec``'s content key, atomically."""
        path = self._entry_path(spec.content_key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": SCHEMA_VERSION,
            "key": spec.content_key,
            "spec": spec.describe(),
            "result": result.to_dict(),
        }
        blob = canonical_json(payload)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except BaseException:
            self._discard(Path(tmp))
            raise
        return path

    def __contains__(self, spec: JobSpec) -> bool:
        return self._entry_path(spec.content_key).is_file()

    def stats(self) -> StoreStats:
        """Entry count and total size of the store."""
        entries = 0
        total = 0
        if self.results_dir.is_dir():
            for path in self.results_dir.glob("*/*.json"):
                entries += 1
                total += path.stat().st_size
        return StoreStats(root=self.root, entries=entries, total_bytes=total)

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.results_dir.is_dir():
            for path in self.results_dir.glob("*/*.json"):
                self._discard(path)
                removed += 1
            for sub in self.results_dir.iterdir():
                try:
                    sub.rmdir()
                except OSError:
                    pass
        return removed

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

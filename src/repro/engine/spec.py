"""Job specifications: one frozen, hashable description per simulation.

A :class:`JobSpec` captures everything that determines a simulation's
output — design name and constructor kwargs, app, trace length, seed and
the full platform configuration.  Its :attr:`~JobSpec.content_key` is a
SHA-256 over a canonical JSON encoding of those fields plus a schema tag,
so the key is stable across processes and Python versions, and changes
whenever the result format (or a spec field) changes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field

from repro.config import DEFAULT_PLATFORM, PlatformConfig
from repro.core.designs import DESIGN_NAMES

__all__ = [
    "EXPERIMENT_TRACE_LENGTH",
    "SCHEMA_VERSION",
    "JobSpec",
    "canonical_json",
    "platform_fingerprint",
    "stream_key",
]

#: Accesses per app trace in the canonical experiments.  Long enough to
#: amortise L2 cold-start (each warm block is touched ~15+ times at the
#: L2) while keeping a full 8-app x 4-design grid under two minutes.
#: (Re-exported by :mod:`repro.experiments.runner` for compatibility.)
EXPERIMENT_TRACE_LENGTH = 720_000

#: Version tag baked into every content key and store payload.  Bump it
#: whenever the simulator's observable output or the serialised result
#: layout changes — old cache entries then become silent misses instead
#: of stale hits.
SCHEMA_VERSION = 2

#: Kwarg value types that survive canonical JSON encoding unchanged.
_SCALARS = (bool, int, float, str, type(None))


def canonical_json(payload: object) -> str:
    """Deterministic JSON: sorted keys, no whitespace, no NaN."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), allow_nan=False)


def platform_fingerprint(platform: PlatformConfig) -> str:
    """Short stable digest of every platform knob."""
    blob = canonical_json(dataclasses.asdict(platform))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def stream_key(
    app: str,
    length: int,
    seed: int,
    platform: PlatformConfig,
    l1_policy: str = "lru",
) -> str:
    """Stable hex key of one L1-filtered L2 stream (the front-end identity).

    A stream is determined by strictly less than a full job: the app,
    trace length, seed, platform (whose fingerprint covers the L1
    geometries the filter simulates) and the L1 replacement policy —
    but *not* the L2 design, which only replays the stream.  Every job
    sharing these fields shares one stream, and therefore one entry in
    :class:`~repro.engine.streamcache.StreamCache`.  The schema tag
    invalidates persisted streams whenever the simulator's observable
    output changes, exactly like result keys.
    """
    payload = {
        "kind": "stream",
        "schema": SCHEMA_VERSION,
        "app": app,
        "length": length,
        "seed": seed,
        "platform": platform_fingerprint(platform),
        "l1_policy": l1_policy,
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


@dataclass(frozen=True)
class JobSpec:
    """One simulation: a canonical design variant on one app trace.

    ``design_kwargs`` parameterises the design constructor (see
    :func:`repro.core.designs.make_design`); values must be JSON scalars
    so the content key is stable.  A dict passed at construction is
    normalised to a sorted tuple of pairs, keeping the spec hashable.
    """

    design: str
    app: str
    length: int = EXPERIMENT_TRACE_LENGTH
    seed: int = 0
    platform: PlatformConfig = DEFAULT_PLATFORM
    design_kwargs: tuple[tuple[str, object], ...] = field(default=())

    def __post_init__(self) -> None:
        if self.design not in DESIGN_NAMES:
            raise ValueError(f"unknown design {self.design!r}; choose from {DESIGN_NAMES}")
        if self.length <= 0:
            raise ValueError(f"length must be positive, got {self.length}")
        kwargs = self.design_kwargs
        if isinstance(kwargs, dict):
            kwargs = tuple(sorted(kwargs.items()))
            object.__setattr__(self, "design_kwargs", kwargs)
        for key, value in kwargs:
            if not isinstance(key, str):
                raise TypeError(f"design kwarg names must be strings, got {key!r}")
            if not isinstance(value, _SCALARS):
                raise TypeError(
                    f"design kwarg {key!r} must be a JSON scalar "
                    f"(bool/int/float/str/None), got {type(value).__name__}"
                )

    @property
    def kwargs(self) -> dict:
        """``design_kwargs`` as a plain dict (for ``make_design``)."""
        return dict(self.design_kwargs)

    def describe(self) -> dict:
        """The canonical JSON-ready payload the content key hashes."""
        return {
            "schema": SCHEMA_VERSION,
            "design": self.design,
            "design_kwargs": {k: v for k, v in self.design_kwargs},
            "app": self.app,
            "length": self.length,
            "seed": self.seed,
            "platform": platform_fingerprint(self.platform),
        }

    @property
    def content_key(self) -> str:
        """Stable hex key addressing this job's result in the store."""
        return hashlib.sha256(canonical_json(self.describe()).encode()).hexdigest()

    @property
    def stream_key(self) -> str:
        """Key of the L2 stream this job replays (see :func:`stream_key`).

        Jobs that differ only in design share a stream key; the executor
        groups batches by it to build each stream once and schedule with
        stream affinity.
        """
        return stream_key(self.app, self.length, self.seed, self.platform)

    def label(self) -> str:
        """Short human-readable name for progress lines and tables."""
        parts = [self.design, self.app]
        if self.seed:
            parts.append(f"s{self.seed}")
        if self.design_kwargs:
            parts.append(",".join(f"{k}={v}" for k, v in self.design_kwargs))
        return ":".join(parts)

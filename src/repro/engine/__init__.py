"""Execution engine: parallel, disk-cached simulation of design/app grids.

The engine is the subsystem every experiment funnels through.  It has
four layers, each a module:

* :mod:`repro.engine.spec` — :class:`JobSpec`, a frozen description of
  one simulation (design + kwargs, app, length, seed, platform) with a
  stable content key.
* :mod:`repro.engine.store` — :class:`ResultStore`, a content-addressed
  on-disk cache of :class:`~repro.core.result.DesignResult` payloads
  (atomic writes, corruption-tolerant reads).
* :mod:`repro.engine.streamcache` — :class:`StreamCache`, a
  content-addressed on-disk cache of L1-filtered
  :class:`~repro.cache.hierarchy.L2Stream` bundles, memory-mapped
  zero-copy into every consumer so the trace front end runs once per
  machine instead of once per process.
* :mod:`repro.engine.executor` — :func:`run_jobs`, multiprocess fan-out
  of a batch of specs with store lookup, stream prebuild + affinity
  scheduling, retry and progress reporting.
* :mod:`repro.engine.sweep` — :func:`run_sweep`, the design x app x seed
  grid convenience used by ``repro sweep``.

Results are deterministic regardless of worker count: a job's output
depends only on its spec, so parallel and serial runs are bit-identical.
"""

from repro.engine.executor import BatchProgress, JobOutcome, run_jobs
from repro.engine.spec import EXPERIMENT_TRACE_LENGTH, JobSpec
from repro.engine.store import ResultStore, default_store
from repro.engine.streamcache import StreamCache, default_stream_cache
from repro.engine.sweep import SweepResult, run_sweep

__all__ = [
    "EXPERIMENT_TRACE_LENGTH",
    "JobSpec",
    "ResultStore",
    "default_store",
    "StreamCache",
    "default_stream_cache",
    "BatchProgress",
    "JobOutcome",
    "run_jobs",
    "SweepResult",
    "run_sweep",
]

"""Persistent, content-addressed, memory-mapped cache of L2 streams.

The front end of every simulation — generating an app trace and
filtering it through the split L1s — is a pure function of
``(app, length, seed, platform, l1-policy)``, yet it historically ran
once per *process*: every pool worker and every fresh CLI invocation
rebuilt the same streams before any design could replay them.  This
module makes the front end a one-time cost per machine: each
:class:`~repro.cache.hierarchy.L2Stream` is persisted once as a columnar
bundle under the cache root, and every later consumer maps the columns
zero-copy with ``np.load(..., mmap_mode="r")``, so all processes share
the kernel page cache instead of private heap copies.

Layout under the cache root (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``,
beside the result store)::

    streams/<key[:2]>/<key>/
        meta.json       # schema tag, spec payload, rows, scalar context + L1 stats
        ticks.npy       # int64   \
        addrs.npy       # uint64   |
        privs.npy       # uint8    | the five parallel columns
        writes.npy      # bool     | (see hierarchy.STREAM_COLUMNS)
        demand.npy      # bool    /

Durability mirrors :class:`~repro.engine.store.ResultStore`: a bundle is
written into a temp directory and published with one atomic
``os.replace``, so readers never observe a half-written bundle; any
unreadable bundle (truncated column, stale schema, bad dtype) is evicted
and reported as a miss, so corruption degrades to a rebuild, never a
crash.  Lookups and writes are tallied into the process-local
observability registry (``streamcache.hit`` / ``streamcache.miss`` /
``streamcache.write`` / ``streamcache.build`` /
``streamcache.corrupt-evicted``) and persisted across processes through
the same :class:`~repro.engine.store.CounterFile` mechanism as the
result store, which is what gives ``repro cache stats`` the stream
cache's lifetime hit rate.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from pathlib import Path

import numpy as np

from repro import obs
from repro.cache.hierarchy import STREAM_COLUMNS, L2Stream, l1_filter
from repro.config import PlatformConfig
from repro.engine.spec import SCHEMA_VERSION, canonical_json, stream_key
from repro.engine.store import (
    CACHE_DISABLE_ENV,
    COUNTER_KEYS,
    CounterFile,
    StoreStats,
    default_cache_dir,
)
from repro.trace.workloads import suite_trace

__all__ = ["StreamCache", "default_stream_cache"]


class StreamCache:
    """Persistent ``stream key -> L2Stream`` mapping of columnar bundles."""

    def __init__(self, root: Path | str | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self._counters = CounterFile(self.root / "stream_counters.json", COUNTER_KEYS)

    @property
    def streams_dir(self) -> Path:
        """Directory holding the fanned-out stream bundles."""
        return self.root / "streams"

    @property
    def counters_path(self) -> Path:
        """The cumulative-counters sidecar file."""
        return self._counters.path

    def _bundle_dir(self, key: str) -> Path:
        return self.streams_dir / key[:2] / key

    def _tally(self, key: str, metric: str) -> None:
        self._counters.tally(key)
        obs.inc(metric)

    def has(
        self,
        app: str,
        length: int,
        seed: int,
        platform: PlatformConfig,
        l1_policy: str = "lru",
    ) -> bool:
        """Whether a published bundle exists (no validation, no tallies)."""
        key = stream_key(app, length, seed, platform, l1_policy)
        return (self._bundle_dir(key) / "meta.json").is_file()

    def get(
        self,
        app: str,
        length: int,
        seed: int,
        platform: PlatformConfig,
        l1_policy: str = "lru",
    ) -> L2Stream | None:
        """Memory-mapped stream for the key fields, or None on miss.

        A present-but-unreadable bundle (truncated column from a killed
        writer, stale schema, wrong dtype) is evicted and reported as a
        miss, mirroring :meth:`ResultStore.get` semantics.
        """
        key = stream_key(app, length, seed, platform, l1_policy)
        bundle = self._bundle_dir(key)
        with obs.span("stream.load", app=app, key=key[:12]) as sp:
            try:
                stream = self._read_bundle(bundle)
            except FileNotFoundError:
                sp.note(outcome="miss")
                self._tally("misses", "streamcache.miss")
                return None
            except (OSError, ValueError, KeyError, TypeError) as exc:
                sp.note(outcome="corrupt", error=type(exc).__name__)
                shutil.rmtree(bundle, ignore_errors=True)
                self._tally("corrupt_evictions", "streamcache.corrupt-evicted")
                self._tally("misses", "streamcache.miss")
                return None
            sp.note(outcome="hit", rows=len(stream))
        self._tally("hits", "streamcache.hit")
        return stream

    def _read_bundle(self, bundle: Path) -> L2Stream:
        """Load one bundle, mapping every non-empty column zero-copy."""
        meta = json.loads((bundle / "meta.json").read_text())
        if meta["schema"] != SCHEMA_VERSION:
            raise ValueError(f"schema {meta['schema']} != {SCHEMA_VERSION}")
        rows = int(meta["rows"])
        # np.memmap cannot map a zero-length array; empty columns (an
        # empty stream) fall back to a regular read of the same file.
        mmap_mode = "r" if rows else None
        columns = {
            name: np.load(bundle / f"{name}.npy", mmap_mode=mmap_mode, allow_pickle=False)
            for name, _ in STREAM_COLUMNS
        }
        stream = L2Stream.from_columns(columns, meta["context"])
        if len(stream) != rows:
            raise ValueError(f"bundle has {len(stream)} rows, meta says {rows}")
        return stream

    def put(
        self,
        stream: L2Stream,
        app: str,
        length: int,
        seed: int,
        platform: PlatformConfig,
        l1_policy: str = "lru",
    ) -> Path:
        """Persist ``stream`` as a columnar bundle, atomically.

        The bundle is staged in a temp directory and published with one
        ``os.replace``.  If a concurrent writer published the same key
        first, theirs is kept (the contents are identical by
        construction) and the staged copy is discarded.
        """
        key = stream_key(app, length, seed, platform, l1_policy)
        bundle = self._bundle_dir(key)
        bundle.parent.mkdir(parents=True, exist_ok=True)
        tmp = Path(tempfile.mkdtemp(dir=bundle.parent, prefix=".tmp-"))
        try:
            for name, arr in stream.columns().items():
                np.save(tmp / f"{name}.npy", np.ascontiguousarray(arr), allow_pickle=False)
            meta = {
                "schema": SCHEMA_VERSION,
                "key": key,
                "rows": len(stream),
                "spec": {
                    "app": app,
                    "length": length,
                    "seed": seed,
                    "l1_policy": l1_policy,
                },
                "context": stream.context(),
            }
            (tmp / "meta.json").write_text(canonical_json(meta))
            os.replace(tmp, bundle)
        except OSError:
            # the target exists and is non-empty: a concurrent writer won
            shutil.rmtree(tmp, ignore_errors=True)
            if not (bundle / "meta.json").is_file():
                raise
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        self._tally("writes", "streamcache.write")
        return bundle

    def get_or_build(
        self,
        app: str,
        length: int,
        seed: int,
        platform: PlatformConfig,
        l1_policy: str = "lru",
    ) -> L2Stream:
        """The cached stream, building and persisting it on a miss.

        After a build the freshly published bundle is re-opened through
        the mmap path, so even the building process holds page-cache
        -backed column views rather than its private heap copy (the heap
        copy dies with this call).  If the re-open fails — e.g. a
        read-only cache directory — the in-heap build is returned and
        the caller still gets a correct stream.
        """
        stream = self.get(app, length, seed, platform, l1_policy)
        if stream is not None:
            return stream
        obs.inc("streamcache.build")
        built = l1_filter(suite_trace(app, length, seed), platform, policy=l1_policy)
        try:
            bundle = self.put(built, app, length, seed, platform, l1_policy)
            return self._read_bundle(bundle)
        except (OSError, ValueError, KeyError, TypeError):
            return built

    def flush_counters(self) -> dict[str, int]:
        """Fold unsaved tallies into ``stream_counters.json`` (locked)."""
        return self._counters.flush()

    def counters(self) -> dict[str, int]:
        """Live view: persisted counters plus this instance's tallies."""
        return self._counters.live()

    def stats(self) -> StoreStats:
        """Bundle count, on-disk bytes and lifetime counters."""
        entries = 0
        total = 0
        if self.streams_dir.is_dir():
            for bundle in self.streams_dir.glob("*/*"):
                if not bundle.is_dir() or bundle.name.startswith(".tmp-"):
                    continue
                entries += 1
                total += sum(f.stat().st_size for f in bundle.iterdir() if f.is_file())
        counters = self.counters()
        return StoreStats(root=self.root, entries=entries, total_bytes=total, **counters)

    def clear(self) -> int:
        """Delete every bundle (and the counter history); returns how
        many bundles were removed."""
        removed = 0
        if self.streams_dir.is_dir():
            for bundle in self.streams_dir.glob("*/*"):
                if bundle.is_dir():
                    shutil.rmtree(bundle, ignore_errors=True)
                    if not bundle.name.startswith(".tmp-"):
                        removed += 1
            for sub in self.streams_dir.iterdir():
                try:
                    sub.rmdir()
                except OSError:
                    pass
        self._counters.reset()
        return removed


def default_stream_cache() -> StreamCache | None:
    """The process-default stream cache, or None when caching is disabled.

    Shares the root (and the ``REPRO_CACHE_DISABLE`` switch) with
    :func:`~repro.engine.store.default_store`.
    """
    if os.environ.get(CACHE_DISABLE_ENV):
        return None
    return StreamCache(default_cache_dir())

"""Multi-core shared-L2 streams (extension beyond the paper).

The paper evaluates a single core, but every phone SoC shares its L2
among cores.  This module builds a multi-programmed shared-L2 stream:
one app per core, private L1s per core (each stream is already
L1-filtered), user address spaces made disjoint per core (separate
ASIDs), and — the physically important part — **one shared kernel
address space**: every core's syscalls walk the same kernel code and
data, so kernel blocks enjoy cross-core reuse in the shared L2 while
user blocks compete.

That asymmetry *amplifies* the paper's motivation with core count: the
kernel's share of useful L2 content grows, and so does the benefit of
giving it a protected segment.  ``benchmarks/bench_multicore.py``
quantifies it.
"""

from __future__ import annotations

import numpy as np

from repro.cache.hierarchy import L2Stream, l1_filter
from repro.config import DEFAULT_PLATFORM, PlatformConfig
from repro.trace.transform import remap_user_space
from repro.trace.workloads import suite_trace

__all__ = ["merge_streams", "multicore_stream"]

#: Per-core user address-space stride (ASID placement).
_ASID_STRIDE = 1 << 34


def merge_streams(streams: list[L2Stream], name: str | None = None) -> L2Stream:
    """Interleave per-core L2 streams by tick into one shared-L2 stream.

    The inputs must already be per-core L1-filtered streams with
    disjoint user address ranges (see :func:`multicore_stream`).
    Instruction counts add (they execute in parallel on separate
    cores); the duration is the longest core's.
    """
    if not streams:
        raise ValueError("need at least one stream")
    ticks = np.concatenate([s.ticks for s in streams])
    order = np.argsort(ticks, kind="stable")
    merged_l1i = streams[0].l1i_stats
    merged_l1d = streams[0].l1d_stats
    for s in streams[1:]:
        merged_l1i = merged_l1i.merge(s.l1i_stats)
        merged_l1d = merged_l1d.merge(s.l1d_stats)
    return L2Stream(
        name=name if name is not None else "+".join(s.name for s in streams),
        ticks=ticks[order],
        addrs=np.concatenate([s.addrs for s in streams])[order],
        privs=np.concatenate([s.privs for s in streams])[order],
        writes=np.concatenate([s.writes for s in streams])[order],
        demand=np.concatenate([s.demand for s in streams])[order],
        instructions=sum(s.instructions for s in streams),
        trace_accesses=sum(s.trace_accesses for s in streams),
        duration_ticks=max(s.duration_ticks for s in streams),
        l1i_stats=merged_l1i,
        l1d_stats=merged_l1d,
    )


def multicore_stream(
    apps: tuple[str, ...],
    length: int,
    platform: PlatformConfig = DEFAULT_PLATFORM,
    seed: int = 0,
) -> L2Stream:
    """Build the shared-L2 stream of ``len(apps)`` cores running ``apps``.

    Core *i* runs ``apps[i]`` (seeded per core so two cores running the
    same app do not execute in lock-step), its user space is remapped to
    ASID *i*, and its trace goes through its own private L1 pair before
    merging.
    """
    if not apps:
        raise ValueError("need at least one app")
    per_core = []
    for core, app in enumerate(apps):
        trace = suite_trace(app, length, seed=seed + core)
        trace = remap_user_space(trace, asid=core, stride=_ASID_STRIDE)
        per_core.append(l1_filter(trace, platform))
    return merge_streams(per_core)


def kernel_block_sharing(stream: L2Stream) -> float:
    """Fraction of distinct kernel blocks the merged stream touches more
    than once — a proxy for the cross-core kernel reuse the shared
    address space creates (user blocks, being per-ASID, cannot share).
    """
    kernel = stream.addrs[stream.privs == 1]
    if not len(kernel):
        return 0.0
    blocks, counts = np.unique(kernel // np.uint64(64), return_counts=True)
    return float(np.mean(counts > 1))

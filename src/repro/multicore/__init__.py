"""Multi-core shared-L2 extension: per-core L1s, shared kernel space."""

from repro.multicore.merge import kernel_block_sharing, merge_streams, multicore_stream

__all__ = ["kernel_block_sharing", "merge_streams", "multicore_stream"]

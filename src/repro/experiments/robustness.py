"""Seed robustness: the headline across independent trace generations.

The workload generator is stochastic; a result that only holds for seed
0 would be an artifact.  This experiment regenerates the whole suite
under several seeds and reports the headline's mean and spread.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.report import format_table
from repro.experiments.runner import EXPERIMENT_TRACE_LENGTH, suite_results
from repro.trace.workloads import APP_NAMES

__all__ = ["SeedRobustnessResult", "seed_robustness"]


@dataclass(frozen=True)
class SeedRobustnessResult:
    """Per-seed headline metrics plus mean/std."""

    seeds: tuple[int, ...]
    static_savings: tuple[float, ...]
    dynamic_savings: tuple[float, ...]
    static_losses: tuple[float, ...]
    dynamic_losses: tuple[float, ...]

    def render(self) -> str:
        rows = [
            [str(seed), f"{ss:.1%}", f"{ds:.1%}", f"{sl:+.2%}", f"{dl:+.2%}"]
            for seed, ss, ds, sl, dl in zip(
                self.seeds, self.static_savings, self.dynamic_savings,
                self.static_losses, self.dynamic_losses,
            )
        ]
        rows.append([
            "mean±std",
            f"{np.mean(self.static_savings):.1%}±{np.std(self.static_savings):.1%}",
            f"{np.mean(self.dynamic_savings):.1%}±{np.std(self.dynamic_savings):.1%}",
            f"{np.mean(self.static_losses):+.2%}",
            f"{np.mean(self.dynamic_losses):+.2%}",
        ])
        return format_table(
            "Seed robustness of the headline (suite mean per seed)",
            ["seed", "static saving", "dynamic saving", "static loss", "dynamic loss"],
            rows,
        )

    def static_saving_std(self) -> float:
        """Standard deviation of the static technique's saving."""
        return float(np.std(self.static_savings))


def seed_robustness(
    length: int = EXPERIMENT_TRACE_LENGTH,
    seeds: tuple[int, ...] = (0, 1, 2),
    apps: tuple[str, ...] = APP_NAMES,
) -> SeedRobustnessResult:
    """Measure the headline under each seed."""
    static_savings, dynamic_savings, static_losses, dynamic_losses = [], [], [], []
    for seed in seeds:
        bases = suite_results("baseline", length, apps, seed=seed)
        statics = suite_results("static-stt", length, apps, seed=seed)
        dynamics = suite_results("dynamic-stt", length, apps, seed=seed)
        s_energy, d_energy, s_loss, d_loss = [], [], [], []
        for app in apps:
            base, static, dynamic = bases[app], statics[app], dynamics[app]
            s_energy.append(static.l2_energy.total_j / base.l2_energy.total_j)
            d_energy.append(dynamic.l2_energy.total_j / base.l2_energy.total_j)
            s_loss.append(static.timing.perf_loss_vs(base.timing))
            d_loss.append(dynamic.timing.perf_loss_vs(base.timing))
        static_savings.append(1.0 - float(np.mean(s_energy)))
        dynamic_savings.append(1.0 - float(np.mean(d_energy)))
        static_losses.append(float(np.mean(s_loss)))
        dynamic_losses.append(float(np.mean(d_loss)))
    return SeedRobustnessResult(
        seeds=tuple(seeds),
        static_savings=tuple(static_savings),
        dynamic_savings=tuple(dynamic_savings),
        static_losses=tuple(static_losses),
        dynamic_losses=tuple(dynamic_losses),
    )

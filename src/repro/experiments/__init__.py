"""Experiment harness: one function per figure/table of the paper.

``figures`` and ``tables`` return result objects with ``render()``
methods; ``runner`` memoises the (design x app) grid so every experiment
in a process shares simulations.
"""

from repro.experiments.figures import (
    fig1_kernel_share,
    fig2_interference,
    fig3_size_sweep,
    fig4_static_space,
    fig5_intervals,
    fig6_energy_breakdown,
    fig7_dynamic_timeline,
    fig8_energy_summary,
)
from repro.experiments.characterization import (
    CharacterizationResult,
    characterize_suite,
)
from repro.experiments.export import export_grid_csv
from repro.experiments.pareto import ParetoPoint, ParetoResult, pareto_frontier
from repro.experiments.report import format_bars, format_percent, format_series, format_table
from repro.experiments.robustness import SeedRobustnessResult, seed_robustness
from repro.experiments.segments import (
    SegmentBreakdownResult,
    segment_breakdown,
)
from repro.experiments.sensitivity import (
    SensitivityResult,
    dram_latency_sensitivity,
    l2_latency_sensitivity,
)
from repro.experiments.runner import (
    EXPERIMENT_TRACE_LENGTH,
    canonical_result,
    experiment_stream,
    run_design_on,
    suite_results,
)
from repro.experiments.tables import (
    table1_configuration,
    table2_technology,
    table3_workloads,
    table4_performance,
)

__all__ = [
    "fig1_kernel_share",
    "fig2_interference",
    "fig3_size_sweep",
    "fig4_static_space",
    "fig5_intervals",
    "fig6_energy_breakdown",
    "fig7_dynamic_timeline",
    "fig8_energy_summary",
    "format_bars",
    "format_percent",
    "format_series",
    "format_table",
    "CharacterizationResult",
    "characterize_suite",
    "export_grid_csv",
    "ParetoPoint",
    "ParetoResult",
    "pareto_frontier",
    "SeedRobustnessResult",
    "seed_robustness",
    "SegmentBreakdownResult",
    "segment_breakdown",
    "SensitivityResult",
    "dram_latency_sensitivity",
    "l2_latency_sensitivity",
    "EXPERIMENT_TRACE_LENGTH",
    "canonical_result",
    "experiment_stream",
    "run_design_on",
    "suite_results",
    "table1_configuration",
    "table2_technology",
    "table3_workloads",
    "table4_performance",
]

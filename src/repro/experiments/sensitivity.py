"""Sensitivity analysis: do the conclusions survive parameter changes?

The headline numbers depend on modelling constants (DRAM latency, L2
latency, write-contention factor) that the paper's testbed pins and we
calibrate.  These sweeps vary each one and re-measure the headline, so a
reader can see which conclusions are robust and which are knife-edge.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.config import DEFAULT_PLATFORM
from repro.core.baseline import BaselineDesign
from repro.core.multi_retention import multi_retention_design
from repro.experiments.report import format_table
from repro.experiments.runner import EXPERIMENT_TRACE_LENGTH, experiment_stream

__all__ = ["SensitivityResult", "dram_latency_sensitivity", "l2_latency_sensitivity"]


@dataclass(frozen=True)
class SensitivityRow:
    """Headline metrics at one parameter value."""

    parameter_value: float
    static_stt_energy_norm: float
    static_stt_perf_loss: float


@dataclass(frozen=True)
class SensitivityResult:
    """A one-parameter sweep of the static-technique headline."""

    parameter: str
    rows: tuple[SensitivityRow, ...]

    def render(self) -> str:
        return format_table(
            f"Sensitivity: static-stt headline vs {self.parameter}",
            [self.parameter, "norm. energy", "perf loss"],
            [
                [f"{r.parameter_value:g}", f"{r.static_stt_energy_norm:.3f}",
                 f"{r.static_stt_perf_loss:+.2%}"]
                for r in self.rows
            ],
        )

    def energy_spread(self) -> float:
        """Max-min normalized energy across the sweep."""
        values = [r.static_stt_energy_norm for r in self.rows]
        return max(values) - min(values)


def _headline_at(platform, apps, length) -> tuple[float, float]:
    energy, loss = [], []
    for app in apps:
        stream = experiment_stream(app, length)
        base = BaselineDesign().run(stream, platform)
        stt = multi_retention_design().run(stream, platform)
        energy.append(stt.l2_energy.total_j / base.l2_energy.total_j)
        loss.append(stt.timing.perf_loss_vs(base.timing))
    return float(np.mean(energy)), float(np.mean(loss))


def dram_latency_sensitivity(
    length: int = EXPERIMENT_TRACE_LENGTH,
    apps: tuple[str, ...] = ("browser", "game"),
    latencies: tuple[int, ...] = (80, 140, 220, 300),
) -> SensitivityResult:
    """Sweep the flat DRAM latency."""
    rows = []
    for dram in latencies:
        platform = replace(
            DEFAULT_PLATFORM,
            latency=replace(DEFAULT_PLATFORM.latency, dram=dram),
        )
        energy, loss = _headline_at(platform, apps, length)
        rows.append(SensitivityRow(dram, energy, loss))
    return SensitivityResult("DRAM latency (cycles)", tuple(rows))


def l2_latency_sensitivity(
    length: int = EXPERIMENT_TRACE_LENGTH,
    apps: tuple[str, ...] = ("browser", "game"),
    latencies: tuple[int, ...] = (12, 20, 30),
) -> SensitivityResult:
    """Sweep the L2 hit latency."""
    rows = []
    for l2_hit in latencies:
        platform = replace(
            DEFAULT_PLATFORM,
            latency=replace(DEFAULT_PLATFORM.latency, l2_hit=l2_hit),
        )
        energy, loss = _headline_at(platform, apps, length)
        rows.append(SensitivityRow(l2_hit, energy, loss))
    return SensitivityResult("L2 hit latency (cycles)", tuple(rows))

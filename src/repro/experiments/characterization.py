"""Workload characterization: the extended Table 3.

Cache papers justify their workload choice with a characterization
table; this one reports, per app: dynamic footprints, write ratio,
kernel shares at trace and L2 level, L1 miss rates and reuse percentiles
— everything a reader needs to judge whether the synthetic suite behaves
like the interactive apps it stands in for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.report import format_table
from repro.experiments.runner import EXPERIMENT_TRACE_LENGTH, experiment_stream
from repro.trace.stats import footprint_bytes
from repro.trace.workloads import APP_NAMES, suite_trace

__all__ = ["CharacterizationRow", "CharacterizationResult", "characterize_suite"]


@dataclass(frozen=True)
class CharacterizationRow:
    """One app's measured properties."""

    app: str
    footprint_mb: float
    write_fraction: float
    trace_kernel_share: float
    l2_kernel_share: float
    l1i_miss_rate: float
    l1d_miss_rate: float
    l2_traffic_fraction: float  # L2 accesses / trace accesses


@dataclass(frozen=True)
class CharacterizationResult:
    """The suite characterization table."""

    rows: tuple[CharacterizationRow, ...]

    def render(self) -> str:
        table_rows = [
            [
                r.app,
                f"{r.footprint_mb:.1f}",
                f"{r.write_fraction:.1%}",
                f"{r.trace_kernel_share:.1%}",
                f"{r.l2_kernel_share:.1%}",
                f"{r.l1i_miss_rate:.1%}",
                f"{r.l1d_miss_rate:.1%}",
                f"{r.l2_traffic_fraction:.1%}",
            ]
            for r in self.rows
        ]
        means = [
            "MEAN",
            f"{np.mean([r.footprint_mb for r in self.rows]):.1f}",
            f"{np.mean([r.write_fraction for r in self.rows]):.1%}",
            f"{np.mean([r.trace_kernel_share for r in self.rows]):.1%}",
            f"{np.mean([r.l2_kernel_share for r in self.rows]):.1%}",
            f"{np.mean([r.l1i_miss_rate for r in self.rows]):.1%}",
            f"{np.mean([r.l1d_miss_rate for r in self.rows]):.1%}",
            f"{np.mean([r.l2_traffic_fraction for r in self.rows]):.1%}",
        ]
        table_rows.append(means)
        return format_table(
            "Extended Table 3: workload characterization",
            ["app", "fp (MB)", "stores", "kern (trace)", "kern (L2)",
             "L1I mr", "L1D mr", "L2 traffic"],
            table_rows,
        )


def characterize_suite(
    length: int = EXPERIMENT_TRACE_LENGTH, apps: tuple[str, ...] = APP_NAMES
) -> CharacterizationResult:
    """Measure every app's trace- and hierarchy-level properties."""
    rows = []
    for app in apps:
        trace = suite_trace(app, length)
        stream = experiment_stream(app, length)
        rows.append(
            CharacterizationRow(
                app=app,
                footprint_mb=footprint_bytes(trace) / (1024 * 1024),
                write_fraction=trace.write_fraction(),
                trace_kernel_share=trace.kernel_fraction(),
                l2_kernel_share=stream.kernel_share(),
                l1i_miss_rate=stream.l1i_stats.miss_rate,
                l1d_miss_rate=stream.l1d_stats.miss_rate,
                l2_traffic_fraction=len(stream.ticks) / len(trace),
            )
        )
    return CharacterizationResult(tuple(rows))

"""Per-segment breakdown: where does each design spend and miss?

The whole-L2 numbers hide the asymmetry the paper exploits.  This
experiment splits every design's misses and energy between the user and
kernel sides, showing (a) the kernel segment's outsized hit contribution
per byte and (b) which side pays the STT write premium.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.designs import DESIGN_NAMES
from repro.experiments.report import format_table
from repro.experiments.runner import EXPERIMENT_TRACE_LENGTH, canonical_result
from repro.trace.workloads import APP_NAMES
from repro.types import Privilege

__all__ = ["SegmentBreakdownRow", "SegmentBreakdownResult", "segment_breakdown"]


@dataclass(frozen=True)
class SegmentBreakdownRow:
    """Suite-mean per-privilege metrics of one design."""

    design: str
    user_miss_rate: float
    kernel_miss_rate: float
    user_energy_uj: float
    kernel_energy_uj: float
    kernel_energy_share: float


@dataclass(frozen=True)
class SegmentBreakdownResult:
    """Rows for every canonical design."""

    rows: tuple[SegmentBreakdownRow, ...]

    def render(self) -> str:
        return format_table(
            "Per-segment breakdown (suite mean)",
            ["design", "user mr", "kernel mr", "user E (uJ)", "kernel E (uJ)",
             "kernel E share"],
            [
                [r.design, f"{r.user_miss_rate:.2%}", f"{r.kernel_miss_rate:.2%}",
                 f"{r.user_energy_uj:.1f}", f"{r.kernel_energy_uj:.1f}",
                 f"{r.kernel_energy_share:.1%}"]
                for r in self.rows
            ],
        )


def _split_energy(result) -> tuple[float, float]:
    """(user, kernel) energy in J; the shared baseline splits by access share."""
    names = {s.name for s in result.segments}
    if names == {"shared"}:
        seg = result.segments[0]
        kernel_share = seg.stats.access_share_of(Privilege.KERNEL)
        return seg.energy.total_j * (1 - kernel_share), seg.energy.total_j * kernel_share
    user = sum(s.energy.total_j for s in result.segments if s.name.startswith("user"))
    kernel = sum(s.energy.total_j for s in result.segments if s.name.startswith("kernel"))
    return user, kernel


def segment_breakdown(
    length: int = EXPERIMENT_TRACE_LENGTH, apps: tuple[str, ...] = APP_NAMES
) -> SegmentBreakdownResult:
    """Per-privilege miss rates and energy for each canonical design."""
    rows = []
    for design in DESIGN_NAMES:
        user_mr, kernel_mr, user_e, kernel_e = [], [], [], []
        for app in apps:
            r = canonical_result(design, app, length)
            stats = r.l2_stats
            user_mr.append(stats.miss_rate_of(Privilege.USER))
            kernel_mr.append(stats.miss_rate_of(Privilege.KERNEL))
            ue, ke = _split_energy(r)
            user_e.append(ue)
            kernel_e.append(ke)
        mean_user_e = float(np.mean(user_e)) * 1e6
        mean_kernel_e = float(np.mean(kernel_e)) * 1e6
        rows.append(SegmentBreakdownRow(
            design=design,
            user_miss_rate=float(np.mean(user_mr)),
            kernel_miss_rate=float(np.mean(kernel_mr)),
            user_energy_uj=mean_user_e,
            kernel_energy_uj=mean_kernel_e,
            kernel_energy_share=mean_kernel_e / (mean_user_e + mean_kernel_e)
            if (mean_user_e + mean_kernel_e) else 0.0,
        ))
    return SegmentBreakdownResult(tuple(rows))

"""CSV export of experiment results (for external plotting).

Academic consumers of this library will want the raw numbers in their
own plotting pipeline; these helpers dump the canonical grid and any
rendered figure/table object that exposes rows.
"""

from __future__ import annotations

import csv
import os

from repro.core.designs import DESIGN_NAMES
from repro.experiments.runner import EXPERIMENT_TRACE_LENGTH, canonical_result
from repro.trace.workloads import APP_NAMES

__all__ = ["export_grid_csv"]

_GRID_FIELDS = [
    "design", "app", "l2_accesses", "demand_miss_rate", "cross_privilege_evictions",
    "expiry_invalidations", "refresh_writes", "leakage_j", "read_j", "write_j",
    "refresh_j", "total_energy_j", "dram_j", "busy_cycles", "ipc",
    "energy_delay_product",
]


def export_grid_csv(
    path: str | os.PathLike,
    length: int = EXPERIMENT_TRACE_LENGTH,
    apps: tuple[str, ...] = APP_NAMES,
    designs: tuple[str, ...] = DESIGN_NAMES,
) -> int:
    """Write the (design x app) result grid to ``path``; returns row count.

    The energy-delay product column is L2 energy x busy seconds — the
    standard combined metric for energy/performance trades.
    """
    rows = 0
    with open(path, "w", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=_GRID_FIELDS)
        writer.writeheader()
        for design in designs:
            for app in apps:
                r = canonical_result(design, app, length)
                stats = r.l2_stats
                e = r.l2_energy
                busy_s = r.timing.busy_cycles / 1e9
                writer.writerow({
                    "design": design,
                    "app": app,
                    "l2_accesses": stats.accesses,
                    "demand_miss_rate": f"{stats.demand_miss_rate:.6f}",
                    "cross_privilege_evictions": stats.cross_privilege_evictions,
                    "expiry_invalidations": stats.expiry_invalidations,
                    "refresh_writes": stats.refresh_writes,
                    "leakage_j": f"{e.leakage_j:.9e}",
                    "read_j": f"{e.read_j:.9e}",
                    "write_j": f"{e.write_j:.9e}",
                    "refresh_j": f"{e.refresh_j:.9e}",
                    "total_energy_j": f"{e.total_j:.9e}",
                    "dram_j": f"{r.dram_j:.9e}",
                    "busy_cycles": f"{r.timing.busy_cycles:.0f}",
                    "ipc": f"{r.timing.ipc:.4f}",
                    "energy_delay_product": f"{e.total_j * busy_s:.9e}",
                })
                rows += 1
    return rows

"""The paper's figures, reconstructed (see DESIGN.md for provenance).

Each ``figN_*`` function runs the experiment behind one figure and
returns a small result object carrying both the raw rows and a
``render()`` producing the ASCII artifact the benchmarks print.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.hierarchy import L2Stream
from repro.config import DEFAULT_PLATFORM, CacheGeometry
from repro.core.baseline import BaselineDesign
from repro.core.designs import DESIGN_NAMES
from repro.core.search import PartitionPoint, find_static_partition, sweep_partitions
from repro.core.static_partition import StaticPartitionDesign
from repro.energy.technology import RETENTION_CLASSES
from repro.experiments.report import format_bars, format_percent, format_series, format_table
from repro.experiments.runner import (
    EXPERIMENT_TRACE_LENGTH,
    canonical_result,
    experiment_stream,
    run_design_on,
)
from repro.trace.workloads import APP_NAMES
from repro.types import Privilege

__all__ = [
    "fig1_kernel_share",
    "fig2_interference",
    "fig3_size_sweep",
    "fig4_static_space",
    "fig5_intervals",
    "fig6_energy_breakdown",
    "fig7_dynamic_timeline",
    "fig8_energy_summary",
]


# ---------------------------------------------------------------------------
# Figure 1 — kernel share of L2 accesses


@dataclass(frozen=True)
class KernelShareResult:
    """Per-app kernel share of L2 accesses (the >40% motivation)."""

    shares: dict[str, float]

    @property
    def mean(self) -> float:
        """Suite mean kernel share."""
        return float(np.mean(list(self.shares.values())))

    def render(self) -> str:
        rows = [[app, format_percent(v)] for app, v in self.shares.items()]
        rows.append(["MEAN", format_percent(self.mean)])
        return format_table(
            "Figure 1: OS-kernel share of L2 cache accesses",
            ["app", "kernel share"],
            rows,
        )


def fig1_kernel_share(
    length: int = EXPERIMENT_TRACE_LENGTH, apps: tuple[str, ...] = APP_NAMES
) -> KernelShareResult:
    """Kernel share of L2 accesses per app (paper: >40% on average)."""
    shares = {app: experiment_stream(app, length).kernel_share() for app in apps}
    return KernelShareResult(shares)


# ---------------------------------------------------------------------------
# Figure 2 — user/kernel interference in the shared L2


@dataclass(frozen=True)
class InterferenceRow:
    """Shared-vs-partitioned comparison at equal total capacity."""

    app: str
    shared_miss_rate: float
    partitioned_miss_rate: float
    cross_evictions_per_kilo_access: float

    @property
    def interference_penalty(self) -> float:
        """Miss-rate increase attributable to cross-privilege interference."""
        return self.shared_miss_rate - self.partitioned_miss_rate


@dataclass(frozen=True)
class InterferenceResult:
    """Figure 2 rows."""

    rows: tuple[InterferenceRow, ...]

    def render(self) -> str:
        table_rows = [
            [
                r.app,
                format_percent(r.shared_miss_rate, 2),
                format_percent(r.partitioned_miss_rate, 2),
                format_percent(r.interference_penalty, 2),
                f"{r.cross_evictions_per_kilo_access:.1f}",
            ]
            for r in self.rows
        ]
        return format_table(
            "Figure 2: user/kernel interference in the shared L2 "
            "(vs. interference-free partition of equal total size)",
            ["app", "shared mr", "partitioned mr", "penalty", "x-evict/kacc"],
            table_rows,
        )


def fig2_interference(
    length: int = EXPERIMENT_TRACE_LENGTH, apps: tuple[str, ...] = APP_NAMES
) -> InterferenceResult:
    """Shared L2 vs an equal-total-size partition (interference isolated).

    The partition splits the baseline's 16 ways 10+6 (roughly the
    suite's user/kernel access ratio), so capacity is identical and the
    only difference is that the two streams can no longer evict each
    other.  Cross-privilege evictions per thousand L2 accesses quantify
    the interference directly.
    """
    rows = []
    for app in apps:
        stream = experiment_stream(app, length)
        shared = run_design_on(BaselineDesign(), app, length=length)
        equal = run_design_on(
            StaticPartitionDesign(user_ways=10, kernel_ways=6, name="equal-partition"),
            app,
            length=length,
        )
        xevict = shared.l2_stats.cross_privilege_evictions / max(1, len(stream)) * 1000.0
        rows.append(
            InterferenceRow(
                app=app,
                shared_miss_rate=shared.l2_stats.demand_miss_rate,
                partitioned_miss_rate=equal.l2_stats.demand_miss_rate,
                cross_evictions_per_kilo_access=xevict,
            )
        )
    return InterferenceResult(tuple(rows))


# ---------------------------------------------------------------------------
# Figure 3 — shared-L2 miss rate vs cache size


@dataclass(frozen=True)
class SizeSweepResult:
    """Mean shared-L2 miss rate per capacity."""

    points: tuple[tuple[int, float], ...]  # (size_bytes, mean miss rate)

    def render(self) -> str:
        return format_series(
            "Figure 3: shared-L2 demand miss rate vs capacity (suite mean)",
            "size",
            "miss rate",
            [(f"{size // 1024} KB", format_percent(mr, 2)) for size, mr in self.points],
        )


def fig3_size_sweep(
    length: int = EXPERIMENT_TRACE_LENGTH,
    apps: tuple[str, ...] = APP_NAMES,
    sizes_kb: tuple[int, ...] = (128, 256, 512, 768, 1024, 2048),
) -> SizeSweepResult:
    """Sweep the shared SRAM L2 capacity.

    The sweep holds the set count at the baseline's 1024 and varies the
    way count (2..32) — exactly what shrinking/growing a way-organised
    array does.
    """
    points = []
    for size_kb in sizes_kb:
        if size_kb % 64:
            raise ValueError(f"sizes must be multiples of 64 KB, got {size_kb}")
        geometry = CacheGeometry(size_kb * 1024, size_kb // 64)
        rates = [
            run_design_on(BaselineDesign(geometry=geometry), app, length=length)
            .l2_stats.demand_miss_rate
            for app in apps
        ]
        points.append((size_kb * 1024, float(np.mean(rates))))
    return SizeSweepResult(tuple(points))


# ---------------------------------------------------------------------------
# Figure 4 — static partition design space


@dataclass(frozen=True)
class StaticSpaceResult:
    """The (user, kernel) way sweep and the chosen shrunk point."""

    points: tuple[PartitionPoint, ...]
    chosen: PartitionPoint
    baseline_miss_rate: float

    def render(self) -> str:
        rows = [
            [
                f"{p.user_ways}u+{p.kernel_ways}k",
                f"{p.total_bytes // 1024} KB",
                format_percent(p.demand_miss_rate, 2),
                format_percent(p.user_miss_rate, 2),
                format_percent(p.kernel_miss_rate, 2),
            ]
            for p in self.points
        ]
        chosen = (
            f"baseline (1024 KB shared) mr = {format_percent(self.baseline_miss_rate, 2)}; "
            f"chosen: {self.chosen.user_ways}u+{self.chosen.kernel_ways}k "
            f"({self.chosen.total_bytes // 1024} KB) at "
            f"{format_percent(self.chosen.demand_miss_rate, 2)}"
        )
        return (
            format_table(
                "Figure 4: static partition design space (suite mean)",
                ["config", "total", "miss rate", "user mr", "kernel mr"],
                rows,
            )
            + "\n"
            + chosen
        )


def fig4_static_space(
    length: int = EXPERIMENT_TRACE_LENGTH,
    apps: tuple[str, ...] = ("browser", "social", "game"),
    user_way_options: tuple[int, ...] = (4, 6, 8, 10),
    kernel_way_options: tuple[int, ...] = (2, 4, 6),
    tolerance: float = 0.10,
) -> StaticSpaceResult:
    """Sweep partition sizes and pick the smallest admissible point.

    Defaults to three representative apps to keep the sweep tractable;
    pass ``apps=APP_NAMES`` for the full-suite version.
    """
    streams: list[L2Stream] = [experiment_stream(app, length) for app in apps]
    points = sweep_partitions(streams, DEFAULT_PLATFORM, user_way_options, kernel_way_options)
    chosen = find_static_partition(
        streams, DEFAULT_PLATFORM, tolerance, user_way_options, kernel_way_options
    )
    baseline = float(
        np.mean(
            [
                run_design_on(BaselineDesign(), app, length=length).l2_stats.demand_miss_rate
                for app in apps
            ]
        )
    )
    return StaticSpaceResult(tuple(points), chosen, baseline)


# ---------------------------------------------------------------------------
# Figure 5 — access-interval distributions of the separated segments


@dataclass(frozen=True)
class IntervalRow:
    """Interval percentiles of one privilege's L2 stream (in ms)."""

    app: str
    privilege: str
    p50_ms: float
    p90_ms: float
    p99_ms: float


@dataclass(frozen=True)
class IntervalsResult:
    """Figure 5 rows plus the retention windows they motivate."""

    rows: tuple[IntervalRow, ...]

    def render(self) -> str:
        table_rows = [
            [r.app, r.privilege, f"{r.p50_ms:.2f}", f"{r.p90_ms:.2f}", f"{r.p99_ms:.2f}"]
            for r in self.rows
        ]
        windows = ", ".join(
            f"{name}={cls.retention_s * 1e3:.0f} ms" if cls.retention_s else f"{name}=inf"
            for name, cls in RETENTION_CLASSES.items()
        )
        return (
            format_table(
                "Figure 5: block inter-access intervals of the separated "
                "user/kernel L2 streams",
                ["app", "segment", "p50 (ms)", "p90 (ms)", "p99 (ms)"],
                table_rows,
                align_left_cols=2,
            )
            + f"\nretention windows: {windows}"
        )


def _privilege_intervals_ms(stream: L2Stream, privilege: Privilege, clock_hz: float) -> np.ndarray:
    """Same-block tick gaps of one privilege's rows, in milliseconds."""
    mask = stream.privs == np.uint8(privilege)
    blocks = (stream.addrs[mask] // np.uint64(64)).astype(np.int64)
    ticks = stream.ticks[mask].astype(np.int64)
    order = np.argsort(blocks, kind="stable")
    sb, st = blocks[order], ticks[order]
    gaps = (st[1:] - st[:-1])[sb[1:] == sb[:-1]]
    return gaps / clock_hz * 1e3


def fig5_intervals(
    length: int = EXPERIMENT_TRACE_LENGTH, apps: tuple[str, ...] = APP_NAMES
) -> IntervalsResult:
    """Interval percentiles per privilege — why the segments get
    different STT-RAM retention classes."""
    rows = []
    clock = DEFAULT_PLATFORM.clock_hz
    for app in apps:
        stream = experiment_stream(app, length)
        for priv in (Privilege.USER, Privilege.KERNEL):
            ms = _privilege_intervals_ms(stream, priv, clock)
            if not len(ms):
                continue
            rows.append(
                IntervalRow(
                    app=app,
                    privilege=priv.label,
                    p50_ms=float(np.percentile(ms, 50)),
                    p90_ms=float(np.percentile(ms, 90)),
                    p99_ms=float(np.percentile(ms, 99)),
                )
            )
    return IntervalsResult(tuple(rows))


# ---------------------------------------------------------------------------
# Figure 6 — energy breakdown per design


@dataclass(frozen=True)
class EnergyBreakdownRow:
    """Suite-mean energy components of one design (microjoules)."""

    design: str
    leakage_uj: float
    read_uj: float
    write_uj: float
    refresh_uj: float
    normalized_total: float


@dataclass(frozen=True)
class EnergyBreakdownResult:
    """Figure 6 rows."""

    rows: tuple[EnergyBreakdownRow, ...]

    def render(self) -> str:
        table_rows = [
            [
                r.design,
                f"{r.leakage_uj:.1f}",
                f"{r.read_uj:.1f}",
                f"{r.write_uj:.1f}",
                f"{r.refresh_uj:.1f}",
                f"{r.normalized_total:.3f}",
            ]
            for r in self.rows
        ]
        return format_table(
            "Figure 6: L2 energy breakdown per design (suite mean, uJ)",
            ["design", "leakage", "read", "write", "refresh", "norm."],
            table_rows,
        )


def fig6_energy_breakdown(
    length: int = EXPERIMENT_TRACE_LENGTH, apps: tuple[str, ...] = APP_NAMES
) -> EnergyBreakdownResult:
    """Mean leakage/read/write/refresh energy of each canonical design."""
    rows = []
    base_totals = [canonical_result("baseline", app, length).l2_energy.total_j for app in apps]
    for design in DESIGN_NAMES:
        leak, read, write, refresh, norm = [], [], [], [], []
        for app, base_total in zip(apps, base_totals):
            e = canonical_result(design, app, length).l2_energy
            leak.append(e.leakage_j)
            read.append(e.read_j)
            write.append(e.write_j)
            refresh.append(e.refresh_j)
            norm.append(e.total_j / base_total)
        rows.append(
            EnergyBreakdownRow(
                design=design,
                leakage_uj=float(np.mean(leak)) * 1e6,
                read_uj=float(np.mean(read)) * 1e6,
                write_uj=float(np.mean(write)) * 1e6,
                refresh_uj=float(np.mean(refresh)) * 1e6,
                normalized_total=float(np.mean(norm)),
            )
        )
    return EnergyBreakdownResult(tuple(rows))


# ---------------------------------------------------------------------------
# Figure 7 — dynamic partition way timeline


@dataclass(frozen=True)
class DynamicTimelineResult:
    """Powered way counts of both segments over time for one app."""

    app: str
    ticks: tuple[int, ...]
    user_ways: tuple[int, ...]
    kernel_ways: tuple[int, ...]
    mean_user_ways: float
    mean_kernel_ways: float
    static_total_ways: int

    def render(self, samples: int = 24) -> str:
        n = len(self.ticks)
        idx = np.linspace(0, n - 1, min(samples, n)).astype(int)
        rows = [
            [
                f"{self.ticks[i] / 1e6:.1f}M",
                self.user_ways[i],
                self.kernel_ways[i],
                self.user_ways[i] + self.kernel_ways[i],
            ]
            for i in idx
        ]
        footer = (
            f"time-mean powered ways: user {self.mean_user_ways:.2f}, "
            f"kernel {self.mean_kernel_ways:.2f} "
            f"(static design holds {self.static_total_ways} ways at all times)"
        )
        return (
            format_table(
                f"Figure 7: dynamic partition way timeline ({self.app})",
                ["tick", "user ways", "kernel ways", "total"],
                rows,
            )
            + "\n"
            + footer
        )


def fig7_dynamic_timeline(
    app: str = "browser", length: int = EXPERIMENT_TRACE_LENGTH
) -> DynamicTimelineResult:
    """Epoch-by-epoch powered way counts of the dynamic design."""
    result = canonical_result("dynamic-stt", app, length)
    ticks = result.extras["timeline_ticks"]
    uw = result.extras["timeline_user_ways"]
    kw = result.extras["timeline_kernel_ways"]
    return DynamicTimelineResult(
        app=app,
        ticks=tuple(ticks),
        user_ways=tuple(uw),
        kernel_ways=tuple(kw),
        mean_user_ways=float(np.mean(uw)),
        mean_kernel_ways=float(np.mean(kw)),
        static_total_ways=12,
    )


# ---------------------------------------------------------------------------
# Figure 8 — normalized L2 energy per app per design (the headline)


@dataclass(frozen=True)
class EnergySummaryResult:
    """Normalized energy per (app, design) plus suite means."""

    normalized: dict[str, dict[str, float]]  # app -> design -> normalized energy

    def mean(self, design: str) -> float:
        """Suite-mean normalized energy of ``design``."""
        return float(np.mean([v[design] for v in self.normalized.values()]))

    def saving(self, design: str) -> float:
        """Suite-mean energy saving of ``design`` vs the baseline."""
        return 1.0 - self.mean(design)

    def render(self) -> str:
        designs = DESIGN_NAMES
        rows = [
            [app] + [f"{self.normalized[app][d]:.3f}" for d in designs]
            for app in self.normalized
        ]
        rows.append(["MEAN"] + [f"{self.mean(d):.3f}" for d in designs])
        table = format_table(
            "Figure 8: normalized L2 energy per design (baseline = 1.000)",
            ["app", *designs],
            rows,
        )
        bars = format_bars(
            "suite mean:",
            [(d, self.mean(d)) for d in designs],
        )
        return table + "\n" + bars


def fig8_energy_summary(
    length: int = EXPERIMENT_TRACE_LENGTH, apps: tuple[str, ...] = APP_NAMES
) -> EnergySummaryResult:
    """The headline result: per-app normalized L2 energy of all designs."""
    normalized: dict[str, dict[str, float]] = {}
    for app in apps:
        base = canonical_result("baseline", app, length).l2_energy.total_j
        normalized[app] = {
            design: canonical_result(design, app, length).l2_energy.total_j / base
            for design in DESIGN_NAMES
        }
    return EnergySummaryResult(normalized)

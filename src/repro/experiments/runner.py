"""Cached execution of the canonical designs over the workload suite.

Every figure and table draws on the same grid of runs — (design x app)
at the experiment trace length.  Since the engine landed this module is
a thin shim over :mod:`repro.engine`: results come from the persistent
on-disk store when available (so a fresh process no longer re-pays the
grid), fall back to simulation otherwise, and are additionally memoised
per process so repeated reads within one pytest/bench session are free.
"""

from __future__ import annotations

from functools import lru_cache

from repro.cache.hierarchy import L2Stream, l1_filter
from repro.config import DEFAULT_PLATFORM, PlatformConfig
from repro.core.designs import DESIGN_NAMES, make_design
from repro.core.result import DesignResult
from repro.engine.spec import EXPERIMENT_TRACE_LENGTH, JobSpec
from repro.engine.store import default_store
from repro.engine.streamcache import default_stream_cache
from repro.trace.workloads import APP_NAMES, suite_trace

__all__ = [
    "EXPERIMENT_TRACE_LENGTH",
    "experiment_stream",
    "canonical_result",
    "suite_results",
    "run_design_on",
]


@lru_cache(maxsize=64)
def experiment_stream(
    app: str,
    length: int = EXPERIMENT_TRACE_LENGTH,
    seed: int = 0,
    platform: PlatformConfig = DEFAULT_PLATFORM,
) -> L2Stream:
    """L1-filtered L2 stream for ``app`` on ``platform`` (cached).

    A thin lookup over the persistent
    :class:`~repro.engine.streamcache.StreamCache`: the stream is built
    at most once per machine, and what this memo holds are zero-copy
    memory-mapped column views backed by the kernel page cache — not
    private heap copies kept alive for the process lifetime.  With
    caching disabled (``REPRO_CACHE_DISABLE``) the stream is built
    in-process as before.
    """
    cache = default_stream_cache()
    if cache is None:
        return l1_filter(suite_trace(app, length, seed), platform)
    stream = cache.get_or_build(app, length, seed, platform)
    cache.flush_counters()
    return stream


@lru_cache(maxsize=256)
def canonical_result(
    design_name: str,
    app: str,
    length: int = EXPERIMENT_TRACE_LENGTH,
    seed: int = 0,
    platform: PlatformConfig = DEFAULT_PLATFORM,
) -> DesignResult:
    """Run one canonical design on one app (store-backed, memoised).

    The persistent store is consulted first (keyed by the full
    :class:`~repro.engine.spec.JobSpec`, so seeds and platforms never
    collide); a fresh simulation is written back for the next process.
    """
    if design_name not in DESIGN_NAMES:
        raise ValueError(f"unknown design {design_name!r}; choose from {DESIGN_NAMES}")
    spec = JobSpec(design=design_name, app=app, length=length, seed=seed, platform=platform)
    store = default_store()
    if store is not None:
        cached = store.get(spec)
        if cached is not None:
            return cached
    design = make_design(design_name)
    result = design.run(experiment_stream(app, length, seed, platform), platform)
    if store is not None:
        store.put(spec, result)
    return result


def suite_results(
    design_name: str,
    length: int = EXPERIMENT_TRACE_LENGTH,
    apps: tuple[str, ...] = APP_NAMES,
    seed: int = 0,
) -> dict[str, DesignResult]:
    """One result per app for ``design_name``, in suite order."""
    return {app: canonical_result(design_name, app, length, seed) for app in apps}


def run_design_on(
    design,
    app: str,
    platform: PlatformConfig = DEFAULT_PLATFORM,
    length: int = EXPERIMENT_TRACE_LENGTH,
    seed: int = 0,
) -> DesignResult:
    """Run an arbitrary (non-canonical) design instance on one app.

    The stream is filtered through ``platform``'s L1s — a non-default
    platform really sees its own L1 behaviour, not the default one's.
    """
    return design.run(experiment_stream(app, length, seed, platform), platform)

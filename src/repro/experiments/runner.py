"""Cached execution of the canonical designs over the workload suite.

Every figure and table draws on the same grid of runs — (design x app) at
the experiment trace length — so the runner memoises L1-filtered streams
and design results per process.  Running all benchmarks in one pytest
session therefore pays for each simulation exactly once.
"""

from __future__ import annotations

from functools import lru_cache

from repro.cache.hierarchy import L2Stream, l1_filter
from repro.config import DEFAULT_PLATFORM, PlatformConfig
from repro.core.designs import DESIGN_NAMES, make_design
from repro.core.result import DesignResult
from repro.trace.workloads import APP_NAMES, suite_trace

__all__ = [
    "EXPERIMENT_TRACE_LENGTH",
    "experiment_stream",
    "canonical_result",
    "suite_results",
]

#: Accesses per app trace in the canonical experiments.  Long enough to
#: amortise L2 cold-start (each warm block is touched ~15+ times at the
#: L2) while keeping a full 8-app x 4-design grid under two minutes.
EXPERIMENT_TRACE_LENGTH = 720_000


@lru_cache(maxsize=64)
def experiment_stream(
    app: str,
    length: int = EXPERIMENT_TRACE_LENGTH,
    seed: int = 0,
) -> L2Stream:
    """L1-filtered L2 stream for ``app`` on the default platform (cached)."""
    return l1_filter(suite_trace(app, length, seed), DEFAULT_PLATFORM)


@lru_cache(maxsize=256)
def canonical_result(
    design_name: str,
    app: str,
    length: int = EXPERIMENT_TRACE_LENGTH,
    seed: int = 0,
) -> DesignResult:
    """Run one canonical design on one app (cached per process)."""
    if design_name not in DESIGN_NAMES:
        raise ValueError(f"unknown design {design_name!r}; choose from {DESIGN_NAMES}")
    design = make_design(design_name)
    return design.run(experiment_stream(app, length, seed), DEFAULT_PLATFORM)


def suite_results(
    design_name: str,
    length: int = EXPERIMENT_TRACE_LENGTH,
    apps: tuple[str, ...] = APP_NAMES,
) -> dict[str, DesignResult]:
    """One result per app for ``design_name``, in suite order."""
    return {app: canonical_result(design_name, app, length) for app in apps}


def run_design_on(
    design,
    app: str,
    platform: PlatformConfig = DEFAULT_PLATFORM,
    length: int = EXPERIMENT_TRACE_LENGTH,
) -> DesignResult:
    """Run an arbitrary (non-canonical) design instance on one app."""
    return design.run(experiment_stream(app, length), platform)

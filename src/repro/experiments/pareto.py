"""Energy/performance Pareto frontier across all implemented designs.

The paper's two techniques are points in a larger space this library can
populate: SRAM variants (full, shrunk, drowsy), STT variants (retention
assignments, refresh policies) and the dynamic controller.  This
experiment runs them all and reports which are Pareto-optimal in
(normalized energy, performance loss) — the synthesis artifact a design
review would ask for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.baseline import BaselineDesign
from repro.core.drowsy import DrowsySRAMDesign
from repro.core.dynamic_partition import DynamicPartitionDesign
from repro.core.hybrid import HybridPartitionDesign
from repro.core.multi_retention import multi_retention_design
from repro.core.static_partition import StaticPartitionDesign
from repro.experiments.report import format_table
from repro.experiments.runner import EXPERIMENT_TRACE_LENGTH, experiment_stream
from repro.config import DEFAULT_PLATFORM

__all__ = ["ParetoPoint", "ParetoResult", "pareto_frontier"]


@dataclass(frozen=True)
class ParetoPoint:
    """One design's position in (energy, performance) space."""

    design: str
    energy_norm: float
    perf_loss: float
    on_frontier: bool = False


@dataclass(frozen=True)
class ParetoResult:
    """All evaluated designs with frontier membership."""

    points: tuple[ParetoPoint, ...]

    def frontier(self) -> tuple[ParetoPoint, ...]:
        """Only the Pareto-optimal points, by increasing energy."""
        return tuple(sorted((p for p in self.points if p.on_frontier),
                            key=lambda p: p.energy_norm))

    def render(self) -> str:
        rows = [
            [p.design, f"{p.energy_norm:.3f}", f"{p.perf_loss:+.2%}",
             "*" if p.on_frontier else ""]
            for p in sorted(self.points, key=lambda p: p.energy_norm)
        ]
        return format_table(
            "Energy/performance Pareto space (suite subset mean; * = frontier)",
            ["design", "norm. energy", "perf loss", "Pareto"],
            rows,
        )


def _mark_frontier(points: list[ParetoPoint]) -> tuple[ParetoPoint, ...]:
    """A point is dominated if another has <= energy AND <= loss (one strict)."""
    marked = []
    for p in points:
        dominated = any(
            (q.energy_norm <= p.energy_norm and q.perf_loss <= p.perf_loss)
            and (q.energy_norm < p.energy_norm or q.perf_loss < p.perf_loss)
            for q in points
        )
        marked.append(ParetoPoint(p.design, p.energy_norm, p.perf_loss, not dominated))
    return tuple(marked)


def candidate_designs() -> dict[str, object]:
    """The design variants the frontier is drawn over."""
    return {
        "baseline": BaselineDesign(),
        "static-sram": StaticPartitionDesign(name="static-sram"),
        "drowsy-sram": DrowsySRAMDesign(),
        "static-stt": multi_retention_design(),
        "static-stt-rewrite": multi_retention_design(
            refresh_mode="rewrite", name="static-stt-rewrite"),
        "static-stt-allshort": multi_retention_design(
            user_retention="short", name="static-stt-allshort"),
        "static-stt-alllong": multi_retention_design(
            user_retention="long", kernel_retention="long", name="static-stt-alllong"),
        "hybrid": HybridPartitionDesign(),
        "dynamic-stt": DynamicPartitionDesign(),
    }


def pareto_frontier(
    length: int = EXPERIMENT_TRACE_LENGTH,
    apps: tuple[str, ...] = ("browser", "social", "game"),
) -> ParetoResult:
    """Evaluate every candidate design and mark the frontier."""
    base_energy, base_timing = {}, {}
    for app in apps:
        stream = experiment_stream(app, length)
        r = BaselineDesign().run(stream, DEFAULT_PLATFORM)
        base_energy[app] = r.l2_energy.total_j
        base_timing[app] = r.timing
    points = []
    for name, design in candidate_designs().items():
        energy, loss = [], []
        for app in apps:
            stream = experiment_stream(app, length)
            r = design.run(stream, DEFAULT_PLATFORM)
            energy.append(r.l2_energy.total_j / base_energy[app])
            loss.append(r.timing.perf_loss_vs(base_timing[app]))
        points.append(ParetoPoint(name, float(np.mean(energy)), float(np.mean(loss))))
    return ParetoResult(_mark_frontier(points))

"""Plain-text rendering shared by examples and benchmarks.

Every figure/table experiment returns structured rows plus a ``render``
into the ASCII layout below, so the bench for Table 4 and the quickstart
example print identical artifacts.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_series", "format_percent", "format_bars"]


def format_percent(x: float, digits: int = 1) -> str:
    """``0.4213`` -> ``"42.1%"``."""
    return f"{x * 100:.{digits}f}%"


def format_table(
    title: str,
    header: Sequence[str],
    rows: Sequence[Sequence[object]],
    align_left_cols: int = 1,
) -> str:
    """Render an ASCII table with a title rule.

    The first ``align_left_cols`` columns are left-aligned (labels), the
    rest right-aligned (numbers).
    """
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in header]
    for row in cells:
        if len(row) != len(header):
            raise ValueError(f"row {row} has {len(row)} cells, header has {len(header)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(row: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(row):
            parts.append(cell.ljust(widths[i]) if i < align_left_cols else cell.rjust(widths[i]))
        return "  ".join(parts)

    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    lines = [title, rule, fmt_row(list(header)), rule]
    lines.extend(fmt_row(row) for row in cells)
    lines.append(rule)
    return "\n".join(lines)


def format_series(title: str, xlabel: str, ylabel: str, points: Sequence[tuple[object, object]]) -> str:
    """Render an (x, y) series the way a figure's data table would look."""
    header = [xlabel, ylabel]
    return format_table(title, header, [[x, y] for x, y in points])


def format_bars(
    title: str,
    items: Sequence[tuple[str, float]],
    width: int = 40,
    value_format: str = "{:.3f}",
) -> str:
    """Render a horizontal ASCII bar chart (non-negative values).

    The longest bar spans ``width`` characters; labels left, values
    right.  This is how figure benches sketch the paper's bar charts in
    a terminal.
    """
    if not items:
        return title
    values = [v for _, v in items]
    if min(values) < 0:
        raise ValueError("format_bars only renders non-negative values")
    peak = max(values) or 1.0
    label_w = max(len(label) for label, _ in items)
    lines = [title]
    for label, value in items:
        bar = "#" * max(0, round(value / peak * width))
        lines.append(f"{label.ljust(label_w)}  {bar} {value_format.format(value)}")
    return "\n".join(lines)

"""The paper's tables, reconstructed (see DESIGN.md for provenance)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import DEFAULT_PLATFORM, PlatformConfig
from repro.core.designs import DESIGN_NAMES
from repro.energy.technology import RETENTION_CLASSES, sram, stt_ram
from repro.experiments.report import format_percent, format_table
from repro.experiments.runner import EXPERIMENT_TRACE_LENGTH, canonical_result
from repro.trace.workloads import APP_NAMES, app_profile

__all__ = [
    "table1_configuration",
    "table2_technology",
    "table3_workloads",
    "table4_performance",
]


# ---------------------------------------------------------------------------
# Table 1 — simulated platform configuration


@dataclass(frozen=True)
class ConfigurationTable:
    """Rows of (parameter, value) describing the platform."""

    rows: tuple[tuple[str, str], ...]

    def render(self) -> str:
        return format_table(
            "Table 1: simulated platform configuration",
            ["parameter", "value"],
            [list(r) for r in self.rows],
            align_left_cols=2,
        )


def table1_configuration(platform: PlatformConfig = DEFAULT_PLATFORM) -> ConfigurationTable:
    """The platform parameters every experiment runs on."""
    lat = platform.latency
    rows = (
        ("core", f"in-order, base CPI {platform.base_cpi}, {platform.clock_hz / 1e9:.1f} GHz"),
        ("L1 I-cache", f"{platform.l1i.size_bytes // 1024} KB, {platform.l1i.associativity}-way, "
                       f"{platform.l1i.block_size} B lines, {lat.l1_hit}-cycle hit"),
        ("L1 D-cache", f"{platform.l1d.size_bytes // 1024} KB, {platform.l1d.associativity}-way, "
                       f"write-back write-allocate"),
        ("L2 cache", f"{platform.l2.size_bytes // 1024} KB shared, {platform.l2.associativity}-way, "
                     f"{platform.l2.num_sets} sets, {lat.l2_hit}-cycle hit"),
        ("DRAM", f"{lat.dram}-cycle access"),
        ("replacement", "true LRU at every level"),
    )
    return ConfigurationTable(rows)


# ---------------------------------------------------------------------------
# Table 2 — technology parameters


@dataclass(frozen=True)
class TechnologyTable:
    """Rows of per-technology energy/latency/retention parameters."""

    rows: tuple[tuple[str, ...], ...]

    def render(self) -> str:
        return format_table(
            "Table 2: 1 MB array technology parameters",
            ["technology", "read (nJ)", "write (nJ)", "leakage (mW/MB)",
             "extra wr lat", "retention"],
            [list(r) for r in self.rows],
        )


def table2_technology() -> TechnologyTable:
    """SRAM vs the three STT-RAM retention classes at the reference size."""
    size = 1024 * 1024
    rows = []
    techs = [sram()] + [stt_ram(name) for name in RETENTION_CLASSES]
    for tech in techs:
        retention = "-"
        if tech.retention is not None:
            retention = (
                "> 10 years" if tech.retention.retention_s is None
                else f"{tech.retention.retention_s * 1e3:.0f} ms (scaled)"
            )
        rows.append(
            (
                tech.name,
                f"{tech.read_energy_nj(size):.2f}",
                f"{tech.write_energy_nj(size):.2f}",
                f"{tech.leakage_mw_per_mb:.0f}",
                f"{tech.extra_write_cycles}",
                retention,
            )
        )
    return TechnologyTable(tuple(rows))


# ---------------------------------------------------------------------------
# Table 3 — workload suite


@dataclass(frozen=True)
class WorkloadTable:
    """One row per app: name and what it models."""

    rows: tuple[tuple[str, str], ...]

    def render(self) -> str:
        return format_table(
            "Table 3: interactive smartphone workload suite",
            ["app", "description"],
            [list(r) for r in self.rows],
            align_left_cols=2,
        )


def table3_workloads() -> WorkloadTable:
    """The eight-app suite with descriptions."""
    return WorkloadTable(tuple((name, app_profile(name).description) for name in APP_NAMES))


# ---------------------------------------------------------------------------
# Table 4 — performance loss per design


@dataclass(frozen=True)
class PerformanceTable:
    """Per-app performance loss of each design vs the baseline."""

    loss: dict[str, dict[str, float]]  # app -> design -> loss

    def mean(self, design: str) -> float:
        """Suite-mean performance loss of ``design``."""
        return float(np.mean([v[design] for v in self.loss.values()]))

    def render(self) -> str:
        designs = [d for d in DESIGN_NAMES if d != "baseline"]
        rows = [
            [app] + [format_percent(self.loss[app][d], 2) for d in designs]
            for app in self.loss
        ]
        rows.append(["MEAN"] + [format_percent(self.mean(d), 2) for d in designs])
        return format_table(
            "Table 4: performance loss vs the shared SRAM baseline",
            ["app", *designs],
            rows,
        )


def table4_performance(
    length: int = EXPERIMENT_TRACE_LENGTH, apps: tuple[str, ...] = APP_NAMES
) -> PerformanceTable:
    """Busy-cycle slowdown of every design against the baseline."""
    loss: dict[str, dict[str, float]] = {}
    for app in apps:
        base = canonical_result("baseline", app, length).timing
        loss[app] = {
            design: canonical_result(design, app, length).timing.perf_loss_vs(base)
            for design in DESIGN_NAMES
            if design != "baseline"
        }
    return PerformanceTable(loss)

"""DRAM substrate: bank/row-buffer model refining the flat-latency default."""

from repro.dram.model import DRAMConfig, DRAMModel, DRAMStats

__all__ = ["DRAMConfig", "DRAMModel", "DRAMStats"]

"""A bank/row-buffer DRAM model (LPDDR-class).

The canonical experiments charge a flat DRAM latency per L2 miss, which
is the common simplification in cache papers.  This substrate refines
that: the miss stream is mapped onto channels/banks/rows, each bank keeps
an open row, and an access is either a **row hit** (column access only),
a **row miss** (precharge + activate + column) or lands on a **busy
bank** and also waits.  Energy distinguishes activate/precharge from
column transfers.

It is used by the DRAM-sensitivity ablation
(``benchmarks/bench_ablation_dram.py``) and can be plugged into any
fixed design via :class:`repro.core.pipeline.run_fixed_design`'s
``dram_model`` argument to replace the flat-latency assumption.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DRAMConfig", "DRAMStats", "DRAMModel"]


@dataclass(frozen=True)
class DRAMConfig:
    """Timing/energy/geometry of the DRAM device (LPDDR3-class, 1 GHz core).

    Latencies are in core cycles; energies in nanojoules per event.
    """

    banks: int = 8
    row_bytes: int = 2048
    t_row_hit: int = 60
    t_row_miss: int = 140
    t_bank_busy: int = 40
    e_activate_nj: float = 12.0
    e_column_nj: float = 6.0
    e_background_mw: float = 40.0

    def __post_init__(self) -> None:
        if self.banks <= 0 or self.banks & (self.banks - 1):
            raise ValueError(f"banks must be a positive power of two, got {self.banks}")
        if self.row_bytes <= 0 or self.row_bytes & (self.row_bytes - 1):
            raise ValueError(f"row_bytes must be a positive power of two, got {self.row_bytes}")
        if not 0 < self.t_row_hit <= self.t_row_miss:
            raise ValueError("need 0 < t_row_hit <= t_row_miss")
        if self.t_bank_busy < 0:
            raise ValueError("t_bank_busy must be >= 0")


@dataclass
class DRAMStats:
    """Access counters of one DRAM model instance."""

    accesses: int = 0
    row_hits: int = 0
    row_misses: int = 0
    busy_stalls: int = 0
    total_latency: int = 0
    reads: int = 0
    writes: int = 0

    @property
    def row_hit_rate(self) -> float:
        """Row-buffer hits per access."""
        return self.row_hits / self.accesses if self.accesses else 0.0

    @property
    def mean_latency(self) -> float:
        """Mean access latency in core cycles."""
        return self.total_latency / self.accesses if self.accesses else 0.0


class DRAMModel:
    """Open-row DRAM with per-bank state.

    Address mapping: row = addr / row_bytes; bank = row % banks (row
    interleaving, the common choice for streaming-friendly mapping).
    """

    def __init__(self, config: DRAMConfig | None = None) -> None:
        self.config = config if config is not None else DRAMConfig()
        self.stats = DRAMStats()
        self._open_rows: list[int | None] = [None] * self.config.banks
        self._bank_free_at: list[int] = [0] * self.config.banks

    def access(self, addr: int, tick: int, is_write: bool = False) -> int:
        """Perform one block transfer; returns its latency in cycles."""
        cfg = self.config
        st = self.stats
        row = addr // cfg.row_bytes
        bank = row & (cfg.banks - 1)

        st.accesses += 1
        if is_write:
            st.writes += 1
        else:
            st.reads += 1

        latency = 0
        if tick < self._bank_free_at[bank]:
            wait = min(self._bank_free_at[bank] - tick, cfg.t_bank_busy)
            st.busy_stalls += 1
            latency += wait

        if self._open_rows[bank] == row:
            st.row_hits += 1
            latency += cfg.t_row_hit
        else:
            st.row_misses += 1
            latency += cfg.t_row_miss
            self._open_rows[bank] = row

        self._bank_free_at[bank] = tick + latency
        st.total_latency += latency
        return latency

    def energy_j(self, busy_seconds: float = 0.0) -> float:
        """Total DRAM energy: activations + column transfers + background."""
        if busy_seconds < 0:
            raise ValueError("busy_seconds must be >= 0")
        cfg = self.config
        st = self.stats
        dynamic = (
            st.row_misses * cfg.e_activate_nj + st.accesses * cfg.e_column_nj
        ) * 1e-9
        background = cfg.e_background_mw * 1e-3 * busy_seconds
        return dynamic + background

    def reset(self) -> None:
        """Clear bank state and counters."""
        self.stats = DRAMStats()
        self._open_rows = [None] * self.config.banks
        self._bank_free_at = [0] * self.config.banks

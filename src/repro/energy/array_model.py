"""First-order cache-array area/energy decomposition (CACTI-style).

The headline experiments use calibrated per-access constants
(:mod:`repro.energy.technology`).  This module complements them with a
*structural* model that decomposes an array into decoder, wordlines,
bitlines, sense amplifiers and output drivers, in the spirit of CACTI —
good for asking geometry questions the constants cannot answer: how do
energy and area move with associativity, block size, or cell type?

It is deliberately first-order (no H-tree floorplanning, no multi-bank
partitioning) and is validated for *trends*, not absolute joules; the
area table bench (``benchmarks/bench_table_area.py``) is its consumer.

Cell parameters (45 nm class):

* SRAM: 6T cell, ~0.35 um^2/bit, per-cell leakage dominates.
* STT-RAM: 1T1MTJ, ~0.09 um^2/bit (the ~4x density advantage the
  literature reports), negligible cell leakage, expensive writes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CacheGeometry

__all__ = ["CellParams", "ArrayEstimate", "SRAM_CELL", "STT_CELL", "estimate_array"]


@dataclass(frozen=True)
class CellParams:
    """Bit-cell and peripheral parameters of one memory technology."""

    name: str
    cell_area_um2: float
    cell_read_fj: float          # per bit read (bitline swing / MTJ sense)
    cell_write_fj: float         # per bit write
    cell_leak_nw: float          # per bit standby leakage
    periph_leak_scale: float     # peripheral leakage vs an SRAM array of equal bits

    def __post_init__(self) -> None:
        if min(self.cell_area_um2, self.cell_read_fj, self.cell_write_fj) <= 0:
            raise ValueError(f"cell parameters must be positive: {self}")
        if self.cell_leak_nw < 0 or self.periph_leak_scale < 0:
            raise ValueError(f"leakage parameters must be >= 0: {self}")


SRAM_CELL = CellParams(
    name="sram-6t",
    cell_area_um2=0.35,
    cell_read_fj=18.0,
    cell_write_fj=18.0,
    cell_leak_nw=0.9,
    periph_leak_scale=1.0,
)

STT_CELL = CellParams(
    name="stt-1t1mtj",
    cell_area_um2=0.09,
    cell_read_fj=14.0,
    cell_write_fj=160.0,
    cell_leak_nw=0.0,
    periph_leak_scale=1.0,
)

# Peripheral constants (per access / per structure)
_DECODER_FJ_PER_SET_BIT = 45.0     # energy per decoded address bit
_SENSE_FJ_PER_BIT = 9.0            # sense amplifier per output bit
_DRIVER_FJ_PER_BIT = 7.0           # output driver per bit
_TAG_BITS = 24
_PERIPH_LEAK_NW_PER_COLUMN = 18.0  # sense/precharge leakage per column
_PERIPH_AREA_OVERHEAD = 0.32       # decoder/sense/driver area vs cell array
_WIRE_FJ_PER_BIT_MM = 400.0        # routing (wire + repeaters) per bit per mm


@dataclass(frozen=True)
class ArrayEstimate:
    """Structural estimate for one cache array."""

    name: str
    read_energy_nj: float
    write_energy_nj: float
    leakage_mw: float
    area_mm2: float

    def row(self) -> list[str]:
        """Formatted cells for table rendering."""
        return [
            self.name,
            f"{self.read_energy_nj:.2f}",
            f"{self.write_energy_nj:.2f}",
            f"{self.leakage_mw:.1f}",
            f"{self.area_mm2:.2f}",
        ]


def estimate_array(geometry: CacheGeometry, cell: CellParams) -> ArrayEstimate:
    """Estimate energy/leakage/area of ``geometry`` built from ``cell``.

    A read activates one set: all ways' tags plus one way's data line
    (sequential tag-data access, the low-power organisation mobile L2s
    use).  A write drives one data line plus the tag.
    """
    geometry.validate()
    block_bits = geometry.block_size * 8
    set_bits = max(1, geometry.num_sets.bit_length() - 1)
    ways = geometry.associativity

    total_bits = geometry.num_blocks * (block_bits + _TAG_BITS)
    area_cells_mm2 = total_bits * cell.cell_area_um2 * (1 + _PERIPH_AREA_OVERHEAD) * 1e-6
    # data travels roughly half the array diagonal to reach the port;
    # this wire term is what makes access energy grow ~sqrt(capacity)
    route_mm = 0.5 * area_cells_mm2 ** 0.5
    wire_fj_per_bit = _WIRE_FJ_PER_BIT_MM * route_mm

    decoder_fj = _DECODER_FJ_PER_SET_BIT * set_bits
    tag_read_fj = ways * _TAG_BITS * (cell.cell_read_fj + _SENSE_FJ_PER_BIT)
    data_read_fj = block_bits * (
        cell.cell_read_fj + _SENSE_FJ_PER_BIT + _DRIVER_FJ_PER_BIT + wire_fj_per_bit
    )
    read_nj = (decoder_fj + tag_read_fj + data_read_fj) * 1e-6

    tag_write_fj = _TAG_BITS * cell.cell_write_fj
    data_write_fj = block_bits * (cell.cell_write_fj + _DRIVER_FJ_PER_BIT + wire_fj_per_bit)
    write_nj = (decoder_fj + tag_write_fj + data_write_fj) * 1e-6
    columns = (block_bits + _TAG_BITS) * ways
    leak_mw = (
        total_bits * cell.cell_leak_nw
        + columns * _PERIPH_LEAK_NW_PER_COLUMN * cell.periph_leak_scale * geometry.num_sets ** 0.5
    ) * 1e-6

    area_mm2 = area_cells_mm2
    return ArrayEstimate(
        name=f"{cell.name} {geometry.size_bytes // 1024} KB {ways}-way",
        read_energy_nj=read_nj,
        write_energy_nj=write_nj,
        leakage_mw=leak_mw,
        area_mm2=area_mm2,
    )

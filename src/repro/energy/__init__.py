"""Technology and energy substrate (SRAM / multi-retention STT-RAM).

Public surface:

* :func:`sram` / :func:`stt_ram` — technology parameter sets.
* :class:`MemoryTechnology`, :class:`RetentionClass`,
  :data:`RETENTION_CLASSES` — the parameter model.
* :class:`EnergyBreakdown`, :func:`segment_energy`,
  :func:`dram_energy_j` — accounting.
"""

from repro.energy.model import EnergyBreakdown, dram_energy_j, segment_energy
from repro.energy.technology import (
    DRAM_ACCESS_ENERGY_NJ,
    DYNAMIC_ENERGY_SIZE_EXPONENT,
    REFERENCE_SIZE_BYTES,
    RETENTION_CLASSES,
    MemoryTechnology,
    RetentionClass,
    sram,
    stt_ram,
)

__all__ = [
    "EnergyBreakdown",
    "dram_energy_j",
    "segment_energy",
    "DRAM_ACCESS_ENERGY_NJ",
    "DYNAMIC_ENERGY_SIZE_EXPONENT",
    "REFERENCE_SIZE_BYTES",
    "RETENTION_CLASSES",
    "MemoryTechnology",
    "RetentionClass",
    "sram",
    "stt_ram",
]

"""Memory technology parameters: SRAM and multi-retention STT-RAM.

The paper takes its technology numbers from CACTI/NVSim runs that we
cannot reproduce offline; the constants here are chosen inside published
ranges (CACTI 6.5 low-power SRAM; Sun et al., HPCA 2011 multi-retention
STT-RAM; Smullen et al., HPCA 2011) and then *calibrated as a set* so the
baseline L2 energy splits between leakage and dynamic energy the way the
paper's results imply (see EXPERIMENTS.md).  What the conclusions rely on
is preserved structurally:

* SRAM leakage dominates L2 energy and scales with capacity;
* STT-RAM has near-zero array leakage but expensive writes;
* relaxing STT-RAM retention (lower thermal stability factor Δ) lowers
  write energy and latency roughly linearly in Δ, at the price of data
  decay that must be handled by refresh or invalidation.

Retention windows are scaled to the simulated trace span (a few ms of
execution standing in for seconds of real app time) so that the ratio
``retention / reuse interval`` sits in the same regime as the paper's
10 years / 1 s / 10 ms classes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "RetentionClass",
    "MemoryTechnology",
    "RETENTION_CLASSES",
    "sram",
    "stt_ram",
    "REFERENCE_SIZE_BYTES",
    "DYNAMIC_ENERGY_SIZE_EXPONENT",
    "DRAM_ACCESS_ENERGY_NJ",
]

#: Capacity at which the per-access energies below are quoted.
REFERENCE_SIZE_BYTES = 1024 * 1024

#: Per-access (read or write) energy scales as capacity**exponent — the
#: CACTI-style wordline/bitline/H-tree growth.
DYNAMIC_ENERGY_SIZE_EXPONENT = 0.5

#: Energy of one DRAM block transfer (row activation amortised).  Used
#: for the system-level view only; the paper's headline metric is L2
#: cache energy.
DRAM_ACCESS_ENERGY_NJ = 18.0


@dataclass(frozen=True)
class RetentionClass:
    """One STT-RAM retention level.

    Attributes:
        name: ``"long"``, ``"medium"`` or ``"short"``.
        retention_s: Data retention window in seconds, or ``None`` for a
            window far beyond any simulation (the 10-year class).
        write_energy_scale: Write pulse energy relative to the long
            class (lower thermal stability needs a weaker/shorter pulse).
        write_latency_cycles: Extra write-pulse latency in core cycles
            over an SRAM write.
    """

    name: str
    retention_s: float | None
    write_energy_scale: float
    write_latency_cycles: int

    def retention_ticks(self, clock_hz: float) -> int | None:
        """Retention window in ticks at ``clock_hz`` (None = unbounded)."""
        if self.retention_s is None:
            return None
        return max(1, int(self.retention_s * clock_hz))


#: The three retention levels of the multi-retention design.  The medium
#: and short windows are scaled to the ~3-5 ms trace span (see module
#: docstring); their *ratios* to block reuse intervals match the paper's
#: regime: kernel blocks are re-referenced well inside the short window,
#: user blocks have dead times far beyond it.
RETENTION_CLASSES: dict[str, RetentionClass] = {
    "long": RetentionClass("long", None, 1.0, 10),
    "medium": RetentionClass("medium", 4.0e-2, 0.45, 5),
    "short": RetentionClass("short", 8.0e-3, 0.22, 2),
}


@dataclass(frozen=True)
class MemoryTechnology:
    """Energy/latency parameters of one cache array technology.

    Per-access energies are quoted at :data:`REFERENCE_SIZE_BYTES` and
    scaled by :meth:`read_energy_nj` / :meth:`write_energy_nj`.
    """

    name: str
    read_energy_nj_ref: float
    write_energy_nj_ref: float
    leakage_mw_per_mb: float
    extra_read_cycles: int = 0
    extra_write_cycles: int = 0
    retention: RetentionClass | None = None
    non_volatile: bool = False

    def _scale(self, size_bytes: int) -> float:
        if size_bytes <= 0:
            raise ValueError(f"size_bytes must be positive, got {size_bytes}")
        return (size_bytes / REFERENCE_SIZE_BYTES) ** DYNAMIC_ENERGY_SIZE_EXPONENT

    def read_energy_nj(self, size_bytes: int) -> float:
        """Per-read energy (nJ) of an array of ``size_bytes``."""
        return self.read_energy_nj_ref * self._scale(size_bytes)

    def write_energy_nj(self, size_bytes: int) -> float:
        """Per-write energy (nJ) of an array of ``size_bytes``."""
        return self.write_energy_nj_ref * self._scale(size_bytes)

    def leakage_w(self, size_bytes: int) -> float:
        """Leakage power (W) of an array of ``size_bytes``."""
        return self.leakage_mw_per_mb * 1e-3 * (size_bytes / (1024 * 1024))

    def retention_ticks(self, clock_hz: float) -> int | None:
        """Retention window in ticks, or ``None`` when effectively infinite."""
        if self.retention is None:
            return None
        return self.retention.retention_ticks(clock_hz)


def sram() -> MemoryTechnology:
    """Low-power SRAM as used by the baseline mobile L2."""
    return MemoryTechnology(
        name="sram",
        read_energy_nj_ref=0.75,
        write_energy_nj_ref=0.75,
        leakage_mw_per_mb=95.0,
        extra_read_cycles=0,
        extra_write_cycles=0,
        retention=None,
        non_volatile=False,
    )


def stt_ram(retention: str = "long") -> MemoryTechnology:
    """STT-RAM at the given retention class (``RETENTION_CLASSES`` key)."""
    if retention not in RETENTION_CLASSES:
        raise ValueError(
            f"unknown retention class {retention!r}; choose from {sorted(RETENTION_CLASSES)}"
        )
    cls = RETENTION_CLASSES[retention]
    base_write_nj = 5.8  # long-retention write pulse at the reference size
    return MemoryTechnology(
        name=f"stt-{cls.name}",
        read_energy_nj_ref=0.62,
        write_energy_nj_ref=base_write_nj * cls.write_energy_scale,
        leakage_mw_per_mb=24.0,
        extra_read_cycles=0,
        extra_write_cycles=cls.write_latency_cycles,
        retention=cls,
        non_volatile=True,
    )

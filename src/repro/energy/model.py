"""Energy accounting: turn cache statistics into joules.

The L2 energy of a design is the sum over its segments of

* **leakage** — leakage power of the active array integrated over time
  (``byte_seconds`` lets the dynamic design pay only for powered ways),
* **reads** — every lookup reads the tag+data arrays,
* **writes** — fills, store hits and retention refreshes pay the write
  pulse, and
* **refresh** — the refresh share is also reported separately so the
  retention ablation can show it.

DRAM transfer energy is kept out of the L2 total (the paper's headline
is cache energy) but computed for the system-level sanity view.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.stats import CacheStats
from repro.energy.technology import DRAM_ACCESS_ENERGY_NJ, MemoryTechnology

__all__ = ["EnergyBreakdown", "segment_energy", "dram_energy_j"]

_NJ = 1e-9


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one cache (or cache segment) in joules."""

    leakage_j: float
    read_j: float
    write_j: float
    refresh_j: float

    @property
    def dynamic_j(self) -> float:
        """All non-leakage energy."""
        return self.read_j + self.write_j + self.refresh_j

    @property
    def total_j(self) -> float:
        """Leakage plus dynamic energy."""
        return self.leakage_j + self.dynamic_j

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            self.leakage_j + other.leakage_j,
            self.read_j + other.read_j,
            self.write_j + other.write_j,
            self.refresh_j + other.refresh_j,
        )

    @classmethod
    def zero(cls) -> "EnergyBreakdown":
        """Additive identity."""
        return cls(0.0, 0.0, 0.0, 0.0)

    def to_dict(self) -> dict:
        """Plain-data form for the result store."""
        return {
            "leakage_j": self.leakage_j,
            "read_j": self.read_j,
            "write_j": self.write_j,
            "refresh_j": self.refresh_j,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EnergyBreakdown":
        """Inverse of :meth:`to_dict` (floats round-trip exactly)."""
        return cls(data["leakage_j"], data["read_j"], data["write_j"], data["refresh_j"])

    def normalized_to(self, baseline: "EnergyBreakdown") -> float:
        """This total as a fraction of ``baseline``'s total."""
        if baseline.total_j <= 0:
            raise ValueError("baseline energy must be positive")
        return self.total_j / baseline.total_j


def segment_energy(
    stats: CacheStats,
    tech: MemoryTechnology,
    size_bytes: int,
    byte_seconds: float,
) -> EnergyBreakdown:
    """Energy of one cache segment.

    Args:
        stats: The segment's counters after simulation.
        tech: Array technology of the segment.
        size_bytes: Capacity used for per-access energy scaling (for a
            resizable segment, its maximum provisioned size).
        byte_seconds: Integral of powered capacity over wall-clock time;
            ``size_bytes * seconds`` for a fixed-size segment.

    Returns:
        The segment's :class:`EnergyBreakdown`.
    """
    if byte_seconds < 0:
        raise ValueError(f"byte_seconds must be >= 0, got {byte_seconds}")
    read_nj = tech.read_energy_nj(size_bytes)
    write_nj = tech.write_energy_nj(size_bytes)
    leakage_j = tech.leakage_mw_per_mb * 1e-3 * (byte_seconds / (1024 * 1024))
    read_j = stats.accesses * read_nj * _NJ
    data_writes = stats.fills + stats.write_accesses
    write_j = data_writes * write_nj * _NJ
    refresh_j = stats.refresh_writes * write_nj * _NJ
    return EnergyBreakdown(leakage_j, read_j, write_j, refresh_j)


def dram_energy_j(dram_reads: int, dram_writes: int) -> float:
    """Energy of the DRAM transfers a design caused (system view only)."""
    if dram_reads < 0 or dram_writes < 0:
        raise ValueError("DRAM access counts must be >= 0")
    return (dram_reads + dram_writes) * DRAM_ACCESS_ENERGY_NJ * _NJ

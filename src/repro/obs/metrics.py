"""Process-local metrics: counters, gauges and timers.

The registry is always on.  Instrumentation points touch plain dict
entries at *coarse* granularity — once per dispatch decision, per store
lookup, per simulated job — never inside a per-access replay loop, so
the steady-state cost is a handful of dict operations per job.  Writing
anything to disk is a separate concern: when tracing is enabled the
JSONL recorder (:mod:`repro.obs.trace`) snapshots the registry into the
run log; when it is not, the numbers simply accumulate in memory where
tests and the CLI can read them.

Counter naming convention: dot-separated ``layer.subject.detail``
(``pipeline.dispatch.fastsim``, ``store.hit``,
``pipeline.fallback.kill-switch``) so prefix filters stay trivial.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = [
    "MetricsRegistry",
    "TimerStat",
    "REGISTRY",
    "inc",
    "set_gauge",
    "observe",
    "timed",
    "snapshot",
]


@dataclass
class TimerStat:
    """Aggregate of one named duration series."""

    count: int = 0
    total_s: float = 0.0
    min_s: float = float("inf")
    max_s: float = 0.0

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if seconds < self.min_s:
            self.min_s = seconds
        if seconds > self.max_s:
            self.max_s = seconds

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
        }


class _Timer:
    """Context manager recording one duration into a registry timer."""

    __slots__ = ("_registry", "_name", "_t0")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self._registry.observe(self._name, time.perf_counter() - self._t0)
        return False


class MetricsRegistry:
    """Counters, gauges and timers for one process."""

    __slots__ = ("counters", "gauges", "timers")

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.timers: dict[str, TimerStat] = {}

    def inc(self, name: str, value: int = 1) -> None:
        """Add ``value`` to counter ``name`` (creating it at zero)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Record the latest value of gauge ``name``."""
        self.gauges[name] = float(value)

    def observe(self, name: str, seconds: float) -> None:
        """Fold one duration into timer ``name``."""
        stat = self.timers.get(name)
        if stat is None:
            stat = self.timers[name] = TimerStat()
        stat.add(seconds)

    def timed(self, name: str) -> _Timer:
        """``with registry.timed("phase"):`` — measure and observe."""
        return _Timer(self, name)

    def snapshot(self) -> dict:
        """JSON-ready copy of everything currently recorded."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "timers": {name: stat.to_dict() for name, stat in self.timers.items()},
        }

    def reset(self) -> None:
        """Drop all recorded values (tests and long-lived processes)."""
        self.counters.clear()
        self.gauges.clear()
        self.timers.clear()


#: The process-wide registry every instrumentation point writes to.
REGISTRY = MetricsRegistry()

inc = REGISTRY.inc
set_gauge = REGISTRY.set_gauge
observe = REGISTRY.observe
timed = REGISTRY.timed
snapshot = REGISTRY.snapshot

"""Observability: metrics, span tracing and run-log analysis.

The subsystem has three modules:

* :mod:`repro.obs.metrics` — the always-on process-local registry of
  counters, gauges and timers (cheap dict writes at per-job
  granularity).
* :mod:`repro.obs.trace` — span-based tracing behind an opt-in JSONL
  recorder (``REPRO_TRACE=path`` or :func:`configure`); disabled, every
  instrumentation point is a no-op that allocates nothing.
* :mod:`repro.obs.summary` — loads a run log and renders the
  where-did-the-time-go attribution (``repro obs summary``).

The instrumentation verbs most call sites need — ``span``, ``event``,
``inc``, ``observe`` — are re-exported here, so instrumented modules
just ``from repro import obs`` and call ``obs.span("replay", ...)``.

Guarantees: simulation results are bit-identical with tracing on or
off (instrumentation only observes), and the disabled path is covered
by an overhead budget asserted in ``benchmarks/bench_sim_throughput.py``.
"""

from repro.obs.metrics import REGISTRY, MetricsRegistry, inc, observe, set_gauge, snapshot, timed
from repro.obs.trace import (
    NULL_RECORDER,
    TRACE_ENV,
    JsonlRecorder,
    NullRecorder,
    configure,
    event,
    recorder,
    set_recorder,
    span,
    validate_event,
)

__all__ = [
    "REGISTRY",
    "MetricsRegistry",
    "inc",
    "observe",
    "set_gauge",
    "snapshot",
    "timed",
    "NULL_RECORDER",
    "TRACE_ENV",
    "JsonlRecorder",
    "NullRecorder",
    "configure",
    "event",
    "recorder",
    "set_recorder",
    "span",
    "validate_event",
]

"""Span-based tracing with structured JSONL run logs.

One *recorder* lives per process.  By default it is the
:data:`NULL_RECORDER` — every ``span()`` returns a shared, stateless
no-op context manager and every ``event()`` is a single early return, so
instrumentation left in place costs a function call and nothing more.
Recording is opted into either through the ``REPRO_TRACE`` environment
variable (a path; inherited by pool workers, which append to the same
file) or programmatically via :func:`configure`.

Event schema — one JSON object per line, four types:

* ``run`` — emitted once when a recorder opens: ``ts``, ``pid``,
  ``run_id``, ``schema``.
* ``span`` — a completed timed region: ``name``, ``ts``/``t0``/``t1``
  (epoch seconds, comparable across processes), ``dur_s`` (monotonic
  clock, immune to wall-clock steps), ``pid`` and free-form ``attrs``.
* ``event`` — a point-in-time fact: ``name``, ``ts``, ``pid``,
  ``attrs``.
* ``metrics`` — a registry snapshot: ``ts``, ``pid``, ``counters``,
  ``gauges``, ``timers``.

:func:`validate_event` enforces the required keys; ``repro obs summary``
refuses logs that do not validate.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.obs import metrics as _metrics

__all__ = [
    "TRACE_ENV",
    "OBS_SCHEMA_VERSION",
    "REQUIRED_KEYS",
    "NULL_RECORDER",
    "NULL_SPAN",
    "JsonlRecorder",
    "NullRecorder",
    "configure",
    "event",
    "recorder",
    "set_recorder",
    "span",
    "validate_event",
]

#: Environment variable holding the run-log path; any non-empty value
#: switches the process (and its pool workers) to a JSONL recorder.
TRACE_ENV = "REPRO_TRACE"

#: Version tag stamped into every ``run`` line.
OBS_SCHEMA_VERSION = 1

#: Required keys per event type; everything else is free-form.
REQUIRED_KEYS: dict[str, frozenset[str]] = {
    "run": frozenset({"type", "ts", "pid", "run_id", "schema"}),
    "span": frozenset({"type", "name", "ts", "t0", "t1", "dur_s", "pid"}),
    "event": frozenset({"type", "name", "ts", "pid"}),
    "metrics": frozenset({"type", "ts", "pid", "counters", "gauges", "timers"}),
}


def validate_event(payload: dict) -> dict:
    """Check one decoded run-log line against the schema; return it.

    Raises ``ValueError`` on an unknown type or a missing required key.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"run-log line must be a JSON object, got {type(payload).__name__}")
    kind = payload.get("type")
    required = REQUIRED_KEYS.get(kind)
    if required is None:
        raise ValueError(f"unknown event type {kind!r}; expected one of {sorted(REQUIRED_KEYS)}")
    missing = required - payload.keys()
    if missing:
        raise ValueError(f"{kind} event missing required keys: {sorted(missing)}")
    return payload


class _NullSpan:
    """The shared do-nothing span; one instance serves every call."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def note(self, **attrs) -> None:
        """Discard late-bound attributes."""


#: Singleton returned by the null recorder's ``span()``.
NULL_SPAN = _NullSpan()


class _Span:
    """A live span: times its block and emits one ``span`` line on exit."""

    __slots__ = ("_recorder", "name", "attrs", "_t0", "_wall0")

    def __init__(self, recorder: "JsonlRecorder", name: str, attrs: dict) -> None:
        self._recorder = recorder
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        self._wall0 = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, *exc) -> bool:
        dur = time.perf_counter() - self._t0
        wall1 = time.time()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._recorder.emit({
            "type": "span",
            "name": self.name,
            "ts": self._wall0,
            "t0": self._wall0,
            "t1": wall1,
            "dur_s": dur,
            "pid": os.getpid(),
            "attrs": self.attrs,
        })
        return False

    def note(self, **attrs) -> None:
        """Attach attributes decided after the span opened."""
        self.attrs.update(attrs)


class NullRecorder:
    """Disabled recorder: keeps no state, creates no files."""

    enabled = False
    path = None

    def span(self, name: str, **attrs) -> _NullSpan:
        return NULL_SPAN

    def event(self, name: str, **attrs) -> None:
        return None

    def emit(self, payload: dict) -> None:
        return None

    def metrics(self, registry: _metrics.MetricsRegistry | None = None) -> None:
        return None

    def close(self) -> None:
        return None


#: The process-wide disabled recorder.
NULL_RECORDER = NullRecorder()


class JsonlRecorder:
    """Recorder appending one JSON object per line to ``path``.

    The file is opened in append mode and flushed per line, so several
    processes (a parent and its pool workers) can interleave whole lines
    into one log.  Epoch timestamps (``time.time``) keep their events on
    one comparable timeline; durations use the monotonic clock.
    """

    enabled = True

    def __init__(self, path: str | os.PathLike, run_id: str | None = None) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        self.run_id = run_id or f"{time.time_ns():x}-{os.getpid()}"
        self.emit({
            "type": "run",
            "ts": time.time(),
            "pid": os.getpid(),
            "run_id": self.run_id,
            "schema": OBS_SCHEMA_VERSION,
        })

    def emit(self, payload: dict) -> None:
        """Write one event line and flush it."""
        if self._fh.closed:
            return
        self._fh.write(json.dumps(payload, sort_keys=True, default=str) + "\n")
        self._fh.flush()

    def span(self, name: str, **attrs) -> _Span:
        return _Span(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        self.emit({
            "type": "event",
            "name": name,
            "ts": time.time(),
            "pid": os.getpid(),
            "attrs": attrs,
        })

    def metrics(self, registry: _metrics.MetricsRegistry | None = None) -> None:
        """Snapshot a registry (default: the global one) into the log."""
        snap = (registry if registry is not None else _metrics.REGISTRY).snapshot()
        self.emit({"type": "metrics", "ts": time.time(), "pid": os.getpid(), **snap})

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


_recorder: NullRecorder | JsonlRecorder | None = None


def recorder() -> NullRecorder | JsonlRecorder:
    """The process recorder, resolving ``REPRO_TRACE`` on first use."""
    global _recorder
    if _recorder is None:
        path = os.environ.get(TRACE_ENV)
        _recorder = JsonlRecorder(path) if path else NULL_RECORDER
    return _recorder


def configure(path: str | os.PathLike | None) -> NullRecorder | JsonlRecorder:
    """Programmatic opt-in: record to ``path`` (None disables).

    Closes any previously configured JSONL recorder first.
    """
    global _recorder
    if _recorder is not None and _recorder.enabled:
        _recorder.close()
    _recorder = JsonlRecorder(path) if path else NULL_RECORDER
    return _recorder


def set_recorder(rec) -> NullRecorder | JsonlRecorder | None:
    """Install ``rec`` (None → re-resolve lazily); returns the previous one."""
    global _recorder
    previous = _recorder
    _recorder = rec
    return previous


def span(name: str, **attrs):
    """Open a span on the process recorder (no-op when disabled)."""
    return recorder().span(name, **attrs)


def event(name: str, **attrs) -> None:
    """Emit a point event on the process recorder (no-op when disabled)."""
    recorder().event(name, **attrs)

"""Run-log analysis: load a JSONL trace and report where the time went.

``repro obs summary run.jsonl`` renders, from one run log:

* a per-phase table — for every span name, how often it ran, total and
  mean duration, and its share of the batch wall time (shares can exceed
  100% in multiprocess runs: attribution sums busy time across workers);
* the measured batch wall time and the *span coverage* — the fraction of
  the batch interval covered by the union of all non-batch spans.  Low
  coverage means time is going somewhere uninstrumented;
* every counter recorded in the log's ``metrics`` snapshots (engine
  dispatch decisions, store hit/miss/write/corruption tallies, ...).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.trace import validate_event

__all__ = ["PhaseStat", "RunLog", "RunSummary", "load_run", "summarize"]


@dataclass(frozen=True)
class RunLog:
    """One parsed, validated JSONL run log."""

    path: Path
    events: tuple[dict, ...]

    def spans(self) -> list[dict]:
        return [e for e in self.events if e["type"] == "span"]

    def metrics_events(self) -> list[dict]:
        return [e for e in self.events if e["type"] == "metrics"]


def load_run(path) -> RunLog:
    """Parse and validate every line of a run log.

    Raises ``ValueError`` (with the line number) on undecodable JSON or
    an event that fails schema validation — a log the summary cannot
    trust is an error, not a partial report.
    """
    path = Path(path)
    events = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(validate_event(json.loads(line)))
            except (json.JSONDecodeError, ValueError) as exc:
                raise ValueError(f"{path}:{lineno}: invalid run-log line: {exc}") from exc
    return RunLog(path=path, events=tuple(events))


@dataclass
class PhaseStat:
    """Aggregated timing of one span name."""

    name: str
    count: int = 0
    total_s: float = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


def _interval_union(intervals: list[tuple[float, float]]) -> float:
    """Total length covered by the union of ``(start, end)`` intervals."""
    covered = 0.0
    end = float("-inf")
    for t0, t1 in sorted(intervals):
        if t1 <= end:
            continue
        covered += t1 - max(t0, end)
        end = t1
    return covered


@dataclass
class RunSummary:
    """Everything ``repro obs summary`` renders."""

    phases: list[PhaseStat] = field(default_factory=list)
    batch_wall_s: float = 0.0
    coverage: float = 0.0
    counters: dict[str, int] = field(default_factory=dict)
    n_events: int = 0

    def phase(self, name: str) -> PhaseStat | None:
        for stat in self.phases:
            if stat.name == name:
                return stat
        return None

    def render(self) -> str:
        from repro.experiments.report import format_table

        rows = []
        for stat in sorted(self.phases, key=lambda s: -s.total_s):
            share = stat.total_s / self.batch_wall_s if self.batch_wall_s else 0.0
            rows.append([
                stat.name,
                str(stat.count),
                f"{stat.total_s:8.3f}",
                f"{stat.mean_s * 1e3:9.2f}",
                f"{share:7.1%}",
            ])
        table = format_table(
            "where the time went",
            ["phase", "count", "total s", "mean ms", "of batch"],
            rows,
            align_left_cols=1,
        )
        lines = [
            table,
            f"batch wall {self.batch_wall_s:.3f}s; span coverage "
            f"{self.coverage:.1%} ({self.n_events} events)",
        ]
        if self.counters:
            counter_rows = [[name, f"{value:,}"] for name, value in sorted(self.counters.items())]
            lines.append("")
            lines.append(format_table("counters", ["name", "value"], counter_rows,
                                      align_left_cols=1))
        return "\n".join(lines)


def summarize(run: RunLog) -> RunSummary:
    """Aggregate a run log into the per-phase attribution summary.

    The batch interval is the longest ``batch`` span when one exists
    (the normal case for ``repro sweep``), otherwise the epoch extent of
    all spans.  Coverage is the union of every *other* span clipped to
    that interval — nesting and cross-process overlap collapse to the
    question "was anything instrumented running at this instant?".
    """
    spans = run.spans()
    phases: dict[str, PhaseStat] = {}
    for sp in spans:
        stat = phases.get(sp["name"])
        if stat is None:
            stat = phases[sp["name"]] = PhaseStat(sp["name"])
        stat.count += 1
        stat.total_s += sp["dur_s"]

    batches = [sp for sp in spans if sp["name"] == "batch"]
    if batches:
        outer = max(batches, key=lambda sp: sp["dur_s"])
        lo, hi, wall = outer["t0"], outer["t1"], outer["dur_s"]
    elif spans:
        lo = min(sp["t0"] for sp in spans)
        hi = max(sp["t1"] for sp in spans)
        wall = hi - lo
    else:
        lo = hi = wall = 0.0

    intervals = [
        (max(sp["t0"], lo), min(sp["t1"], hi))
        for sp in spans
        if sp["name"] != "batch" and sp["t1"] > lo and sp["t0"] < hi
    ]
    covered = _interval_union(intervals)
    span_extent = hi - lo
    coverage = min(covered / span_extent, 1.0) if span_extent > 0 else 0.0

    # Counters: last metrics snapshot per process, summed across processes
    # (each process owns a distinct registry, so summing never double-counts).
    last_per_pid: dict[int, dict] = {}
    for ev in run.metrics_events():
        last_per_pid[ev["pid"]] = ev["counters"]
    counters: dict[str, int] = {}
    for snap in last_per_pid.values():
        for name, value in snap.items():
            counters[name] = counters.get(name, 0) + value

    return RunSummary(
        phases=list(phases.values()),
        batch_wall_s=wall,
        coverage=coverage,
        counters=counters,
        n_events=len(run.events),
    )

"""Analytic substrate: stack-distance reuse profiling and prediction."""

from repro.analytic.stack import StackProfile, profile_blocks, stack_distances

__all__ = ["StackProfile", "profile_blocks", "stack_distances"]

"""Stack-distance analysis: predict miss rate vs capacity analytically.

A classic result (Mattson et al., 1970): for a fully associative LRU
cache, a reference hits iff its *stack distance* — the number of
distinct blocks touched since the previous reference to the same block —
is smaller than the capacity in blocks.  One pass over a trace therefore
yields the whole miss-rate-vs-size curve, which is how an architect
sketches Figure 3 before running any simulation.

The profiler here is the O(n log n) Fenwick-tree formulation, so it
handles experiment-scale streams directly.  Set-associative caches track
the fully associative curve closely at 8+ ways; the validation bench
(``benchmarks/bench_analytic_validation.py``) quantifies the gap against
the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["StackProfile", "stack_distances", "profile_blocks"]


class _Fenwick:
    """Prefix-sum tree over time slots (1-based)."""

    def __init__(self, n: int) -> None:
        self._tree = np.zeros(n + 1, dtype=np.int64)
        self._n = n

    def add(self, i: int, delta: int) -> None:
        i += 1
        while i <= self._n:
            self._tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        """Sum of slots [0, i)."""
        total = 0
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return int(total)


def stack_distances(blocks: np.ndarray) -> np.ndarray:
    """Stack distance per reference (−1 for first touches).

    Args:
        blocks: Block identifiers per reference, in program order.

    Returns:
        An int64 array the same length; entry *i* is the number of
        distinct other blocks referenced between reference *i* and the
        previous reference to the same block, or −1 on first touch.
    """
    n = len(blocks)
    out = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return out
    tree = _Fenwick(n)
    last_pos: dict[int, int] = {}
    for i, b in enumerate(blocks.tolist()):
        prev = last_pos.get(b)
        if prev is not None:
            # distinct blocks since prev = marked slots in (prev, i)
            out[i] = tree.prefix(i) - tree.prefix(prev + 1)
            tree.add(prev, -1)
        tree.add(i, +1)
        last_pos[b] = i
    return out


@dataclass(frozen=True)
class StackProfile:
    """Reuse profile of one reference stream.

    ``histogram[d]`` counts references at stack distance *d* (clipped at
    ``len(histogram) - 1``); ``cold`` counts first touches; ``total`` is
    all references.
    """

    histogram: np.ndarray
    cold: int
    total: int

    def miss_rate(self, capacity_blocks: int) -> float:
        """Predicted fully associative LRU miss rate at a capacity."""
        if capacity_blocks <= 0:
            raise ValueError(f"capacity_blocks must be positive, got {capacity_blocks}")
        if self.total == 0:
            return 0.0
        hits = int(self.histogram[: min(capacity_blocks, len(self.histogram))].sum())
        return 1.0 - hits / self.total

    def curve(self, capacities_blocks: list[int]) -> list[tuple[int, float]]:
        """(capacity, predicted miss rate) points."""
        return [(c, self.miss_rate(c)) for c in capacities_blocks]

    @property
    def cold_share(self) -> float:
        """Fraction of references that are first touches."""
        return self.cold / self.total if self.total else 0.0


def profile_blocks(blocks: np.ndarray, max_distance: int = 1 << 16) -> StackProfile:
    """Build a :class:`StackProfile` from a block reference stream."""
    distances = stack_distances(np.asarray(blocks))
    cold = int(np.count_nonzero(distances < 0))
    reuse = distances[distances >= 0]
    clipped = np.minimum(reuse, max_distance - 1)
    histogram = np.bincount(clipped, minlength=max_distance).astype(np.int64)
    return StackProfile(histogram=histogram, cold=cold, total=len(distances))

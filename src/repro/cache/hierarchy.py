"""Two-level hierarchy: split L1 caches filtering the trace into an L2 stream.

The paper's techniques act on the shared L2, so the hierarchy is split in
two stages for speed and composability:

1. :func:`l1_filter` simulates the split L1I/L1D pair once per trace and
   captures everything that escapes to the L2 — demand misses plus dirty
   write-backs — as a compact :class:`L2Stream` of numpy columns.
2. Each L2 *design* (baseline, static partition, dynamic partition, ...)
   replays that stream.  A design sweep therefore pays the L1 cost once.

This staging is exact for designs that do not change L1 behaviour, which
holds for every design in the paper (all operate strictly below the L1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.cache.set_assoc import SetAssociativeCache
from repro.cache.stats import CacheStats
from repro.config import PlatformConfig
from repro.trace.access import Trace
from repro.types import AccessKind, Privilege

__all__ = ["STREAM_COLUMNS", "L2Stream", "l1_filter"]

#: The five parallel column arrays of an :class:`L2Stream`, with the
#: exact dtype each must carry.  This is the stream's serialization
#: contract: :meth:`L2Stream.columns` exports them in this order and
#: :meth:`L2Stream.from_columns` refuses any deviation, so a stream
#: that round-trips through disk is bit-identical to a fresh build.
STREAM_COLUMNS = (
    ("ticks", np.dtype(np.int64)),
    ("addrs", np.dtype(np.uint64)),
    ("privs", np.dtype(np.uint8)),
    ("writes", np.dtype(np.bool_)),
    ("demand", np.dtype(np.bool_)),
)


@dataclass(frozen=True)
class L2Stream:
    """Everything the L1 pair sends to the L2, in program order.

    Columns are parallel numpy arrays (one row per L2 access):

    * ``ticks`` — trace tick of the access;
    * ``addrs`` — block-aligned byte address;
    * ``privs`` — :class:`Privilege` of the requester (for write-backs,
      of the block's owner);
    * ``writes`` — True for write-backs arriving from the L1D;
    * ``demand`` — True for demand fetches (False for write-backs).

    ``instructions``, ``trace_accesses`` and ``duration_ticks`` carry the
    source-trace context the timing and energy models need.
    """

    name: str
    ticks: np.ndarray
    addrs: np.ndarray
    privs: np.ndarray
    writes: np.ndarray
    demand: np.ndarray
    instructions: int
    trace_accesses: int
    duration_ticks: int
    l1i_stats: CacheStats
    l1d_stats: CacheStats

    def __len__(self) -> int:
        return len(self.ticks)

    @property
    def demand_count(self) -> int:
        """Number of demand (non-write-back) L2 accesses."""
        return int(np.count_nonzero(self.demand))

    @property
    def l1_demand_misses(self) -> int:
        """Demand misses of both L1s (each stalls the core for L2 latency)."""
        return self.l1i_stats.demand_misses + self.l1d_stats.demand_misses

    def kernel_share(self) -> float:
        """Fraction of L2 accesses at kernel privilege — the paper's
        motivating >40% statistic."""
        if not len(self.ticks):
            return 0.0
        return float(np.mean(self.privs == np.uint8(Privilege.KERNEL)))

    def columns(self) -> dict[str, np.ndarray]:
        """The five parallel column arrays keyed by name (views, not copies)."""
        return {name: getattr(self, name) for name, _ in STREAM_COLUMNS}

    def context(self) -> dict:
        """Scalar trace context plus L1 stats as a JSON-ready payload.

        Together with :meth:`columns` this is everything a stream holds;
        :meth:`from_columns` is the exact inverse.
        """
        return {
            "name": self.name,
            "instructions": self.instructions,
            "trace_accesses": self.trace_accesses,
            "duration_ticks": self.duration_ticks,
            "l1i_stats": self.l1i_stats.to_dict(),
            "l1d_stats": self.l1d_stats.to_dict(),
        }

    @classmethod
    def from_columns(cls, columns: dict[str, np.ndarray], context: dict) -> "L2Stream":
        """Rebuild a stream from :meth:`columns` / :meth:`context` payloads.

        Arrays are adopted as-is (memory-mapped inputs stay memory-mapped);
        a missing column, a wrong dtype or mismatched lengths raises
        ``ValueError`` — deserialization is exact or it is an error.
        """
        rows = None
        for name, dtype in STREAM_COLUMNS:
            arr = columns.get(name)
            if arr is None:
                raise ValueError(f"stream column {name!r} is missing")
            if arr.dtype != dtype:
                raise ValueError(f"stream column {name!r} has dtype {arr.dtype}, expected {dtype}")
            if arr.ndim != 1:
                raise ValueError(f"stream column {name!r} must be 1-D, got shape {arr.shape}")
            if rows is None:
                rows = len(arr)
            elif len(arr) != rows:
                raise ValueError(
                    f"stream column {name!r} has {len(arr)} rows, expected {rows}"
                )
        return cls(
            name=context["name"],
            ticks=columns["ticks"],
            addrs=columns["addrs"],
            privs=columns["privs"],
            writes=columns["writes"],
            demand=columns["demand"],
            instructions=int(context["instructions"]),
            trace_accesses=int(context["trace_accesses"]),
            duration_ticks=int(context["duration_ticks"]),
            l1i_stats=CacheStats.from_dict(context["l1i_stats"]),
            l1d_stats=CacheStats.from_dict(context["l1d_stats"]),
        )

    def select(self, mask: np.ndarray) -> "L2Stream":
        """Sub-stream keeping only rows selected by ``mask``."""
        return L2Stream(
            self.name,
            self.ticks[mask],
            self.addrs[mask],
            self.privs[mask],
            self.writes[mask],
            self.demand[mask],
            self.instructions,
            self.trace_accesses,
            self.duration_ticks,
            self.l1i_stats,
            self.l1d_stats,
        )


def l1_filter(
    trace: Trace, platform: PlatformConfig, policy: str = "lru", engine: str = "auto"
) -> L2Stream:
    """Run ``trace`` through split L1 caches, returning the L2 stream.

    Instruction fetches go through the L1I, loads/stores through the L1D
    (write-back, write-allocate).  Dirty L1D victims become write-back
    rows in the output at the tick of the access that evicted them.

    ``engine`` selects the simulation path: ``"auto"`` uses the
    vectorized fast kernel (:mod:`repro.cache.fastsim`) whenever the
    configuration qualifies (LRU replacement — the L1s never use
    retention or gating) and falls back to the per-access reference
    engine otherwise; ``"fast"`` requires the kernel (raising when the
    policy disqualifies it); ``"reference"`` forces the reference
    engine.  Both paths produce bit-identical streams and L1 stats.
    """
    if engine not in ("auto", "fast", "reference"):
        raise ValueError(f"engine must be 'auto', 'fast' or 'reference', got {engine!r}")
    with obs.span("l1.filter", app=trace.name, accesses=len(trace)) as sp:
        if engine != "reference" and policy == "lru":
            from repro.cache import fastsim

            if engine == "fast" or fastsim.enabled():
                obs.inc("l1.dispatch.fastsim")
                sp.note(engine="fastsim")
                return fastsim.fast_l1_filter(trace, platform)
        if engine == "fast":
            raise ValueError(
                f"the fast L1 filter supports only the 'lru' policy, got {policy!r}"
            )
        obs.inc("l1.dispatch.reference")
        sp.note(engine="reference")
        return _reference_l1_filter(trace, platform, policy)


def _reference_l1_filter(trace: Trace, platform: PlatformConfig, policy: str) -> L2Stream:
    """The per-access L1 filter (see :func:`l1_filter` for the contract)."""
    l1i = SetAssociativeCache(platform.l1i, policy, name="l1i")
    l1d = SetAssociativeCache(platform.l1d, policy, name="l1d")

    out_tick: list[int] = []
    out_addr: list[int] = []
    out_priv: list[int] = []
    out_write: list[bool] = []
    out_demand: list[bool] = []

    ticks = trace.ticks.tolist()
    addrs = trace.addrs.tolist()
    kinds = trace.kinds.tolist()
    privs = trace.privs.tolist()
    ifetch = int(AccessKind.IFETCH)
    store = int(AccessKind.STORE)

    for tick, addr, kind, priv in zip(ticks, addrs, kinds, privs):
        if kind == ifetch:
            result = l1i.access(addr, False, priv, tick)
        else:
            result = l1d.access(addr, kind == store, priv, tick)
        if result.hit:
            continue
        out_tick.append(tick)
        out_addr.append(addr)
        out_priv.append(priv)
        out_write.append(False)
        out_demand.append(True)
        if result.writeback:
            out_tick.append(tick)
            out_addr.append(result.victim_addr)
            out_priv.append(result.victim_priv)
            out_write.append(True)
            out_demand.append(False)

    return L2Stream(
        name=trace.name,
        ticks=np.asarray(out_tick, dtype=np.int64),
        addrs=np.asarray(out_addr, dtype=np.uint64),
        privs=np.asarray(out_priv, dtype=np.uint8),
        writes=np.asarray(out_write, dtype=bool),
        demand=np.asarray(out_demand, dtype=bool),
        instructions=trace.instructions,
        trace_accesses=len(trace),
        duration_ticks=trace.duration_ticks,
        l1i_stats=l1i.stats,
        l1d_stats=l1d.stats,
    )

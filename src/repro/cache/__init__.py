"""Cache simulation substrate.

Public surface:

* :class:`SetAssociativeCache` / :class:`AccessResult` — the engine.
* :class:`PartitionedCache` — per-privilege user/kernel segments.
* :func:`l1_filter` / :class:`L2Stream` — split-L1 front end.
* :class:`CacheStats` — counters and derived rates.
* :func:`make_policy` and the policy classes — replacement policies.
* :func:`simulate_trace` / :func:`fastsim_supports` — the vectorized
  fast-path kernel (see ``docs/performance.md``).
"""

from repro.cache.analysis import SetPressure, occupancy_by_way, set_pressure
from repro.cache.fastsim import simulate_trace
from repro.cache.fastsim import supports_cache as fastsim_supports
from repro.cache.hierarchy import L2Stream, l1_filter
from repro.cache.partitioned import PartitionedCache
from repro.cache.prefetch import (
    Prefetcher,
    SequentialPrefetcher,
    StridePrefetcher,
    make_prefetcher,
)
from repro.cache.replacement import (
    POLICY_NAMES,
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    SRRIPPolicy,
    TreePLRUPolicy,
    make_policy,
)
from repro.cache.set_assoc import REFRESH_MODES, AccessResult, SetAssociativeCache
from repro.cache.stats import CacheStats
from repro.cache.waypart import WayMaskPartitionedCache

__all__ = [
    "SetPressure",
    "occupancy_by_way",
    "set_pressure",
    "Prefetcher",
    "SequentialPrefetcher",
    "StridePrefetcher",
    "make_prefetcher",
    "WayMaskPartitionedCache",
    "L2Stream",
    "l1_filter",
    "PartitionedCache",
    "POLICY_NAMES",
    "FIFOPolicy",
    "LRUPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "SRRIPPolicy",
    "TreePLRUPolicy",
    "make_policy",
    "REFRESH_MODES",
    "AccessResult",
    "SetAssociativeCache",
    "CacheStats",
    "simulate_trace",
    "fastsim_supports",
]

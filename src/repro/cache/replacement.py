"""Replacement policies for the set-associative cache model.

A policy owns a small per-set state blob.  The cache calls ``on_fill`` /
``on_hit`` on every access and ``victim`` only when a set is full.  All
policies operate on way indices so they compose with way resizing (the
dynamic partition shrinks a segment by dropping its highest ways).

Implemented: true LRU, FIFO, random, tree-PLRU and SRRIP — the L2 policy
is an ablation axis in the benchmarks (the paper's platform uses LRU-like
replacement).
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = [
    "ReplacementPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "RandomPolicy",
    "TreePLRUPolicy",
    "SRRIPPolicy",
    "make_policy",
    "POLICY_NAMES",
]


class ReplacementPolicy(abc.ABC):
    """Interface every replacement policy implements."""

    name: str = "abstract"

    @abc.abstractmethod
    def init_set(self, ways: int) -> object:
        """Create the per-set policy state for a set of ``ways`` frames."""

    @abc.abstractmethod
    def on_hit(self, state: object, way: int) -> None:
        """Record a hit on ``way``."""

    @abc.abstractmethod
    def on_fill(self, state: object, way: int) -> None:
        """Record a fill into ``way``."""

    @abc.abstractmethod
    def victim(self, state: object, ways: int) -> int:
        """Choose the way to evict from a full set of ``ways`` frames."""

    def resize(self, state: object, old_ways: int, new_ways: int) -> object:
        """Adapt per-set state after the way count changes.

        The default rebuilds state from scratch, which is correct (if
        history-lossy) for every policy here.
        """
        return self.init_set(new_ways)

    def hit_rank(self, state: object, way: int, ways: int) -> int | None:
        """Recency rank of ``way`` (0 = MRU), when the policy tracks it.

        Only true-LRU can answer; others return ``None``.  The dynamic
        partition controller uses ranks to detect useless ways.
        """
        return None


class LRUPolicy(ReplacementPolicy):
    """True least-recently-used via per-way sequence numbers."""

    name = "lru"

    def __init__(self) -> None:
        self._seq = 0

    def init_set(self, ways: int) -> list[int]:
        return [0] * ways

    def on_hit(self, state: list[int], way: int) -> None:
        self._seq += 1
        state[way] = self._seq

    on_fill = on_hit

    def victim(self, state: list[int], ways: int) -> int:
        best, best_seq = 0, state[0]
        for w in range(1, ways):
            if state[w] < best_seq:
                best, best_seq = w, state[w]
        return best

    def resize(self, state: list[int], old_ways: int, new_ways: int) -> list[int]:
        if new_ways <= old_ways:
            return state[:new_ways]
        return state + [0] * (new_ways - old_ways)

    def hit_rank(self, state: list[int], way: int, ways: int) -> int:
        mine = state[way]
        return sum(1 for w in range(ways) if state[w] > mine)


class FIFOPolicy(ReplacementPolicy):
    """First-in first-out: evict the oldest fill, ignore hits."""

    name = "fifo"

    def __init__(self) -> None:
        self._seq = 0

    def init_set(self, ways: int) -> list[int]:
        return [0] * ways

    def on_hit(self, state: list[int], way: int) -> None:
        pass

    def on_fill(self, state: list[int], way: int) -> None:
        self._seq += 1
        state[way] = self._seq

    def victim(self, state: list[int], ways: int) -> int:
        best, best_seq = 0, state[0]
        for w in range(1, ways):
            if state[w] < best_seq:
                best, best_seq = w, state[w]
        return best

    def resize(self, state: list[int], old_ways: int, new_ways: int) -> list[int]:
        if new_ways <= old_ways:
            return state[:new_ways]
        return state + [0] * (new_ways - old_ways)


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim (seeded, hence reproducible)."""

    name = "random"

    def __init__(self, seed: int = 0xCACE) -> None:
        self._rng = np.random.default_rng(seed)

    def init_set(self, ways: int) -> None:
        return None

    def on_hit(self, state: None, way: int) -> None:
        pass

    def on_fill(self, state: None, way: int) -> None:
        pass

    def victim(self, state: None, ways: int) -> int:
        return int(self._rng.integers(0, ways))


class TreePLRUPolicy(ReplacementPolicy):
    """Binary-tree pseudo-LRU (the common hardware approximation).

    State is ``(ways, bits)`` where ``bits`` is the classic ``ways - 1``
    bit array; each bit points towards the pseudo-least-recent half of
    its subtree.  Non-power-of-two way counts work because both the touch
    walk and the victim walk halve the *real* ``[0, ways)`` range, never
    producing an out-of-range way.
    """

    name = "plru"

    def init_set(self, ways: int) -> list[int]:
        return [0] * max(1, ways - 1)

    def _touch(self, state: list[int], way: int, ways: int) -> None:
        """Walk the tree towards ``way``, pointing bits away from it."""
        node = 0
        lo, hi = 0, ways
        while hi - lo > 1 and node < len(state):
            mid = (lo + hi) // 2
            if way < mid:
                state[node] = 1  # pseudo-LRU side is now the right half
                node = 2 * node + 1
                hi = mid
            else:
                state[node] = 0  # pseudo-LRU side is now the left half
                node = 2 * node + 2
                lo = mid

    def on_hit(self, state: list[int], way: int) -> None:
        self._touch(state, way, len(state) + 1)

    def on_fill(self, state: list[int], way: int) -> None:
        self._touch(state, way, len(state) + 1)

    def victim(self, state: list[int], ways: int) -> int:
        node = 0
        lo, hi = 0, ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            bit = state[node] if node < len(state) else 0
            if bit:  # pseudo-LRU block lives in the right half
                node = 2 * node + 2
                lo = mid
            else:
                node = 2 * node + 1
                hi = mid
        return lo


class SRRIPPolicy(ReplacementPolicy):
    """Static re-reference interval prediction (Jaleel et al., ISCA'10).

    2-bit RRPV per way; fills insert at ``max - 1``, hits promote to 0,
    victims are ways at ``max`` (aging everyone when none qualifies).
    """

    name = "srrip"
    max_rrpv = 3

    def init_set(self, ways: int) -> list[int]:
        return [self.max_rrpv] * ways

    def on_hit(self, state: list[int], way: int) -> None:
        state[way] = 0

    def on_fill(self, state: list[int], way: int) -> None:
        state[way] = self.max_rrpv - 1

    def victim(self, state: list[int], ways: int) -> int:
        while True:
            for w in range(ways):
                if state[w] >= self.max_rrpv:
                    return w
            for w in range(ways):
                state[w] += 1

    def resize(self, state: list[int], old_ways: int, new_ways: int) -> list[int]:
        if new_ways <= old_ways:
            return state[:new_ways]
        return state + [self.max_rrpv] * (new_ways - old_ways)


POLICY_NAMES = ("lru", "fifo", "random", "plru", "srrip")


def make_policy(name: str, seed: int = 0xCACE) -> ReplacementPolicy:
    """Instantiate a policy by name (one of :data:`POLICY_NAMES`)."""
    table = {
        "lru": LRUPolicy,
        "fifo": FIFOPolicy,
        "plru": TreePLRUPolicy,
        "srrip": SRRIPPolicy,
    }
    if name == "random":
        return RandomPolicy(seed)
    if name not in table:
        raise ValueError(f"unknown replacement policy {name!r}; choose from {POLICY_NAMES}")
    return table[name]()

"""Randomized differential verification of fastsim against the reference.

The fast kernel (:mod:`repro.cache.fastsim`) is trusted *by construction*:
every release must show exact :class:`~repro.cache.stats.CacheStats`
equality with :class:`~repro.cache.set_assoc.SetAssociativeCache` over a
randomized family of trace × geometry × retention configurations.  This
module is that harness — ``tests/test_fastsim.py`` drives it across a
seed range, and it is importable for ad-hoc bisection::

    from repro.cache.diffsim import sample_case, run_case
    ref, fast = run_case(sample_case(seed=7))
    assert ref.to_dict() == fast.to_dict()

Workloads are deliberately adversarial for the envelope: sub-block
address offsets, skewed set pressure, both privilege levels, write-back
(non-demand) rows, and — for the retention cases — tick gaps sampled
around the retention window so expiry invalidations, expired-frame
reclaims and finalize-time drains all fire.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.fastsim import simulate_trace
from repro.cache.set_assoc import SetAssociativeCache
from repro.cache.stats import CacheStats
from repro.config import CacheGeometry, PlatformConfig

__all__ = [
    "DiffCase",
    "sample_case",
    "run_case",
    "assert_case_equal",
    "DynamicDiffCase",
    "sample_dynamic_case",
    "run_dynamic_case",
    "assert_dynamic_case_equal",
]


@dataclass(frozen=True)
class DiffCase:
    """One randomized configuration of the differential harness."""

    seed: int
    sets: int
    ways: int
    block_size: int
    refresh_mode: str           # "none" or "invalidate"
    retention_ticks: int | None
    length: int
    addr_blocks: int            # footprint, in distinct block addresses
    max_gap: int                # upper bound of inter-access tick gaps
    write_frac: float
    kernel_frac: float
    wb_frac: float              # fraction of rows marked non-demand

    @property
    def geometry(self) -> CacheGeometry:
        return CacheGeometry(
            self.sets * self.ways * self.block_size, self.ways, self.block_size
        )

    def describe(self) -> str:
        return (
            f"seed={self.seed} {self.sets}x{self.ways}w/{self.block_size}B "
            f"{self.refresh_mode}"
            + (f"(ret={self.retention_ticks})" if self.retention_ticks else "")
            + f" n={self.length} blocks={self.addr_blocks} gap<={self.max_gap}"
        )


def sample_case(seed: int) -> DiffCase:
    """Draw one configuration; even seeds are retention-free, odd seeds
    use invalidate-on-expiry, so any seed range covers both modes."""
    rng = np.random.default_rng(seed)
    sets = int(rng.choice([1, 2, 4, 16, 64]))
    ways = int(rng.choice([1, 2, 3, 4, 8, 16]))
    block_size = int(rng.choice([32, 64, 128]))
    refresh_mode = "invalidate" if seed % 2 else "none"
    retention_ticks = int(rng.integers(20, 2_000)) if refresh_mode == "invalidate" else None
    capacity_blocks = sets * ways
    footprint = max(1, int(capacity_blocks * float(rng.choice([0.5, 1.0, 2.0, 4.0]))))
    if retention_ticks is not None:
        # Gaps straddling the window make expiry outcomes order-sensitive.
        max_gap = max(2, int(retention_ticks * float(rng.choice([0.05, 0.4, 1.5]))))
    else:
        max_gap = int(rng.choice([1, 4, 60]))
    return DiffCase(
        seed=seed,
        sets=sets,
        ways=ways,
        block_size=block_size,
        refresh_mode=refresh_mode,
        retention_ticks=retention_ticks,
        length=int(rng.integers(1_500, 4_000)),
        addr_blocks=footprint,
        max_gap=max_gap,
        write_frac=float(rng.uniform(0.05, 0.6)),
        kernel_frac=float(rng.uniform(0.1, 0.7)),
        wb_frac=float(rng.uniform(0.0, 0.25)),
    )


def _workload(case: DiffCase):
    """Generate the access columns of one case (deterministic per seed)."""
    rng = np.random.default_rng(case.seed ^ 0xFA57)
    n = case.length
    blocks = rng.integers(0, case.addr_blocks, size=n).astype(np.uint64)
    offsets = rng.integers(0, case.block_size, size=n).astype(np.uint64)
    addrs = blocks * np.uint64(case.block_size) + offsets
    ticks = np.cumsum(rng.integers(0, case.max_gap + 1, size=n)).astype(np.int64)
    writes = rng.random(n) < case.write_frac
    privs = (rng.random(n) < case.kernel_frac).astype(np.uint8)
    demand = rng.random(n) >= case.wb_frac
    final_tick = int(ticks[-1]) + case.max_gap + 1
    return ticks, addrs, privs, writes, demand, final_tick


def run_case(case: DiffCase) -> tuple[CacheStats, CacheStats]:
    """Run one case through both engines; returns (reference, fast) stats."""
    ticks, addrs, privs, writes, demand, final_tick = _workload(case)

    cache = SetAssociativeCache(
        case.geometry,
        "lru",
        retention_ticks=case.retention_ticks,
        refresh_mode=case.refresh_mode,
        name="diff-ref",
    )
    access = cache.access
    for tick, addr, priv, isw, dm in zip(
        ticks.tolist(), addrs.tolist(), privs.tolist(), writes.tolist(), demand.tolist()
    ):
        access(addr, isw, priv, tick, dm)
    cache.finalize(final_tick)
    cache.stats.check_invariants()

    fast_stats, _ = simulate_trace(
        case.geometry,
        ticks,
        addrs,
        privs,
        writes,
        demand,
        retention_ticks=case.retention_ticks,
        refresh_mode=case.refresh_mode,
        finalize_tick=final_tick,
    )
    return cache.stats, fast_stats


def assert_case_equal(case: DiffCase) -> None:
    """Raise ``AssertionError`` with a field-level diff on any mismatch."""
    ref, fast = run_case(case)
    ref_d, fast_d = ref.to_dict(), fast.to_dict()
    if ref_d != fast_d:
        mismatches = [
            f"  {key}: reference={ref_d[key]!r} fast={fast_d[key]!r}"
            for key in ref_d
            if ref_d[key] != fast_d[key]
        ]
        raise AssertionError(
            "fastsim diverged from the reference engine on "
            + case.describe() + "\n" + "\n".join(mismatches)
        )


# ----------------------------------------------------------------------
# dynamic-design differential harness (epoch-chunked replay)


@dataclass(frozen=True)
class DynamicDiffCase:
    """One randomized configuration of the dynamic-design harness.

    Covers the full :class:`~repro.core.dynamic_partition.
    DynamicPartitionDesign` run — controller resizes, idle gating,
    wake-on-first-access, retention expiry and gating semantics — not
    just raw cache counters, so equality is asserted on the whole
    :class:`~repro.core.result.DesignResult` (timelines, resize counts
    and energy/timing numbers included).
    """

    seed: int
    sets: int
    block_size: int
    clock_hz: float             # low clocks shrink retention windows
    epoch_ticks: int
    max_user_ways: int
    max_kernel_ways: int
    start_user_ways: int
    start_kernel_ways: int
    idle_accesses: int
    decision_accesses: int
    grow_step: int
    user_tech: str              # STT retention class, or "sram"
    kernel_tech: str
    bursts: int
    burst_len: int
    burst_gap: int              # upper bound of intra-burst tick gaps
    idle_gap: int               # upper bound of inter-burst idle spans
    addr_blocks: int
    write_frac: float
    kernel_frac: float
    wb_frac: float

    def describe(self) -> str:
        return (
            f"seed={self.seed} {self.sets}s/{self.block_size}B clock={self.clock_hz:g} "
            f"epoch={self.epoch_ticks} user={self.user_tech}<= {self.max_user_ways}w "
            f"kernel={self.kernel_tech}<={self.max_kernel_ways}w "
            f"bursts={self.bursts}x{self.burst_len} idle<={self.idle_gap}"
        )


def sample_dynamic_case(seed: int) -> DynamicDiffCase:
    """Draw one dynamic-design configuration.

    Workloads are bursty with multi-epoch idle gaps — the shape the
    controller exists for — so idle gating, wake-on-first-access and
    regrowth all fire.  Technologies mix retention classes with SRAM
    (volatile gating: contents lost when a way powers off), and low
    clock rates pull the retention windows inside the trace span.
    """
    rng = np.random.default_rng(seed ^ 0xD1FF)
    epoch_ticks = int(rng.choice([2_000, 5_000, 12_500, 25_000]))
    max_user = int(rng.integers(2, 11))
    max_kernel = int(rng.integers(2, 7))
    techs = ["short", "medium", "long", "sram"]
    return DynamicDiffCase(
        seed=seed,
        sets=int(rng.choice([4, 16, 64])),
        block_size=int(rng.choice([32, 64])),
        clock_hz=float(rng.choice([1e5, 3e5, 1e6])),
        epoch_ticks=epoch_ticks,
        max_user_ways=max_user,
        max_kernel_ways=max_kernel,
        start_user_ways=int(rng.integers(1, max_user + 1)),
        start_kernel_ways=int(rng.integers(1, max_kernel + 1)),
        idle_accesses=int(rng.choice([0, 8, 24])),
        decision_accesses=int(rng.choice([40, 120, 300])),
        grow_step=int(rng.choice([1, 3])),
        user_tech=str(rng.choice(techs)),
        kernel_tech=str(rng.choice(techs)),
        bursts=int(rng.integers(4, 12)),
        burst_len=int(rng.integers(200, 900)),
        burst_gap=int(rng.choice([4, 16, 40])),
        idle_gap=int(epoch_ticks * float(rng.choice([0.5, 2.0, 6.0]))),
        addr_blocks=int(rng.integers(64, 2_048)),
        write_frac=float(rng.uniform(0.05, 0.6)),
        kernel_frac=float(rng.uniform(0.1, 0.7)),
        wb_frac=float(rng.uniform(0.0, 0.25)),
    )


def _dynamic_stream(case: DynamicDiffCase):
    """Synthesize a bursty L2 stream for one case (deterministic)."""
    from repro.cache.hierarchy import L2Stream

    rng = np.random.default_rng(case.seed ^ 0xB0057)
    n = case.bursts * case.burst_len
    gaps = rng.integers(1, case.burst_gap + 1, size=n)
    # every burst boundary opens an idle span, often several epochs long
    starts = np.arange(0, n, case.burst_len)[1:]
    gaps[starts] += rng.integers(0, case.idle_gap + 1, size=len(starts))
    ticks = np.cumsum(gaps).astype(np.int64)
    blocks = rng.integers(0, case.addr_blocks, size=n).astype(np.uint64)
    offsets = rng.integers(0, case.block_size, size=n).astype(np.uint64)
    addrs = blocks * np.uint64(case.block_size) + offsets
    return L2Stream(
        name=f"dyn-diff-{case.seed}",
        ticks=ticks,
        addrs=addrs,
        privs=(rng.random(n) < case.kernel_frac).astype(np.uint8),
        writes=rng.random(n) < case.write_frac,
        demand=rng.random(n) >= case.wb_frac,
        instructions=n * 3,
        trace_accesses=n * 4,
        duration_ticks=int(ticks[-1]) + case.burst_gap + 1,
        l1i_stats=CacheStats(),
        l1d_stats=CacheStats(),
    )


def run_dynamic_case(case: DynamicDiffCase):
    """Run one case through both engines; returns (reference, fast)
    :class:`~repro.core.result.DesignResult` objects."""
    from repro.core.dynamic_partition import (
        DynamicControllerConfig,
        DynamicPartitionDesign,
    )
    from repro.energy.technology import sram, stt_ram

    def tech(name):
        return sram() if name == "sram" else stt_ram(name)

    config = DynamicControllerConfig(
        epoch_ticks=case.epoch_ticks,
        max_user_ways=case.max_user_ways,
        max_kernel_ways=case.max_kernel_ways,
        start_user_ways=case.start_user_ways,
        start_kernel_ways=case.start_kernel_ways,
        idle_accesses=case.idle_accesses,
        decision_accesses=case.decision_accesses,
        grow_step=case.grow_step,
    )
    design = DynamicPartitionDesign(
        config=config,
        user_tech=tech(case.user_tech),
        kernel_tech=tech(case.kernel_tech),
    )
    l2_ways = max(case.max_user_ways, case.max_kernel_ways)
    platform = PlatformConfig(
        l1i=CacheGeometry(32 * 1024, 4, case.block_size),
        l1d=CacheGeometry(32 * 1024, 4, case.block_size),
        l2=CacheGeometry(case.sets * l2_ways * case.block_size, l2_ways, case.block_size),
        clock_hz=case.clock_hz,
    )
    stream = _dynamic_stream(case)
    ref = design.run(stream, platform, engine="reference")
    fast = design.run(stream, platform, engine="fast")
    return ref, fast


def assert_dynamic_case_equal(case: DynamicDiffCase) -> None:
    """Raise ``AssertionError`` with a field-level diff on any mismatch."""
    ref, fast = run_dynamic_case(case)
    ref_d, fast_d = ref.to_dict(), fast.to_dict()
    assert ref_d["extras"].pop("sim_engine") == "reference"
    assert fast_d["extras"].pop("sim_engine") == "fastsim"
    if ref_d != fast_d:
        mismatches = [
            f"  {key}: reference={ref_d[key]!r} fast={fast_d[key]!r}"
            for key in ref_d
            if ref_d[key] != fast_d[key]
        ]
        raise AssertionError(
            "the epoch-chunked kernel diverged from the reference engine on "
            + case.describe() + "\n" + "\n".join(mismatches)
        )

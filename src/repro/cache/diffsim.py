"""Randomized differential verification of fastsim against the reference.

The fast kernel (:mod:`repro.cache.fastsim`) is trusted *by construction*:
every release must show exact :class:`~repro.cache.stats.CacheStats`
equality with :class:`~repro.cache.set_assoc.SetAssociativeCache` over a
randomized family of trace × geometry × retention configurations.  This
module is that harness — ``tests/test_fastsim.py`` drives it across a
seed range, and it is importable for ad-hoc bisection::

    from repro.cache.diffsim import sample_case, run_case
    ref, fast = run_case(sample_case(seed=7))
    assert ref.to_dict() == fast.to_dict()

Workloads are deliberately adversarial for the envelope: sub-block
address offsets, skewed set pressure, both privilege levels, write-back
(non-demand) rows, and — for the retention cases — tick gaps sampled
around the retention window so expiry invalidations, expired-frame
reclaims and finalize-time drains all fire.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.fastsim import simulate_trace
from repro.cache.set_assoc import SetAssociativeCache
from repro.cache.stats import CacheStats
from repro.config import CacheGeometry

__all__ = ["DiffCase", "sample_case", "run_case", "assert_case_equal"]


@dataclass(frozen=True)
class DiffCase:
    """One randomized configuration of the differential harness."""

    seed: int
    sets: int
    ways: int
    block_size: int
    refresh_mode: str           # "none" or "invalidate"
    retention_ticks: int | None
    length: int
    addr_blocks: int            # footprint, in distinct block addresses
    max_gap: int                # upper bound of inter-access tick gaps
    write_frac: float
    kernel_frac: float
    wb_frac: float              # fraction of rows marked non-demand

    @property
    def geometry(self) -> CacheGeometry:
        return CacheGeometry(
            self.sets * self.ways * self.block_size, self.ways, self.block_size
        )

    def describe(self) -> str:
        return (
            f"seed={self.seed} {self.sets}x{self.ways}w/{self.block_size}B "
            f"{self.refresh_mode}"
            + (f"(ret={self.retention_ticks})" if self.retention_ticks else "")
            + f" n={self.length} blocks={self.addr_blocks} gap<={self.max_gap}"
        )


def sample_case(seed: int) -> DiffCase:
    """Draw one configuration; even seeds are retention-free, odd seeds
    use invalidate-on-expiry, so any seed range covers both modes."""
    rng = np.random.default_rng(seed)
    sets = int(rng.choice([1, 2, 4, 16, 64]))
    ways = int(rng.choice([1, 2, 3, 4, 8, 16]))
    block_size = int(rng.choice([32, 64, 128]))
    refresh_mode = "invalidate" if seed % 2 else "none"
    retention_ticks = int(rng.integers(20, 2_000)) if refresh_mode == "invalidate" else None
    capacity_blocks = sets * ways
    footprint = max(1, int(capacity_blocks * float(rng.choice([0.5, 1.0, 2.0, 4.0]))))
    if retention_ticks is not None:
        # Gaps straddling the window make expiry outcomes order-sensitive.
        max_gap = max(2, int(retention_ticks * float(rng.choice([0.05, 0.4, 1.5]))))
    else:
        max_gap = int(rng.choice([1, 4, 60]))
    return DiffCase(
        seed=seed,
        sets=sets,
        ways=ways,
        block_size=block_size,
        refresh_mode=refresh_mode,
        retention_ticks=retention_ticks,
        length=int(rng.integers(1_500, 4_000)),
        addr_blocks=footprint,
        max_gap=max_gap,
        write_frac=float(rng.uniform(0.05, 0.6)),
        kernel_frac=float(rng.uniform(0.1, 0.7)),
        wb_frac=float(rng.uniform(0.0, 0.25)),
    )


def _workload(case: DiffCase):
    """Generate the access columns of one case (deterministic per seed)."""
    rng = np.random.default_rng(case.seed ^ 0xFA57)
    n = case.length
    blocks = rng.integers(0, case.addr_blocks, size=n).astype(np.uint64)
    offsets = rng.integers(0, case.block_size, size=n).astype(np.uint64)
    addrs = blocks * np.uint64(case.block_size) + offsets
    ticks = np.cumsum(rng.integers(0, case.max_gap + 1, size=n)).astype(np.int64)
    writes = rng.random(n) < case.write_frac
    privs = (rng.random(n) < case.kernel_frac).astype(np.uint8)
    demand = rng.random(n) >= case.wb_frac
    final_tick = int(ticks[-1]) + case.max_gap + 1
    return ticks, addrs, privs, writes, demand, final_tick


def run_case(case: DiffCase) -> tuple[CacheStats, CacheStats]:
    """Run one case through both engines; returns (reference, fast) stats."""
    ticks, addrs, privs, writes, demand, final_tick = _workload(case)

    cache = SetAssociativeCache(
        case.geometry,
        "lru",
        retention_ticks=case.retention_ticks,
        refresh_mode=case.refresh_mode,
        name="diff-ref",
    )
    access = cache.access
    for tick, addr, priv, isw, dm in zip(
        ticks.tolist(), addrs.tolist(), privs.tolist(), writes.tolist(), demand.tolist()
    ):
        access(addr, isw, priv, tick, dm)
    cache.finalize(final_tick)
    cache.stats.check_invariants()

    fast_stats, _ = simulate_trace(
        case.geometry,
        ticks,
        addrs,
        privs,
        writes,
        demand,
        retention_ticks=case.retention_ticks,
        refresh_mode=case.refresh_mode,
        finalize_tick=final_tick,
    )
    return cache.stats, fast_stats


def assert_case_equal(case: DiffCase) -> None:
    """Raise ``AssertionError`` with a field-level diff on any mismatch."""
    ref, fast = run_case(case)
    ref_d, fast_d = ref.to_dict(), fast.to_dict()
    if ref_d != fast_d:
        mismatches = [
            f"  {key}: reference={ref_d[key]!r} fast={fast_d[key]!r}"
            for key in ref_d
            if ref_d[key] != fast_d[key]
        ]
        raise AssertionError(
            "fastsim diverged from the reference engine on "
            + case.describe() + "\n" + "\n".join(mismatches)
        )

"""The set-associative cache engine.

This is the workhorse of the reproduction: a single-level, write-back,
write-allocate, set-associative cache with

* pluggable replacement (:mod:`repro.cache.replacement`),
* per-block privilege ownership and cross-privilege eviction accounting
  (the paper's interference metric),
* optional finite data retention (STT-RAM) with two handling modes —
  ``"invalidate"`` (expired blocks silently die; a re-reference misses)
  and ``"rewrite"`` (a refresh controller rewrites live blocks each
  refresh period, charged to ``refresh_writes``), and
* online way resizing, used by the dynamic partition controller.

Time is the trace tick (core cycles).  Retention is expressed in ticks.
"""

from __future__ import annotations

from repro.cache.block import Entry
from repro.cache.replacement import LRUPolicy, ReplacementPolicy, make_policy
from repro.cache.stats import CacheStats
from repro.config import CacheGeometry

__all__ = ["AccessResult", "SetAssociativeCache", "REFRESH_MODES"]

REFRESH_MODES = ("none", "invalidate", "rewrite")

#: Refresh period as a fraction of the retention window in ``rewrite``
#: mode.  Refreshing at 80% of retention guarantees no cell ever expires.
_REFRESH_FRACTION = 0.8


class AccessResult:
    """Outcome of one cache access (cheap value object).

    ``victim_addr``/``victim_priv`` describe the block evicted by this
    access (set whenever a valid victim was displaced, dirty or clean):
    when ``writeback`` is True the level above needs the address to
    forward the write-back downstream, and prefetch bookkeeping needs it
    either way to retire tracking for blocks that leave the cache.
    """

    __slots__ = ("hit", "writeback", "expired", "hit_rank", "victim_addr", "victim_priv")

    def __init__(
        self,
        hit: bool,
        writeback: bool,
        expired: bool,
        hit_rank: int | None,
        victim_addr: int | None = None,
        victim_priv: int | None = None,
    ) -> None:
        self.hit = hit
        self.writeback = writeback
        self.expired = expired
        self.hit_rank = hit_rank
        self.victim_addr = victim_addr
        self.victim_priv = victim_priv

    def __repr__(self) -> str:
        return (
            f"AccessResult(hit={self.hit}, writeback={self.writeback}, "
            f"expired={self.expired}, hit_rank={self.hit_rank})"
        )


class SetAssociativeCache:
    """A write-back write-allocate set-associative cache.

    Args:
        geometry: Size/associativity/block size.
        policy: Replacement policy instance or name.
        retention_ticks: Data-retention window in ticks, or ``None`` for
            non-volatile-enough storage (SRAM / long-retention STT-RAM).
        refresh_mode: ``"none"`` (requires ``retention_ticks is None``),
            ``"invalidate"`` or ``"rewrite"``.
        name: Label used in diagnostics.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        policy: ReplacementPolicy | str = "lru",
        retention_ticks: int | None = None,
        refresh_mode: str = "none",
        retains_when_gated: bool = True,
        drowsy_window: int | None = None,
        retention_distribution: str = "fixed",
        retention_seed: int = 0xDECA,
        name: str = "cache",
    ) -> None:
        geometry.validate()
        if refresh_mode not in REFRESH_MODES:
            raise ValueError(f"refresh_mode must be one of {REFRESH_MODES}, got {refresh_mode!r}")
        if retention_ticks is None and refresh_mode != "none":
            raise ValueError("refresh_mode requires a finite retention_ticks")
        if retention_ticks is not None:
            if retention_ticks <= 0:
                raise ValueError(f"retention_ticks must be positive, got {retention_ticks}")
            if refresh_mode == "none":
                raise ValueError("finite retention needs refresh_mode 'invalidate' or 'rewrite'")
        if drowsy_window is not None and drowsy_window <= 0:
            raise ValueError(f"drowsy_window must be positive, got {drowsy_window}")
        if retention_distribution not in ("fixed", "exponential"):
            raise ValueError(
                f"retention_distribution must be 'fixed' or 'exponential', "
                f"got {retention_distribution!r}"
            )
        self.geometry = geometry
        self.name = name
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self.retention_ticks = retention_ticks
        self.refresh_mode = refresh_mode
        self.retention_distribution = retention_distribution
        self._retention_rng = None
        if retention_distribution == "exponential" and retention_ticks is not None:
            import numpy as _np

            self._retention_rng = _np.random.default_rng(retention_seed)
        self._refresh_period = (
            max(1, int(retention_ticks * _REFRESH_FRACTION))
            if (retention_ticks is not None and refresh_mode == "rewrite")
            else None
        )
        self.stats = CacheStats()
        self._block_bits = geometry.block_size.bit_length() - 1
        self._num_sets = geometry.num_sets
        self._set_mask = self._num_sets - 1
        self._set_bits = self._num_sets.bit_length() - 1
        self.drowsy_window = drowsy_window
        self.awake_block_ticks = 0
        self.drowsy_wakeups = 0
        self.ways = geometry.associativity
        self.powered_ways = self.ways
        self.retains_when_gated = retains_when_gated
        self.gated_misses = 0
        self._frames: list[list[Entry | None]] = [
            [None] * self.ways for _ in range(self._num_sets)
        ]
        self._tagmaps: list[dict[int, int]] = [dict() for _ in range(self._num_sets)]
        self._pstates: list[object] = [self.policy.init_set(self.ways) for _ in range(self._num_sets)]
        self._track_ranks = isinstance(self.policy, LRUPolicy)
        # Reused hit outcome: every hit returns this one object (with the
        # rank refreshed) instead of allocating a new AccessResult.  All
        # constant fields stay constant; callers consume the result
        # before the next access, so sharing is observationally safe.
        self._hit_result = AccessResult(True, False, False, None)
        # Epoch counters consumed by the dynamic partition controller.
        self.epoch_accesses = 0
        self.epoch_misses = 0
        self.epoch_rank_hits: list[int] = [0] * self.ways

    # ------------------------------------------------------------------
    # geometry helpers

    @property
    def size_bytes(self) -> int:
        """Provisioned capacity (tracks way resizes)."""
        return self._num_sets * self.ways * self.geometry.block_size

    @property
    def powered_bytes(self) -> int:
        """Currently powered capacity (leakage burns only here)."""
        return self._num_sets * self.powered_ways * self.geometry.block_size

    def _index(self, addr: int) -> tuple[int, int]:
        """Split an address into (set index, tag)."""
        blk = addr >> self._block_bits
        return blk & self._set_mask, blk >> self._set_bits

    def _frame_addr(self, set_i: int, tag: int) -> int:
        """Reconstruct the block-aligned address of (set, tag)."""
        return ((tag << self._set_bits) | set_i) << self._block_bits

    # ------------------------------------------------------------------
    # retention bookkeeping

    def _is_expired(self, entry: Entry, tick: int) -> bool:
        if self.refresh_mode != "invalidate":
            return False
        window = entry.life if entry.life is not None else self.retention_ticks
        return tick - entry.last_refresh > window

    def _draw_life(self, entry: Entry) -> None:
        """Under exponential retention, (re)draw the cell lifetime.

        Thermal retention failures are exponentially distributed; the
        fixed-window model is the mean of this draw.  Called on every
        fill and every cell rewrite (store hit / refresh).
        """
        if self._retention_rng is not None:
            entry.life = max(1, int(self._retention_rng.exponential(self.retention_ticks)))

    def _account_refresh(self, entry: Entry, tick: int) -> None:
        """Charge the refresh rewrites that kept ``entry`` alive until now."""
        if self._refresh_period is None:
            return
        elapsed = tick - entry.last_refresh
        if elapsed >= self._refresh_period:
            n = elapsed // self._refresh_period
            self.stats.refresh_writes += int(n)
            entry.last_refresh += int(n) * self._refresh_period

    def _account_awake(self, entry: Entry, tick: int) -> None:
        """Drowsy accounting: a line stays at full voltage for
        ``drowsy_window`` ticks after its last touch, then drops into
        the state-preserving drowsy mode until touched again."""
        if self.drowsy_window is None:
            return
        elapsed = tick - entry.last_touch
        awake = elapsed if elapsed < self.drowsy_window else self.drowsy_window
        self.awake_block_ticks += awake
        if elapsed > self.drowsy_window:
            self.drowsy_wakeups += 1
        entry.last_touch = tick

    def _retire_expired(self, entry: Entry) -> None:
        """Account the natural death of an expired block."""
        if entry.dirty:
            # The retention controller must drain dirty data before the
            # cell decays; we charge that early write-back here.
            self.stats.expiry_writebacks += 1

    # ------------------------------------------------------------------
    # the access path

    def access(
        self,
        addr: int,
        is_write: bool,
        priv: int,
        tick: int,
        demand: bool = True,
    ) -> AccessResult:
        """Look up ``addr``; fill on miss.  Returns the access outcome.

        ``demand=False`` marks write-backs arriving from the level above:
        they allocate on miss without a backing-store fetch and are
        excluded from demand-miss statistics (they sit off the critical
        path).
        """
        st = self.stats
        st.accesses += 1
        st.accesses_by_priv[priv] += 1
        if demand:
            st.demand_accesses += 1
        if is_write:
            st.write_accesses += 1
        self.epoch_accesses += 1

        set_i, tag = self._index(addr)
        tagmap = self._tagmaps[set_i]
        frames = self._frames[set_i]
        pstate = self._pstates[set_i]
        way = tagmap.get(tag)

        expired = False
        if way is not None and way >= self.powered_ways:
            # The block sits in a power-gated way: unreachable, so this
            # access misses.  Drop the stale mapping; the frame itself is
            # cleared so the refill cannot create a duplicate tag.
            self.gated_misses += 1
            frames[way] = None
            del tagmap[tag]
            way = None
        if way is not None:
            entry = frames[way]
            if self._is_expired(entry, tick):
                # The block was here but its cells have decayed: a miss
                # caused purely by finite retention.
                expired = True
                st.expiry_invalidations += 1
                self._retire_expired(entry)
                frames[way] = None
                del tagmap[tag]
                way = None
            else:
                # Hot hit path: guard the lazy-accounting calls inline (the
                # feature checks are cheaper than the calls they elide) and
                # return the preallocated hit result.
                if self._refresh_period is not None:
                    self._account_refresh(entry, tick)
                if self.drowsy_window is not None:
                    self._account_awake(entry, tick)
                st.hits += 1
                if self._track_ranks:
                    rank = self.policy.hit_rank(pstate, way, self.powered_ways)
                    if rank < len(self.epoch_rank_hits):
                        self.epoch_rank_hits[rank] += 1
                else:
                    rank = None
                if is_write:
                    entry.dirty = True
                    entry.last_refresh = tick  # a store rewrites the cells
                    if self._retention_rng is not None:
                        self._draw_life(entry)
                self.policy.on_hit(pstate, way)
                hit_result = self._hit_result
                hit_result.hit_rank = rank
                return hit_result

        # Miss path ----------------------------------------------------
        st.misses += 1
        st.misses_by_priv[priv] += 1
        if demand:
            st.demand_misses += 1
        self.epoch_misses += 1

        victim_way = self._find_frame(set_i, tick)
        victim = frames[victim_way]
        writeback = False
        victim_addr = None
        victim_priv = None
        if victim is not None:
            st.evictions += 1
            st.evictions_cross[victim.priv][priv] += 1
            victim_addr = self._frame_addr(set_i, victim.tag)
            victim_priv = victim.priv
            if self._is_expired(victim, tick):
                self._retire_expired(victim)
            else:
                self._account_refresh(victim, tick)
                if victim.dirty:
                    st.writebacks += 1
                    writeback = True
            self._account_awake(victim, tick)
            del tagmap[victim.tag]
        new_entry = Entry(tag, priv, is_write, tick)
        self._draw_life(new_entry)
        frames[victim_way] = new_entry
        tagmap[tag] = victim_way
        st.fills += 1
        self.policy.on_fill(pstate, victim_way)
        return AccessResult(False, writeback, expired, None, victim_addr, victim_priv)

    def _find_frame(self, set_i: int, tick: int) -> int:
        """Pick the frame to fill: free first, expired next, else victim.

        Only powered ways are candidates; gated frames keep their
        (retained) contents untouched."""
        frames = self._frames[set_i]
        expired_way = None
        for w in range(self.powered_ways):
            entry = frames[w]
            if entry is None:
                return w
            if expired_way is None and self._is_expired(entry, tick):
                expired_way = w
        if expired_way is not None:
            # Reclaim a decayed frame: its data is already gone, so this
            # is not an interference eviction.
            entry = frames[expired_way]
            self._retire_expired(entry)
            del self._tagmaps[set_i][entry.tag]
            frames[expired_way] = None
            return expired_way
        return self.policy.victim(self._pstates[set_i], self.powered_ways)

    # ------------------------------------------------------------------
    # maintenance operations

    def resize_ways(self, new_ways: int, tick: int) -> int:
        """Change the way count in place; returns blocks displaced.

        Shrinking first compacts blocks from dropped ways into free
        low-way frames, then evicts (writing back dirty data) whatever
        does not fit.  Growing adds empty frames.  Replacement state is
        resized via the policy's ``resize`` hook.
        """
        if new_ways <= 0:
            raise ValueError(f"new_ways must be positive, got {new_ways}")
        if new_ways == self.ways:
            return 0
        displaced = 0
        if new_ways < self.ways:
            for set_i in range(self._num_sets):
                frames = self._frames[set_i]
                tagmap = self._tagmaps[set_i]
                overflow = [e for e in frames[new_ways:] if e is not None]
                frames[:] = frames[:new_ways]
                free = [w for w in range(new_ways) if frames[w] is None]
                for entry in overflow:
                    if free:
                        w = free.pop()
                        frames[w] = entry
                        tagmap[entry.tag] = w
                    else:
                        displaced += 1
                        self.stats.evictions += 1
                        self.stats.evictions_cross[entry.priv][entry.priv] += 1
                        if self._is_expired(entry, tick):
                            self._retire_expired(entry)
                        else:
                            self._account_refresh(entry, tick)
                            if entry.dirty:
                                self.stats.writebacks += 1
                        del tagmap[entry.tag]
                self._pstates[set_i] = self.policy.resize(self._pstates[set_i], self.ways, new_ways)
                # Re-register compacted blocks with the policy so their
                # recency state exists at the new position.
                for w, entry in enumerate(frames):
                    if entry is not None:
                        self.policy.on_fill(self._pstates[set_i], w)
        else:
            for set_i in range(self._num_sets):
                self._frames[set_i].extend([None] * (new_ways - self.ways))
                self._pstates[set_i] = self.policy.resize(self._pstates[set_i], self.ways, new_ways)
        self.ways = new_ways
        self.powered_ways = new_ways  # a physical resize repowers the array
        if len(self.epoch_rank_hits) < new_ways:
            self.epoch_rank_hits.extend([0] * (new_ways - len(self.epoch_rank_hits)))
        return displaced

    def set_powered_ways(self, new_powered: int, tick: int) -> int:
        """Power-gate or re-enable ways in place; returns dirty flushes.

        Gating a way stops its leakage.  What happens to its contents
        depends on the technology:

        * ``retains_when_gated=True`` (STT-RAM): cells are non-volatile,
          so data stays put — but the way is unsearchable while gated, and
          the retention clock keeps running, so long-gated blocks decay
          normally.  Dirty blocks are flushed (written back) at gating
          time because a decayed dirty block would lose data.
        * ``retains_when_gated=False`` (SRAM): contents are lost; every
          block in the gated ways is flushed-if-dirty and invalidated.

        Re-enabling ways never costs anything: retained entries become
        visible again and the expiry check culls the stale ones.
        """
        if not 1 <= new_powered <= self.ways:
            raise ValueError(
                f"new_powered must be in [1, {self.ways}], got {new_powered}"
            )
        flushes = 0
        if new_powered < self.powered_ways:
            for set_i in range(self._num_sets):
                frames = self._frames[set_i]
                for w in range(new_powered, self.powered_ways):
                    entry = frames[w]
                    if entry is None:
                        continue
                    if entry.dirty and not self._is_expired(entry, tick):
                        self._account_refresh(entry, tick)
                        self.stats.writebacks += 1
                        self.stats.gate_flushes += 1
                        entry.dirty = False
                        flushes += 1
                    elif entry.dirty:
                        self._retire_expired(entry)
                        entry.dirty = False
                    if not self.retains_when_gated:
                        del self._tagmaps[set_i][entry.tag]
                        frames[w] = None
        self.powered_ways = new_powered
        return flushes

    def finalize(self, tick: int) -> None:
        """Settle lazy accounting at end of simulation.

        Charges outstanding refresh rewrites (``rewrite`` mode) and the
        expiry write-backs of dirty blocks that decayed unobserved
        (``invalidate`` mode).
        """
        for set_i in range(self._num_sets):
            for entry in self._frames[set_i]:
                if entry is None:
                    continue
                if self._is_expired(entry, tick):
                    self._retire_expired(entry)
                    entry.dirty = False  # drained; avoid double counting
                else:
                    self._account_refresh(entry, tick)
                self._account_awake(entry, tick)

    def invalidate(self, addr: int, tick: int) -> Entry | None:
        """Remove the block holding ``addr``; returns its entry or None.

        No statistics are charged — the caller owns the consequence
        (e.g. a hybrid cache migrating the block charges the read and
        the destination write itself).  Outstanding lazy accounting
        (refresh, drowsy awake time) is settled first.
        """
        set_i, tag = self._index(addr)
        way = self._tagmaps[set_i].get(tag)
        if way is None:
            return None
        entry = self._frames[set_i][way]
        self._account_refresh(entry, tick)
        self._account_awake(entry, tick)
        del self._tagmaps[set_i][tag]
        self._frames[set_i][way] = None
        return entry

    def begin_epoch(self) -> None:
        """Reset the epoch counters read by the dynamic controller."""
        self.epoch_accesses = 0
        self.epoch_misses = 0
        self.epoch_rank_hits = [0] * self.ways

    # ------------------------------------------------------------------
    # introspection

    def occupancy(self) -> float:
        """Fraction of frames currently holding a block."""
        filled = sum(len(t) for t in self._tagmaps)
        return filled / (self._num_sets * self.ways)

    def contains(self, addr: int) -> bool:
        """True when the block holding ``addr`` is present (may be expired)."""
        set_i, tag = self._index(addr)
        return tag in self._tagmaps[set_i]

    def __repr__(self) -> str:
        return (
            f"SetAssociativeCache({self.name!r}, {self.size_bytes // 1024} KB, "
            f"{self.ways}-way, policy={self.policy.name}, "
            f"retention={self.retention_ticks}, refresh={self.refresh_mode})"
        )

"""Block-frame metadata for the cache model."""

from __future__ import annotations

__all__ = ["Entry"]


class Entry:
    """Metadata of one filled block frame.

    Attributes:
        tag: Block tag (address >> (offset bits + index bits)).
        priv: Privilege of the block's owner (who fetched it).
        dirty: True once the block holds unwritten-back data.
        last_refresh: Tick at which the cell contents were last (re)written
            — a fill, a store hit, or a retention refresh.  STT-RAM data
            survives ``retention_ticks`` past this point.
        last_touch: Tick of the last access of any kind; drives the
            drowsy-mode awake-time accounting.
        life: For exponential-retention caches, the lifetime drawn for
            the current cell contents (ticks past ``last_refresh``);
            ``None`` under the fixed-window model.
    """

    __slots__ = ("tag", "priv", "dirty", "last_refresh", "last_touch", "life")

    def __init__(self, tag: int, priv: int, dirty: bool, tick: int) -> None:
        self.tag = tag
        self.priv = priv
        self.dirty = dirty
        self.last_refresh = tick
        self.last_touch = tick
        self.life = None  # per-write lifetime draw (stochastic retention)

    def __repr__(self) -> str:
        return (
            f"Entry(tag={self.tag:#x}, priv={self.priv}, dirty={self.dirty}, "
            f"last_refresh={self.last_refresh})"
        )

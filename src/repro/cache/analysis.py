"""Diagnostic analyses of cache pressure and set balance.

Utilities for answering "is this miss rate capacity or conflict?" —
useful when sizing partitions (a high coefficient of variation across
sets means more ways fix less than more sets would).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.set_assoc import SetAssociativeCache
from repro.config import CacheGeometry

__all__ = ["SetPressure", "set_pressure", "occupancy_by_way"]


@dataclass(frozen=True)
class SetPressure:
    """Distribution of accesses and distinct blocks across sets."""

    accesses_per_set: np.ndarray
    blocks_per_set: np.ndarray

    @property
    def access_cov(self) -> float:
        """Coefficient of variation of per-set access counts."""
        mean = self.accesses_per_set.mean()
        return float(self.accesses_per_set.std() / mean) if mean else 0.0

    @property
    def block_cov(self) -> float:
        """Coefficient of variation of per-set distinct-block counts."""
        mean = self.blocks_per_set.mean()
        return float(self.blocks_per_set.std() / mean) if mean else 0.0

    @property
    def max_blocks_in_a_set(self) -> int:
        """Worst-case distinct blocks competing for one set."""
        return int(self.blocks_per_set.max()) if len(self.blocks_per_set) else 0

    def conflict_prone(self, associativity: int) -> float:
        """Fraction of sets whose distinct-block demand exceeds the ways."""
        if not len(self.blocks_per_set):
            return 0.0
        return float(np.mean(self.blocks_per_set > associativity))


def set_pressure(addrs: np.ndarray, geometry: CacheGeometry) -> SetPressure:
    """Measure per-set pressure of an address stream under ``geometry``."""
    geometry.validate()
    block_bits = geometry.block_size.bit_length() - 1
    sets = geometry.num_sets
    blocks = (np.asarray(addrs, dtype=np.uint64) >> np.uint64(block_bits))
    set_idx = (blocks % np.uint64(sets)).astype(np.int64)
    accesses = np.bincount(set_idx, minlength=sets)
    unique_blocks = np.unique(blocks)
    unique_sets = (unique_blocks % np.uint64(sets)).astype(np.int64)
    distinct = np.bincount(unique_sets, minlength=sets)
    return SetPressure(accesses_per_set=accesses, blocks_per_set=distinct)


def occupancy_by_way(cache: SetAssociativeCache) -> np.ndarray:
    """Fraction of sets whose way *w* currently holds a block, per way.

    For an LRU cache this is a cheap proxy for how much of the
    associativity is actually earning its keep.
    """
    counts = np.zeros(cache.ways, dtype=np.int64)
    total_sets = cache.geometry.num_sets
    for set_i in range(total_sets):
        for w, entry in enumerate(cache._frames[set_i]):
            if entry is not None:
                counts[w] += 1
    return counts / total_sets

"""Way-mask partitioned cache: single array, per-privilege way masks.

:class:`~repro.cache.partitioned.PartitionedCache` models the paper's
partition as two independent segment arrays.  Real hardware would more
likely implement it inside one array with *way masks*: an access at
privilege *p* may hit in any way but may only **allocate** into the ways
of its mask (Cache-Allocation-Technology style), or — in the strict
variant modelled here — both lookup and allocation are confined to the
mask, which is exactly equivalent to two segment arrays sharing a set
index.

This module exists for two reasons:

* it is the implementation a hardware team would start from, so the
  library should offer it, and
* the equivalence between the two models (`tests/test_waypart.py`
  proves hit-for-hit equality against two ``SetAssociativeCache``
  segments) validates both implementations.
"""

from __future__ import annotations

from repro.cache.block import Entry
from repro.cache.replacement import LRUPolicy
from repro.cache.stats import CacheStats
from repro.config import CacheGeometry
from repro.types import Privilege

__all__ = ["WayMaskPartitionedCache"]


class WayMaskPartitionedCache:
    """One physical array whose ways are statically assigned by privilege.

    Args:
        geometry: Geometry of the whole array.
        user_ways: Number of ways (the low-indexed ones) reserved for
            user-privilege accesses.  The remaining
            ``geometry.associativity - user_ways`` ways belong to the
            kernel.  Both regions must be non-empty.

    The replacement policy is true LRU per privilege region (matching
    the segment model's default).
    """

    def __init__(self, geometry: CacheGeometry, user_ways: int) -> None:
        geometry.validate()
        if not 0 < user_ways < geometry.associativity:
            raise ValueError(
                f"user_ways must leave both regions non-empty: "
                f"0 < {user_ways} < {geometry.associativity}"
            )
        self.geometry = geometry
        self.user_ways = user_ways
        self.kernel_ways = geometry.associativity - user_ways
        self.stats = CacheStats()
        self._policy = LRUPolicy()
        self._block_bits = geometry.block_size.bit_length() - 1
        self._num_sets = geometry.num_sets
        self._set_mask = self._num_sets - 1
        self._set_bits = self._num_sets.bit_length() - 1
        ways = geometry.associativity
        self._frames: list[list[Entry | None]] = [[None] * ways for _ in range(self._num_sets)]
        # one LRU state per set, shared; victim selection is restricted
        # to the accessing privilege's way range
        self._pstates = [self._policy.init_set(ways) for _ in range(self._num_sets)]

    def _index(self, addr: int) -> tuple[int, int]:
        blk = addr >> self._block_bits
        return blk & self._set_mask, blk >> self._set_bits

    def _way_range(self, priv: int) -> range:
        if priv == int(Privilege.USER):
            return range(0, self.user_ways)
        return range(self.user_ways, self.geometry.associativity)

    def access(self, addr: int, is_write: bool, priv: int, tick: int,
               demand: bool = True) -> bool:
        """Look up ``addr`` within the privilege's way mask; fill on miss.

        Returns True on hit.  Statistics mirror
        :class:`~repro.cache.set_assoc.SetAssociativeCache`'s counters.
        """
        st = self.stats
        st.accesses += 1
        st.accesses_by_priv[priv] += 1
        if demand:
            st.demand_accesses += 1
        if is_write:
            st.write_accesses += 1

        set_i, tag = self._index(addr)
        frames = self._frames[set_i]
        pstate = self._pstates[set_i]
        mask = self._way_range(priv)

        for way in mask:
            entry = frames[way]
            if entry is not None and entry.tag == tag:
                st.hits += 1
                entry.dirty = entry.dirty or is_write
                self._policy.on_hit(pstate, way)
                return True

        st.misses += 1
        st.misses_by_priv[priv] += 1
        if demand:
            st.demand_misses += 1

        victim_way = None
        for way in mask:
            if frames[way] is None:
                victim_way = way
                break
        if victim_way is None:
            # LRU within the mask: oldest sequence number wins
            victim_way = min(mask, key=lambda w: pstate[w])
            victim = frames[victim_way]
            st.evictions += 1
            st.evictions_cross[victim.priv][priv] += 1
            if victim.dirty:
                st.writebacks += 1
        frames[victim_way] = Entry(tag, priv, is_write, tick)
        st.fills += 1
        self._policy.on_fill(pstate, victim_way)
        return False

    @property
    def size_bytes(self) -> int:
        """Capacity of the whole array."""
        return self.geometry.size_bytes

    def occupancy(self) -> float:
        """Fraction of frames holding a block."""
        filled = sum(
            sum(e is not None for e in frames) for frames in self._frames
        )
        return filled / (self._num_sets * self.geometry.associativity)

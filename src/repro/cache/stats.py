"""Mutable per-cache statistics counters and derived metrics.

One :class:`CacheStats` instance accompanies every simulated cache (or
cache segment).  Counters are plain integers updated on the hot path;
derived rates are properties.  ``merge`` lets partitioned designs report
a whole-L2 view from per-segment counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.types import Privilege

__all__ = ["CacheStats"]

#: Integer counter fields, in declaration order (list-valued fields —
#: the privilege splits and the eviction matrix — are handled apart).
_SCALAR_COUNTERS = (
    "accesses", "hits", "misses", "fills", "evictions", "writebacks",
    "expiry_invalidations", "expiry_writebacks", "refresh_writes",
    "gate_flushes", "demand_accesses", "demand_misses", "write_accesses",
)


@dataclass
class CacheStats:
    """Counters for one cache.

    ``evictions_cross[victim][aggressor]`` counts evictions where a block
    owned by privilege ``victim`` was replaced to make room for an access
    at privilege ``aggressor`` — the paper's user/kernel interference
    metric is the off-diagonal mass of this 2x2 matrix.
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    fills: int = 0
    evictions: int = 0
    writebacks: int = 0
    expiry_invalidations: int = 0
    expiry_writebacks: int = 0
    refresh_writes: int = 0
    gate_flushes: int = 0
    demand_accesses: int = 0
    demand_misses: int = 0
    write_accesses: int = 0
    accesses_by_priv: list[int] = field(default_factory=lambda: [0, 0])
    misses_by_priv: list[int] = field(default_factory=lambda: [0, 0])
    evictions_cross: list[list[int]] = field(default_factory=lambda: [[0, 0], [0, 0]])

    @property
    def miss_rate(self) -> float:
        """Misses per access over all accesses (0.0 when idle)."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def demand_miss_rate(self) -> float:
        """Misses per *demand* access (writebacks from L1 excluded)."""
        return self.demand_misses / self.demand_accesses if self.demand_accesses else 0.0

    @property
    def hit_rate(self) -> float:
        """Hits per access."""
        return self.hits / self.accesses if self.accesses else 0.0

    def miss_rate_of(self, privilege: Privilege) -> float:
        """Miss rate restricted to one privilege level."""
        acc = self.accesses_by_priv[privilege]
        return self.misses_by_priv[privilege] / acc if acc else 0.0

    def access_share_of(self, privilege: Privilege) -> float:
        """Fraction of accesses issued at ``privilege``."""
        return self.accesses_by_priv[privilege] / self.accesses if self.accesses else 0.0

    @property
    def cross_privilege_evictions(self) -> int:
        """Evictions where aggressor and victim privilege differ."""
        return self.evictions_cross[0][1] + self.evictions_cross[1][0]

    @property
    def total_writes(self) -> int:
        """All array writes: fills, write hits and refresh rewrites.

        This is the quantity the STT-RAM dynamic-energy model charges at
        write-pulse cost.
        """
        return self.fills + self.write_accesses + self.refresh_writes

    def check_invariants(self) -> None:
        """Raise :class:`AssertionError` if counters are inconsistent."""
        assert self.hits + self.misses == self.accesses, "hits + misses != accesses"
        assert self.fills <= self.misses, "more fills than misses"
        assert self.evictions <= self.fills, "more evictions than fills"
        assert self.writebacks <= self.evictions + self.expiry_writebacks + self.gate_flushes, (
            "writebacks exceed evictions + expiry writebacks + gating flushes"
        )
        assert sum(self.accesses_by_priv) == self.accesses, "privilege access split broken"
        assert sum(self.misses_by_priv) == self.misses, "privilege miss split broken"
        assert self.demand_misses <= self.demand_accesses, "demand miss overflow"

    def to_dict(self) -> dict:
        """Plain-data form for the result store (field name -> value)."""
        out = {name: getattr(self, name) for name in _SCALAR_COUNTERS}
        out["accesses_by_priv"] = list(self.accesses_by_priv)
        out["misses_by_priv"] = list(self.misses_by_priv)
        out["evictions_cross"] = [list(row) for row in self.evictions_cross]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "CacheStats":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        return cls(**{name: data[name] for name in _SCALAR_COUNTERS},
                   accesses_by_priv=list(data["accesses_by_priv"]),
                   misses_by_priv=list(data["misses_by_priv"]),
                   evictions_cross=[list(row) for row in data["evictions_cross"]])

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return the element-wise sum of two stats objects."""
        out = CacheStats()
        for name in _SCALAR_COUNTERS:
            setattr(out, name, getattr(self, name) + getattr(other, name))
        out.accesses_by_priv = [a + b for a, b in zip(self.accesses_by_priv, other.accesses_by_priv)]
        out.misses_by_priv = [a + b for a, b in zip(self.misses_by_priv, other.misses_by_priv)]
        out.evictions_cross = [
            [a + b for a, b in zip(ra, rb)]
            for ra, rb in zip(self.evictions_cross, other.evictions_cross)
        ]
        return out

"""Vectorized fast-path simulation kernel for LRU set-associative caches.

The reference engine (:class:`repro.cache.set_assoc.SetAssociativeCache`)
pays per-access Python overhead — an ``Entry`` object per block, a
replacement-policy virtual call per access, an ``AccessResult`` per call —
which bounds every experiment at single-digit M-accesses/s.  This module
replays an *entire trace at once* instead:

1. NumPy decomposes all addresses into (set, tag) columns and groups the
   trace by set (one stable argsort); every scalar counter that does not
   depend on hit/miss outcomes (access totals, privilege and write splits)
   is reduced vectorially.
2. Each set is then replayed by a tight loop over packed parallel arrays
   (tag / privilege / dirty / last-refresh, plus an integer LRU recency
   sequence) — no objects, no dispatch, no per-access allocation.

The kernel is **bit-identical** to the reference engine inside its
supported envelope (checked by :func:`supports_cache`):

* true-LRU replacement,
* fixed geometry: no way resizing, no power gating, no drowsy mode,
* retention ``none``, or ``invalidate`` with the fixed-window model.

On top of the whole-trace kernel, :class:`EpochReplaySegment` extends
the envelope to the dynamic partition design's **epoch-chunked replay**:
the geometry stays fixed *within* a chunk (one controller epoch), while
powered-way gating and wake-on-first-access are applied between chunks —
exactly where the reference engine applies them — so the epoch
controller's decisions, timelines and resize counters come out
bit-identical too.

Everything outside the envelope — ``rewrite`` refresh, exponential
retention lifetimes, non-LRU policies, drowsy voltage tracking, and any
replay that needs per-access interleaving (bank-level DRAM, prefetching)
— falls back to the reference engine.  ``tests/test_fastsim.py`` holds
the randomized differential harness (:mod:`repro.cache.diffsim`) that
proves the exact :class:`~repro.cache.stats.CacheStats` equality this
module promises, for fixed and epoch-chunked replay alike.

Set ``REPRO_FASTSIM=0`` to disable the fast path globally (every replay
then uses the reference engine, useful when bisecting a discrepancy).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.cache.replacement import LRUPolicy
from repro.cache.stats import CacheStats
from repro.config import CacheGeometry, PlatformConfig
from repro.types import AccessKind, Privilege

__all__ = [
    "enabled",
    "supports_cache",
    "simulate_trace",
    "EpochReplaySegment",
    "MissEvents",
    "fast_l1_filter",
    "try_run_fixed",
]

#: Refresh modes the kernel reproduces exactly.
SUPPORTED_REFRESH_MODES = ("none", "invalidate")


def enabled() -> bool:
    """True unless the ``REPRO_FASTSIM`` environment variable disables us."""
    return os.environ.get("REPRO_FASTSIM", "1").strip().lower() not in ("0", "false", "off")


def supports_cache(cache) -> bool:
    """True when ``cache`` (a fresh ``SetAssociativeCache``) is inside the
    kernel's exact-equivalence envelope.

    The cache must be untouched (no accesses, no resident blocks): the
    kernel replays from a cold array, so a warm reference cache cannot be
    taken over mid-run.
    """
    return (
        type(cache.policy) is LRUPolicy
        and cache.refresh_mode in SUPPORTED_REFRESH_MODES
        and cache.retention_distribution == "fixed"
        and cache.drowsy_window is None
        and cache.powered_ways == cache.ways
        and cache.ways == cache.geometry.associativity
        and cache.stats.accesses == 0
        and all(not tagmap for tagmap in cache._tagmaps)
    )


@dataclass
class MissEvents:
    """Per-miss side channel of one :func:`simulate_trace` run.

    ``miss_idx`` lists the caller-supplied index of every missing access
    (in replay order); ``wb_idx``/``wb_addr``/``wb_priv`` describe the
    dirty LRU victim written back by the miss at the same index.  The L1
    filter turns these into the demand/write-back rows of an
    :class:`~repro.cache.hierarchy.L2Stream`.
    """

    miss_idx: list
    wb_idx: list
    wb_addr: np.ndarray
    wb_priv: list


def simulate_trace(
    geometry: CacheGeometry,
    ticks,
    addrs,
    privs,
    writes,
    demand=None,
    *,
    retention_ticks: int | None = None,
    refresh_mode: str = "none",
    finalize_tick: int | None = None,
    record_events: bool = False,
    orig_indices: np.ndarray | None = None,
) -> tuple[CacheStats, MissEvents | None]:
    """Replay one access stream through an array-backed LRU cache.

    Args:
        geometry: Cache geometry (fixed for the whole run).
        ticks, addrs, privs, writes: Parallel access columns (any
            array-likes; addresses may carry sub-block offsets).
        demand: Optional demand-fetch mask; ``None`` means every access
            is a demand access (the L1 case).
        retention_ticks: Fixed retention window, or ``None``.
        refresh_mode: ``"none"`` or ``"invalidate"`` (the envelope).
        finalize_tick: When given, settle end-of-simulation accounting at
            this tick exactly like ``SetAssociativeCache.finalize`` (the
            expiry write-backs of dirty blocks that decayed unobserved).
        record_events: Collect a :class:`MissEvents` side channel.
        orig_indices: Caller-space index of each access, recorded in the
            events (defaults to 0..n-1).

    Returns:
        ``(stats, events)`` — ``stats`` is bit-identical to the reference
        engine's counters; ``events`` is ``None`` unless requested.
    """
    if refresh_mode not in SUPPORTED_REFRESH_MODES:
        raise ValueError(
            f"fastsim supports refresh modes {SUPPORTED_REFRESH_MODES}, got {refresh_mode!r}"
        )
    if refresh_mode == "invalidate" and retention_ticks is None:
        raise ValueError("refresh_mode 'invalidate' needs a finite retention_ticks")

    addrs = np.asarray(addrs, dtype=np.uint64)
    n = len(addrs)
    stats = CacheStats()
    events = MissEvents([], [], np.zeros(0, dtype=np.uint64), []) if record_events else None
    if n == 0:
        return stats, events

    block_bits = geometry.block_size.bit_length() - 1
    num_sets = geometry.num_sets
    set_bits = num_sets.bit_length() - 1
    ways = geometry.associativity

    privs = np.asarray(privs)
    writes = np.asarray(writes)
    if int(privs.max()) > 1:
        # Fail as loudly as the reference engine's accesses_by_priv[priv].
        raise ValueError(
            f"privilege values must be 0 (user) or 1 (kernel), got {int(privs.max())}"
        )
    kernel_accesses = int(np.count_nonzero(privs))
    write_accesses = int(np.count_nonzero(writes))
    demand_accesses = n if demand is None else int(np.count_nonzero(np.asarray(demand)))

    blocks = addrs >> np.uint64(block_bits)
    set_idx = (blocks & np.uint64(num_sets - 1)).astype(np.int64)
    tags = blocks >> np.uint64(set_bits)

    order = np.argsort(set_idx, kind="stable")
    starts = np.zeros(num_sets + 1, dtype=np.int64)
    np.cumsum(np.bincount(set_idx, minlength=num_sets), out=starts[1:])
    active_sets = np.nonzero(starts[1:] > starts[:-1])[0].tolist()
    starts = starts.tolist()

    # Bulk-convert the sorted columns to plain Python values once; the
    # per-set loops below then run on C-backed lists, not numpy scalars.
    # Columns a given replay variant never reads are not converted.
    s_tags = tags[order].tolist()
    s_privs = privs[order].tolist()
    s_writes = writes[order].tolist()
    if demand is None:
        s_demand = None
    else:
        s_demand = np.asarray(demand)[order].tolist()
    if record_events:
        if orig_indices is None:
            s_orig = order.tolist()
        else:
            s_orig = np.asarray(orig_indices)[order].tolist()
    else:
        s_orig = None

    if refresh_mode == "none":
        if events is None and s_demand is None:
            counters = _replay_sets_simple(
                ways, active_sets, starts, s_tags, s_privs, s_writes,
            )
            wb_set: list = []
            wb_tag: list = []
        else:
            counters, wb_set, wb_tag = _replay_sets(
                ways, active_sets, starts, s_tags, s_privs, s_writes,
                s_demand, s_orig, events,
            )
    else:
        s_ticks = np.asarray(ticks)[order].tolist()
        counters, wb_set, wb_tag = _replay_sets_retention(
            ways, active_sets, starts, s_ticks, s_tags, s_privs, s_writes,
            s_demand, s_orig, events, retention_ticks, finalize_tick,
        )
    (misses, kernel_misses, demand_misses, evictions, writebacks,
     expiry_invalidations, expiry_writebacks, ec00, ec01, ec10, ec11) = counters

    if events is not None and wb_tag:
        events.wb_addr = (
            (np.asarray(wb_tag, dtype=np.uint64) << np.uint64(set_bits)
             | np.asarray(wb_set, dtype=np.uint64))
            << np.uint64(block_bits)
        )

    stats.accesses = n
    stats.hits = n - misses
    stats.misses = misses
    stats.fills = misses
    stats.evictions = evictions
    stats.writebacks = writebacks
    stats.expiry_invalidations = expiry_invalidations
    stats.expiry_writebacks = expiry_writebacks
    stats.demand_accesses = demand_accesses
    stats.demand_misses = misses if demand is None else demand_misses
    stats.write_accesses = write_accesses
    stats.accesses_by_priv = [n - kernel_accesses, kernel_accesses]
    stats.misses_by_priv = [misses - kernel_misses, kernel_misses]
    stats.evictions_cross = [[ec00, ec01], [ec10, ec11]]
    return stats, events


def _replay_sets_simple(ways, active_sets, starts, TG, PV, WR):
    """Hottest replay variant: no retention, no demand column, no event
    recording.  Kept separate from :func:`_replay_sets` so the inner loop
    unpacks three columns and carries zero per-access branches for
    features the caller did not ask for.

    LRU state is a move-to-back way list (front = least recent).  Recency
    sequences are unique and strictly increasing, so the list stays in
    exact ascending-sequence order and popping the front selects the same
    victim as the reference ``LRUPolicy.victim`` first-strict-minimum
    scan; sets fill in way order exactly like the reference free-frame
    scan."""
    misses = kernel_misses = 0
    evictions = writebacks = 0
    # evictions_cross flattened: index = (victim_priv << 1) | aggressor_priv
    ec = [0, 0, 0, 0]
    for s in active_sets:
        lo, hi = starts[s], starts[s + 1]
        tagmap: dict = {}
        mget = tagmap.get
        tagw: list = []
        privw: list = []
        dirty: list = []
        lru: list = []
        lru_remove = lru.remove
        lru_append = lru.append
        lru_pop = lru.pop
        filled = 0
        for tag, priv, isw in zip(TG[lo:hi], PV[lo:hi], WR[lo:hi]):
            w = mget(tag)
            if w is not None:
                lru_remove(w)
                lru_append(w)
                if isw:
                    dirty[w] = True
                continue
            misses += 1
            if priv:
                kernel_misses += 1
            if filled < ways:
                tagmap[tag] = filled
                tagw.append(tag)
                privw.append(priv)
                dirty.append(isw)
                lru_append(filled)
                filled += 1
            else:
                w = lru_pop(0)
                lru_append(w)
                evictions += 1
                ec[(privw[w] << 1) | priv] += 1
                if dirty[w]:
                    writebacks += 1
                del tagmap[tagw[w]]
                tagmap[tag] = w
                tagw[w] = tag
                privw[w] = priv
                dirty[w] = isw
    return (misses, kernel_misses, 0, evictions, writebacks,
            0, 0, ec[0], ec[1], ec[2], ec[3])


def _replay_sets(ways, active_sets, starts, TG, PV, WR, DM, OR, events):
    """General no-retention replay: like :func:`_replay_sets_simple`
    (same move-to-back LRU list) but tracking the demand column and/or
    recording per-miss events."""
    misses = kernel_misses = demand_misses = 0
    evictions = writebacks = 0
    ec = [0, 0, 0, 0]
    track_dm = DM is not None
    record = events is not None
    wb_set: list = []
    wb_tag: list = []
    if record:
        miss_idx = events.miss_idx
        wb_idx = events.wb_idx
        wb_priv = events.wb_priv
    for s in active_sets:
        lo, hi = starts[s], starts[s + 1]
        tagmap: dict = {}
        mget = tagmap.get
        tagw: list = []
        privw: list = []
        dirty: list = []
        lru: list = []
        lru_remove = lru.remove
        lru_append = lru.append
        lru_pop = lru.pop
        filled = 0
        for tag, priv, isw, dm, oi in zip(
            TG[lo:hi], PV[lo:hi], WR[lo:hi],
            DM[lo:hi] if track_dm else TG[lo:hi],
            OR[lo:hi] if record else TG[lo:hi],
        ):
            w = mget(tag)
            if w is not None:
                lru_remove(w)
                lru_append(w)
                if isw:
                    dirty[w] = True
                continue
            misses += 1
            if priv:
                kernel_misses += 1
            if track_dm and dm:
                demand_misses += 1
            if record:
                miss_idx.append(oi)
            if filled < ways:
                tagmap[tag] = filled
                tagw.append(tag)
                privw.append(priv)
                dirty.append(isw)
                lru_append(filled)
                filled += 1
            else:
                w = lru_pop(0)
                lru_append(w)
                evictions += 1
                vp = privw[w]
                ec[(vp << 1) | priv] += 1
                if dirty[w]:
                    writebacks += 1
                    if record:
                        wb_idx.append(oi)
                        wb_set.append(s)
                        wb_tag.append(tagw[w])
                        wb_priv.append(vp)
                del tagmap[tagw[w]]
                tagmap[tag] = w
                tagw[w] = tag
                privw[w] = priv
                dirty[w] = isw
    counters = (misses, kernel_misses, demand_misses, evictions, writebacks,
                0, 0, ec[0], ec[1], ec[2], ec[3])
    return counters, wb_set, wb_tag


def _replay_sets_retention(ways, active_sets, starts, T, TG, PV, WR, DM, OR,
                           events, window, finalize_tick):
    """Per-set replay with fixed-window invalidate-on-expiry retention.

    Mirrors the reference engine access path exactly: an expired resident
    block turns its access into an expiry invalidation + plain miss; the
    fill frame is the lowest free way, else the lowest expired way
    (reclaimed without eviction accounting), else the LRU victim.
    """
    misses = kernel_misses = demand_misses = 0
    evictions = writebacks = 0
    expiry_invalidations = expiry_writebacks = 0
    ec = [0, 0, 0, 0]
    track_dm = DM is not None
    record = events is not None
    wb_set: list = []
    wb_tag: list = []
    if record:
        miss_idx = events.miss_idx
        wb_idx = events.wb_idx
        wb_priv = events.wb_priv
    way_range = range(ways)
    for s in active_sets:
        lo, hi = starts[s], starts[s + 1]
        tagmap: dict = {}
        mget = tagmap.get
        valid = [False] * ways
        tagw = [0] * ways
        privw = [0] * ways
        dirty = [False] * ways
        lastref = [0] * ways
        seqs = [0] * ways
        seqc = 0
        for tick, tag, priv, isw, dm, oi in zip(
            T[lo:hi], TG[lo:hi], PV[lo:hi], WR[lo:hi],
            DM[lo:hi] if track_dm else TG[lo:hi],
            OR[lo:hi] if record else TG[lo:hi],
        ):
            seqc += 1
            w = mget(tag)
            if w is not None:
                if tick - lastref[w] > window:
                    # Resident but decayed: a retention-caused miss.
                    expiry_invalidations += 1
                    if dirty[w]:
                        expiry_writebacks += 1
                    valid[w] = False
                    del tagmap[tag]
                else:
                    seqs[w] = seqc
                    if isw:
                        dirty[w] = True
                        lastref[w] = tick  # a store rewrites the cells
                    continue
            misses += 1
            if priv:
                kernel_misses += 1
            if track_dm and dm:
                demand_misses += 1
            if record:
                miss_idx.append(oi)
            target = -1
            expired_way = -1
            for i in way_range:
                if not valid[i]:
                    target = i
                    break
                if expired_way < 0 and tick - lastref[i] > window:
                    expired_way = i
            if target < 0:
                if expired_way >= 0:
                    # Reclaim a decayed frame: not an interference eviction.
                    target = expired_way
                    if dirty[target]:
                        expiry_writebacks += 1
                    del tagmap[tagw[target]]
                else:
                    target = seqs.index(min(seqs))
                    evictions += 1
                    vp = privw[target]
                    ec[(vp << 1) | priv] += 1
                    if dirty[target]:
                        writebacks += 1
                        if record:
                            wb_idx.append(oi)
                            wb_set.append(s)
                            wb_tag.append(tagw[target])
                            wb_priv.append(vp)
                    del tagmap[tagw[target]]
            valid[target] = True
            tagw[target] = tag
            privw[target] = priv
            dirty[target] = isw
            lastref[target] = tick
            seqs[target] = seqc
            tagmap[tag] = target
        if finalize_tick is not None:
            # SetAssociativeCache.finalize: drain dirty blocks that decayed
            # unobserved before the end of the simulated window.
            for i in way_range:
                if valid[i] and dirty[i] and finalize_tick - lastref[i] > window:
                    expiry_writebacks += 1
    counters = (misses, kernel_misses, demand_misses, evictions, writebacks,
                expiry_invalidations, expiry_writebacks, ec[0], ec[1], ec[2], ec[3])
    return counters, wb_set, wb_tag


# ----------------------------------------------------------------------
# epoch-chunked replay (the dynamic partition design)


class EpochReplaySegment:
    """Array-backed cache replayed one controller epoch at a time.

    Duck-types the slice of :class:`~repro.cache.set_assoc.
    SetAssociativeCache` the dynamic partition design drives —
    ``powered_ways``/``powered_bytes``, ``set_powered_ways``,
    ``begin_epoch``, the epoch counters and ``stats`` — while replaying
    accesses in stream order over flat frame-state arrays.  The
    caller (``DynamicPartitionDesign``) splits the stream into *chunks*
    (maximal runs between controller-epoch boundaries), loads a
    segment's rows once with :meth:`load`, and then alternates
    ``replay_chunk`` with its controller steps.  Because the controller
    only reconfigures the segment at epoch boundaries — and the one
    mid-chunk reconfiguration, wake-on-first-access, is a free power-up
    the caller applies via ``set_powered_ways`` before the chunk replays
    — the geometry is constant inside every chunk and the replay is
    bit-identical to the reference engine's per-access loop.

    The envelope matches :func:`supports_cache` plus gating: true LRU,
    retention ``none`` or fixed-window ``invalidate``, and power-gated
    ways with either gating semantics (``retains_when_gated`` True keeps
    contents through a gate like non-volatile STT-RAM; False invalidates
    like SRAM).
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        *,
        retention_ticks: int | None = None,
        refresh_mode: str = "none",
        retains_when_gated: bool = True,
        min_rank_accesses: int = 0,
        name: str = "fastseg",
    ) -> None:
        if refresh_mode not in SUPPORTED_REFRESH_MODES:
            raise ValueError(
                f"fastsim supports refresh modes {SUPPORTED_REFRESH_MODES}, got {refresh_mode!r}"
            )
        if refresh_mode == "invalidate" and retention_ticks is None:
            raise ValueError("refresh_mode 'invalidate' needs a finite retention_ticks")
        geometry.validate()
        self.geometry = geometry
        self.name = name
        self.ways = geometry.associativity
        self.powered_ways = self.ways
        self.retention_ticks = retention_ticks
        self.refresh_mode = refresh_mode
        self.retains_when_gated = retains_when_gated
        # Rank-utility hits are only read by controller decisions, which
        # require at least ``decision_accesses`` samples; chunks below
        # ``min_rank_accesses`` rows skip the O(ways)-per-hit tracking.
        self.min_rank_accesses = min_rank_accesses
        self._window = retention_ticks if refresh_mode == "invalidate" else None
        self.stats = CacheStats()
        self.gated_misses = 0
        self.epoch_accesses = 0
        self.epoch_misses = 0
        self.epoch_rank_hits: list[int] = [0] * self.ways
        # Flat frame state indexed by ``set * ways + way``.  L2 chunks
        # rarely revisit a set (L1s absorb the locality), so per-set
        # state objects would be re-fetched on almost every access;
        # flat arrays plus one block-keyed tag dict keep the per-access
        # work to a few C-level index operations.  An invalid frame is
        # always clean (``dirty`` implies ``valid``): the gating and
        # finalize scans rely on it.
        n_frames = geometry.num_sets * self.ways
        self._n_frames = n_frames
        self._valid = bytearray(n_frames)
        self._dirty = bytearray(n_frames)
        self._privw = bytearray(n_frames)
        self._lastref = [0] * n_frames
        self._seqs = [0] * n_frames
        self._blockw = [0] * n_frames
        self._tagmap: dict[int, int] = {}
        # Exclusive per-set high-water bounds (indexed by the set's frame
        # base): no dirty/valid frame sits at or above them, so the
        # gating scan skips clean sets in O(1).  ``_max_dirty_hi`` /
        # ``_max_valid_hi`` bound every per-set value, letting a resize
        # skip the whole scan when nothing dirty/valid can sit above it.
        self._dirty_hi = [0] * n_frames
        self._valid_hi = [0] * n_frames
        self._max_dirty_hi = 0
        self._max_valid_hi = 0
        self._seqc = 0
        self._n_chunks = 0
        self._chunk_starts: list[int] = [0]

    # -- geometry ------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        return self.geometry.num_sets * self.ways * self.geometry.block_size

    @property
    def powered_bytes(self) -> int:
        return self.geometry.num_sets * self.powered_ways * self.geometry.block_size

    # -- the SetAssociativeCache maintenance protocol ------------------

    def set_powered_ways(self, new_powered: int, tick: int) -> int:
        """Gate or re-enable ways; mirrors the reference semantics.

        Dirty live blocks in newly gated ways are flushed (write-back +
        gate flush); dirty decayed blocks are drained as expiry
        write-backs; with ``retains_when_gated=False`` every gated block
        is additionally invalidated.  Re-enabling is free.
        """
        if not 1 <= new_powered <= self.ways:
            raise ValueError(f"new_powered must be in [1, {self.ways}], got {new_powered}")
        st = self.stats
        window = self._window
        flushes = 0
        if new_powered < self.powered_ways:
            lo, hi = new_powered, self.powered_ways
            ways = self.ways
            if self._max_dirty_hi > lo:
                dirty = self._dirty
                lastref = self._lastref
                dirty_hi = self._dirty_hi
                for base in range(0, self._n_frames, ways):
                    dhi = dirty_hi[base]
                    if dhi > lo:
                        for f in range(base + lo, base + min(hi, dhi)):
                            if dirty[f]:
                                if window is not None and tick - lastref[f] > window:
                                    st.expiry_writebacks += 1
                                else:
                                    st.writebacks += 1
                                    st.gate_flushes += 1
                                    flushes += 1
                                dirty[f] = 0
                        dirty_hi[base] = lo
                self._max_dirty_hi = lo
            if not self.retains_when_gated and self._max_valid_hi > lo:
                tagmap = self._tagmap
                valid = self._valid
                blockw = self._blockw
                valid_hi = self._valid_hi
                for base in range(0, self._n_frames, ways):
                    vhi = valid_hi[base]
                    if vhi > lo:
                        for f in range(base + lo, base + min(hi, vhi)):
                            if valid[f]:
                                del tagmap[blockw[f]]
                                valid[f] = 0
                        valid_hi[base] = lo
                self._max_valid_hi = lo
        self.powered_ways = new_powered
        return flushes

    def begin_epoch(self) -> None:
        self.epoch_accesses = 0
        self.epoch_misses = 0
        self.epoch_rank_hits = [0] * self.ways

    def finalize(self, tick: int) -> None:
        """Drain dirty blocks that decayed unobserved (all ways, gated
        included — gated blocks are always clean, so only live-frame
        decay can charge here)."""
        window = self._window
        if window is None:
            return
        dirty = self._dirty
        lastref = self._lastref
        f = dirty.find(1)
        while f >= 0:
            # dirty implies valid (class invariant), no valid check needed
            if tick - lastref[f] > window:
                self.stats.expiry_writebacks += 1
                dirty[f] = 0
            f = dirty.find(1, f + 1)

    # -- chunked replay ------------------------------------------------

    def load(self, ticks, addrs, privs, writes, demand, chunk_ids, n_chunks: int) -> None:
        """Decompose and index this segment's rows for chunked replay.

        ``chunk_ids`` must be this segment's (non-decreasing) chunk
        index per row — ``cummax(global ticks) // epoch_ticks`` masked
        to the segment — so chunk boundaries agree across segments.
        Outcome-independent stats (access totals, privilege and write
        splits) are credited here; hit/miss counters accrue per chunk.
        """
        addrs = np.asarray(addrs, dtype=np.uint64)
        privs = np.asarray(privs)
        n = len(addrs)
        self._n_chunks = n_chunks
        if n and int(privs.max()) > 1:
            raise ValueError(
                f"privilege values must be 0 (user) or 1 (kernel), got {int(privs.max())}"
            )
        st = self.stats
        st.accesses += n
        kernel_accesses = int(np.count_nonzero(privs))
        st.accesses_by_priv[0] += n - kernel_accesses
        st.accesses_by_priv[1] += kernel_accesses
        st.write_accesses += int(np.count_nonzero(np.asarray(writes)))
        st.demand_accesses += int(np.count_nonzero(np.asarray(demand)))
        if n == 0:
            self._chunk_starts = [0] * (n_chunks + 1)
            return

        geometry = self.geometry
        block_bits = geometry.block_size.bit_length() - 1
        num_sets = geometry.num_sets
        blocks = addrs >> np.uint64(block_bits)
        set_idx = (blocks & np.uint64(num_sets - 1)).astype(np.int64)

        # Rows stay in stream order (exactly the reference loop's order);
        # ``chunk_ids`` is non-decreasing, so each chunk is a contiguous
        # slice found by searchsorted.  The frame base (set * ways) is
        # precomputed so the replay loop never touches the set index.
        self._ticks = np.asarray(ticks).tolist()
        self._blocks = blocks.tolist()
        self._bases = (set_idx * self.ways).tolist()
        self._privs = privs.tolist()
        self._writes = np.asarray(writes).tolist()
        self._demand = np.asarray(demand).tolist()
        chunk_ids = np.asarray(chunk_ids, dtype=np.int64)
        self._chunk_starts = np.searchsorted(chunk_ids, np.arange(n_chunks + 1)).tolist()

    def chunk_first_tick(self, chunk: int) -> int | None:
        """Stream-order tick of this segment's first access in ``chunk``
        (None when the chunk has no accesses for this segment)."""
        lo = self._chunk_starts[chunk]
        if lo == self._chunk_starts[chunk + 1]:
            return None
        return self._ticks[lo]

    def replay_chunk(self, chunk: int) -> None:
        """Replay one chunk's accesses under the current powered ways."""
        lo = self._chunk_starts[chunk]
        hi = self._chunk_starts[chunk + 1]
        self.epoch_accesses += hi - lo
        if lo == hi:
            return
        st = self.stats
        window = self._window
        powered = self.powered_ways
        track_ranks = (hi - lo) >= self.min_rank_accesses
        rank_hits = self.epoch_rank_hits
        seqc = self._seqc
        tagmap = self._tagmap
        mget = tagmap.get
        valid = self._valid
        dirty = self._dirty
        privw = self._privw
        lastref = self._lastref
        seqs = self._seqs
        blockw = self._blockw
        dirty_hi = self._dirty_hi
        valid_hi = self._valid_hi
        max_dh = self._max_dirty_hi
        max_vh = self._max_valid_hi
        misses = kernel_misses = demand_misses = hits = 0
        evictions = writebacks = exp_inv = exp_wb = 0
        ec = [0, 0, 0, 0]
        for tick, block, base, priv, isw, dm in zip(
            self._ticks[lo:hi], self._blocks[lo:hi], self._bases[lo:hi],
            self._privs[lo:hi], self._writes[lo:hi], self._demand[lo:hi],
        ):
            seqc += 1
            f = mget(block)
            if f is not None:
                if f - base >= powered:
                    # The block sits in a power-gated way: unreachable,
                    # so this access misses and the stale mapping dies.
                    # (Invalid frames stay clean — the gating and
                    # finalize scans rely on it.)
                    self.gated_misses += 1
                    valid[f] = 0
                    dirty[f] = 0
                    del tagmap[block]
                elif window is not None and tick - lastref[f] > window:
                    # Resident but decayed: a retention-caused miss.
                    exp_inv += 1
                    if dirty[f]:
                        exp_wb += 1
                        dirty[f] = 0
                    valid[f] = 0
                    del tagmap[block]
                else:
                    hits += 1
                    if track_ranks:
                        mine = seqs[f]
                        rank = 0
                        for x in seqs[base:base + powered]:
                            if x > mine:
                                rank += 1
                        rank_hits[rank] += 1
                    seqs[f] = seqc
                    if isw:
                        dirty[f] = 1
                        lastref[f] = tick  # a store rewrites the cells
                        w1 = f - base + 1
                        if w1 > dirty_hi[base]:
                            dirty_hi[base] = w1
                            if w1 > max_dh:
                                max_dh = w1
                    continue
            misses += 1
            if priv:
                kernel_misses += 1
            if dm:
                demand_misses += 1
            end = base + powered
            target = valid.find(0, base, end)
            if target < 0:
                expired = -1
                if window is not None:
                    for i in range(base, end):
                        if tick - lastref[i] > window:
                            expired = i
                            break
                if expired >= 0:
                    # Reclaim a decayed frame: not an interference
                    # eviction (data already gone).
                    target = expired
                    if dirty[target]:
                        exp_wb += 1
                    del tagmap[blockw[target]]
                else:
                    sub = seqs[base:end]
                    target = base + sub.index(min(sub))
                    evictions += 1
                    ec[(privw[target] << 1) | priv] += 1
                    if dirty[target]:
                        writebacks += 1
                    del tagmap[blockw[target]]
            valid[target] = 1
            blockw[target] = block
            privw[target] = priv
            dirty[target] = 1 if isw else 0
            lastref[target] = tick
            seqs[target] = seqc
            tagmap[block] = target
            w1 = target - base + 1
            if w1 > valid_hi[base]:
                valid_hi[base] = w1
                if w1 > max_vh:
                    max_vh = w1
            if isw and w1 > dirty_hi[base]:
                dirty_hi[base] = w1
                if w1 > max_dh:
                    max_dh = w1
        self._seqc = seqc
        self._max_dirty_hi = max_dh
        self._max_valid_hi = max_vh
        self.epoch_misses += misses
        st.hits += hits
        st.misses += misses
        st.fills += misses
        st.demand_misses += demand_misses
        st.misses_by_priv[0] += misses - kernel_misses
        st.misses_by_priv[1] += kernel_misses
        st.evictions += evictions
        st.writebacks += writebacks
        st.expiry_invalidations += exp_inv
        st.expiry_writebacks += exp_wb
        cross = st.evictions_cross
        cross[0][0] += ec[0]
        cross[0][1] += ec[1]
        cross[1][0] += ec[2]
        cross[1][1] += ec[3]


# ----------------------------------------------------------------------
# front ends


def fast_l1_filter(trace, platform: PlatformConfig):
    """Array-backed equivalent of :func:`repro.cache.hierarchy.l1_filter`.

    Splits the trace into the L1I and L1D streams, replays each through
    the kernel with event recording, and merges the miss/write-back
    events back into program order — producing an ``L2Stream`` whose
    columns and L1 stats are bit-identical to the reference filter
    (LRU L1s only; enforced by the dispatch in ``l1_filter``).
    """
    from repro.cache.hierarchy import L2Stream

    kinds = trace.kinds
    ifetch_mask = kinds == np.uint8(AccessKind.IFETCH)
    data_mask = ~ifetch_mask
    all_idx = np.arange(len(trace), dtype=np.int64)

    i_idx = all_idx[ifetch_mask]
    i_stats, i_ev = simulate_trace(
        platform.l1i,
        trace.ticks[ifetch_mask],
        trace.addrs[ifetch_mask],
        trace.privs[ifetch_mask],
        np.zeros(len(i_idx), dtype=bool),
        record_events=True,
        orig_indices=i_idx,
    )
    d_idx = all_idx[data_mask]
    d_stats, d_ev = simulate_trace(
        platform.l1d,
        trace.ticks[data_mask],
        trace.addrs[data_mask],
        trace.privs[data_mask],
        kinds[data_mask] == np.uint8(AccessKind.STORE),
        record_events=True,
        orig_indices=d_idx,
    )

    miss_idx = np.asarray(i_ev.miss_idx + d_ev.miss_idx, dtype=np.int64)
    wb_idx = np.asarray(i_ev.wb_idx + d_ev.wb_idx, dtype=np.int64)
    wb_addr = np.concatenate([i_ev.wb_addr, d_ev.wb_addr])
    wb_priv = np.asarray(i_ev.wb_priv + d_ev.wb_priv, dtype=np.uint8)

    # Merge demand rows (sub-key 0) and write-back rows (sub-key 1) back
    # into program order: a write-back lands right after the miss that
    # evicted it, exactly like the reference filter's append order.
    row_idx = np.concatenate([miss_idx, wb_idx])
    row_sub = np.concatenate([
        np.zeros(len(miss_idx), dtype=np.int8),
        np.ones(len(wb_idx), dtype=np.int8),
    ])
    merge = np.lexsort((row_sub, row_idx))
    row_idx = row_idx[merge]
    writes_col = row_sub[merge] == 1
    addr_col = np.concatenate([trace.addrs[miss_idx], wb_addr])[merge]
    priv_col = np.concatenate([trace.privs[miss_idx], wb_priv])[merge]

    return L2Stream(
        name=trace.name,
        ticks=trace.ticks[row_idx].astype(np.int64),
        addrs=addr_col.astype(np.uint64),
        privs=priv_col.astype(np.uint8),
        writes=writes_col,
        demand=~writes_col,
        instructions=trace.instructions,
        trace_accesses=len(trace),
        duration_ticks=trace.duration_ticks,
        l1i_stats=i_stats,
        l1d_stats=d_stats,
    )


def try_run_fixed(stream, segments, router) -> bool:
    """Replay ``stream`` through fixed segments with the fast kernel.

    Returns False (leaving every cache untouched) unless all segment
    caches are inside the envelope and the router is a pure
    privilege→segment mapping.  On success the per-segment ``stats``
    (including finalize accounting) are installed on each cache and the
    caller must skip its own replay loop and ``finalize`` pass.
    """
    caches = [seg.cache for seg in segments]
    if not caches or not all(supports_cache(c) for c in caches):
        obs.inc("fastsim.decline.unsupported-cache")
        return False
    user_cache = router(int(Privilege.USER))
    kernel_cache = router(int(Privilege.KERNEL))
    if not any(user_cache is c for c in caches):
        obs.inc("fastsim.decline.router")
        return False
    if not any(kernel_cache is c for c in caches):
        obs.inc("fastsim.decline.router")
        return False

    final_tick = stream.duration_ticks
    if user_cache is kernel_cache:
        jobs = [(user_cache, slice(None))]
    else:
        kernel_rows = stream.privs == np.uint8(Privilege.KERNEL)
        jobs = [(user_cache, ~kernel_rows), (kernel_cache, kernel_rows)]
    for cache, rows in jobs:
        stats, _ = simulate_trace(
            cache.geometry,
            stream.ticks[rows],
            stream.addrs[rows],
            stream.privs[rows],
            stream.writes[rows],
            stream.demand[rows],
            retention_ticks=cache.retention_ticks,
            refresh_mode=cache.refresh_mode,
            finalize_tick=final_tick,
        )
        cache.stats = stats
    return True

"""Vectorized fast-path simulation kernel for LRU set-associative caches.

The reference engine (:class:`repro.cache.set_assoc.SetAssociativeCache`)
pays per-access Python overhead — an ``Entry`` object per block, a
replacement-policy virtual call per access, an ``AccessResult`` per call —
which bounds every experiment at single-digit M-accesses/s.  This module
replays an *entire trace at once* instead:

1. NumPy decomposes all addresses into (set, tag) columns and groups the
   trace by set (one stable argsort); every scalar counter that does not
   depend on hit/miss outcomes (access totals, privilege and write splits)
   is reduced vectorially.
2. Each set is then replayed by a tight loop over packed parallel arrays
   (tag / privilege / dirty / last-refresh, plus an integer LRU recency
   sequence) — no objects, no dispatch, no per-access allocation.

The kernel is **bit-identical** to the reference engine inside its
supported envelope (checked by :func:`supports_cache`):

* true-LRU replacement,
* fixed geometry: no way resizing, no power gating, no drowsy mode,
* retention ``none``, or ``invalidate`` with the fixed-window model.

Everything outside the envelope — ``rewrite`` refresh, exponential
retention lifetimes, gated ways, non-LRU policies, and any replay that
needs per-access interleaving (bank-level DRAM, prefetching) — falls back
to the reference engine.  ``tests/test_fastsim.py`` holds the randomized
differential harness (:mod:`repro.cache.diffsim`) that proves the exact
:class:`~repro.cache.stats.CacheStats` equality this module promises.

Set ``REPRO_FASTSIM=0`` to disable the fast path globally (every replay
then uses the reference engine, useful when bisecting a discrepancy).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.cache.replacement import LRUPolicy
from repro.cache.stats import CacheStats
from repro.config import CacheGeometry, PlatformConfig
from repro.types import AccessKind, Privilege

__all__ = [
    "enabled",
    "supports_cache",
    "simulate_trace",
    "MissEvents",
    "fast_l1_filter",
    "try_run_fixed",
]

#: Refresh modes the kernel reproduces exactly.
SUPPORTED_REFRESH_MODES = ("none", "invalidate")


def enabled() -> bool:
    """True unless the ``REPRO_FASTSIM`` environment variable disables us."""
    return os.environ.get("REPRO_FASTSIM", "1").strip().lower() not in ("0", "false", "off")


def supports_cache(cache) -> bool:
    """True when ``cache`` (a fresh ``SetAssociativeCache``) is inside the
    kernel's exact-equivalence envelope.

    The cache must be untouched (no accesses, no resident blocks): the
    kernel replays from a cold array, so a warm reference cache cannot be
    taken over mid-run.
    """
    return (
        type(cache.policy) is LRUPolicy
        and cache.refresh_mode in SUPPORTED_REFRESH_MODES
        and cache.retention_distribution == "fixed"
        and cache.drowsy_window is None
        and cache.powered_ways == cache.ways
        and cache.ways == cache.geometry.associativity
        and cache.stats.accesses == 0
        and all(not tagmap for tagmap in cache._tagmaps)
    )


@dataclass
class MissEvents:
    """Per-miss side channel of one :func:`simulate_trace` run.

    ``miss_idx`` lists the caller-supplied index of every missing access
    (in replay order); ``wb_idx``/``wb_addr``/``wb_priv`` describe the
    dirty LRU victim written back by the miss at the same index.  The L1
    filter turns these into the demand/write-back rows of an
    :class:`~repro.cache.hierarchy.L2Stream`.
    """

    miss_idx: list
    wb_idx: list
    wb_addr: np.ndarray
    wb_priv: list


def simulate_trace(
    geometry: CacheGeometry,
    ticks,
    addrs,
    privs,
    writes,
    demand=None,
    *,
    retention_ticks: int | None = None,
    refresh_mode: str = "none",
    finalize_tick: int | None = None,
    record_events: bool = False,
    orig_indices: np.ndarray | None = None,
) -> tuple[CacheStats, MissEvents | None]:
    """Replay one access stream through an array-backed LRU cache.

    Args:
        geometry: Cache geometry (fixed for the whole run).
        ticks, addrs, privs, writes: Parallel access columns (any
            array-likes; addresses may carry sub-block offsets).
        demand: Optional demand-fetch mask; ``None`` means every access
            is a demand access (the L1 case).
        retention_ticks: Fixed retention window, or ``None``.
        refresh_mode: ``"none"`` or ``"invalidate"`` (the envelope).
        finalize_tick: When given, settle end-of-simulation accounting at
            this tick exactly like ``SetAssociativeCache.finalize`` (the
            expiry write-backs of dirty blocks that decayed unobserved).
        record_events: Collect a :class:`MissEvents` side channel.
        orig_indices: Caller-space index of each access, recorded in the
            events (defaults to 0..n-1).

    Returns:
        ``(stats, events)`` — ``stats`` is bit-identical to the reference
        engine's counters; ``events`` is ``None`` unless requested.
    """
    if refresh_mode not in SUPPORTED_REFRESH_MODES:
        raise ValueError(
            f"fastsim supports refresh modes {SUPPORTED_REFRESH_MODES}, got {refresh_mode!r}"
        )
    if refresh_mode == "invalidate" and retention_ticks is None:
        raise ValueError("refresh_mode 'invalidate' needs a finite retention_ticks")

    addrs = np.asarray(addrs, dtype=np.uint64)
    n = len(addrs)
    stats = CacheStats()
    events = MissEvents([], [], np.zeros(0, dtype=np.uint64), []) if record_events else None
    if n == 0:
        return stats, events

    block_bits = geometry.block_size.bit_length() - 1
    num_sets = geometry.num_sets
    set_bits = num_sets.bit_length() - 1
    ways = geometry.associativity

    privs = np.asarray(privs)
    writes = np.asarray(writes)
    if int(privs.max()) > 1:
        # Fail as loudly as the reference engine's accesses_by_priv[priv].
        raise ValueError(
            f"privilege values must be 0 (user) or 1 (kernel), got {int(privs.max())}"
        )
    kernel_accesses = int(np.count_nonzero(privs))
    write_accesses = int(np.count_nonzero(writes))
    demand_accesses = n if demand is None else int(np.count_nonzero(np.asarray(demand)))

    blocks = addrs >> np.uint64(block_bits)
    set_idx = (blocks & np.uint64(num_sets - 1)).astype(np.int64)
    tags = blocks >> np.uint64(set_bits)

    order = np.argsort(set_idx, kind="stable")
    starts = np.zeros(num_sets + 1, dtype=np.int64)
    np.cumsum(np.bincount(set_idx, minlength=num_sets), out=starts[1:])
    active_sets = np.nonzero(starts[1:] > starts[:-1])[0].tolist()
    starts = starts.tolist()

    # Bulk-convert the sorted columns to plain Python values once; the
    # per-set loops below then run on C-backed lists, not numpy scalars.
    # Columns a given replay variant never reads are not converted.
    s_tags = tags[order].tolist()
    s_privs = privs[order].tolist()
    s_writes = writes[order].tolist()
    if demand is None:
        s_demand = None
    else:
        s_demand = np.asarray(demand)[order].tolist()
    if record_events:
        if orig_indices is None:
            s_orig = order.tolist()
        else:
            s_orig = np.asarray(orig_indices)[order].tolist()
    else:
        s_orig = None

    if refresh_mode == "none":
        if events is None and s_demand is None:
            counters = _replay_sets_simple(
                ways, active_sets, starts, s_tags, s_privs, s_writes,
            )
            wb_set: list = []
            wb_tag: list = []
        else:
            counters, wb_set, wb_tag = _replay_sets(
                ways, active_sets, starts, s_tags, s_privs, s_writes,
                s_demand, s_orig, events,
            )
    else:
        s_ticks = np.asarray(ticks)[order].tolist()
        counters, wb_set, wb_tag = _replay_sets_retention(
            ways, active_sets, starts, s_ticks, s_tags, s_privs, s_writes,
            s_demand, s_orig, events, retention_ticks, finalize_tick,
        )
    (misses, kernel_misses, demand_misses, evictions, writebacks,
     expiry_invalidations, expiry_writebacks, ec00, ec01, ec10, ec11) = counters

    if events is not None and wb_tag:
        events.wb_addr = (
            (np.asarray(wb_tag, dtype=np.uint64) << np.uint64(set_bits)
             | np.asarray(wb_set, dtype=np.uint64))
            << np.uint64(block_bits)
        )

    stats.accesses = n
    stats.hits = n - misses
    stats.misses = misses
    stats.fills = misses
    stats.evictions = evictions
    stats.writebacks = writebacks
    stats.expiry_invalidations = expiry_invalidations
    stats.expiry_writebacks = expiry_writebacks
    stats.demand_accesses = demand_accesses
    stats.demand_misses = misses if demand is None else demand_misses
    stats.write_accesses = write_accesses
    stats.accesses_by_priv = [n - kernel_accesses, kernel_accesses]
    stats.misses_by_priv = [misses - kernel_misses, kernel_misses]
    stats.evictions_cross = [[ec00, ec01], [ec10, ec11]]
    return stats, events


def _replay_sets_simple(ways, active_sets, starts, TG, PV, WR):
    """Hottest replay variant: no retention, no demand column, no event
    recording.  Kept separate from :func:`_replay_sets` so the inner loop
    unpacks three columns and carries zero per-access branches for
    features the caller did not ask for.

    LRU state is a move-to-back way list (front = least recent).  Recency
    sequences are unique and strictly increasing, so the list stays in
    exact ascending-sequence order and popping the front selects the same
    victim as the reference ``LRUPolicy.victim`` first-strict-minimum
    scan; sets fill in way order exactly like the reference free-frame
    scan."""
    misses = kernel_misses = 0
    evictions = writebacks = 0
    # evictions_cross flattened: index = (victim_priv << 1) | aggressor_priv
    ec = [0, 0, 0, 0]
    for s in active_sets:
        lo, hi = starts[s], starts[s + 1]
        tagmap: dict = {}
        mget = tagmap.get
        tagw: list = []
        privw: list = []
        dirty: list = []
        lru: list = []
        lru_remove = lru.remove
        lru_append = lru.append
        lru_pop = lru.pop
        filled = 0
        for tag, priv, isw in zip(TG[lo:hi], PV[lo:hi], WR[lo:hi]):
            w = mget(tag)
            if w is not None:
                lru_remove(w)
                lru_append(w)
                if isw:
                    dirty[w] = True
                continue
            misses += 1
            if priv:
                kernel_misses += 1
            if filled < ways:
                tagmap[tag] = filled
                tagw.append(tag)
                privw.append(priv)
                dirty.append(isw)
                lru_append(filled)
                filled += 1
            else:
                w = lru_pop(0)
                lru_append(w)
                evictions += 1
                ec[(privw[w] << 1) | priv] += 1
                if dirty[w]:
                    writebacks += 1
                del tagmap[tagw[w]]
                tagmap[tag] = w
                tagw[w] = tag
                privw[w] = priv
                dirty[w] = isw
    return (misses, kernel_misses, 0, evictions, writebacks,
            0, 0, ec[0], ec[1], ec[2], ec[3])


def _replay_sets(ways, active_sets, starts, TG, PV, WR, DM, OR, events):
    """General no-retention replay: like :func:`_replay_sets_simple`
    (same move-to-back LRU list) but tracking the demand column and/or
    recording per-miss events."""
    misses = kernel_misses = demand_misses = 0
    evictions = writebacks = 0
    ec = [0, 0, 0, 0]
    track_dm = DM is not None
    record = events is not None
    wb_set: list = []
    wb_tag: list = []
    if record:
        miss_idx = events.miss_idx
        wb_idx = events.wb_idx
        wb_priv = events.wb_priv
    for s in active_sets:
        lo, hi = starts[s], starts[s + 1]
        tagmap: dict = {}
        mget = tagmap.get
        tagw: list = []
        privw: list = []
        dirty: list = []
        lru: list = []
        lru_remove = lru.remove
        lru_append = lru.append
        lru_pop = lru.pop
        filled = 0
        for tag, priv, isw, dm, oi in zip(
            TG[lo:hi], PV[lo:hi], WR[lo:hi],
            DM[lo:hi] if track_dm else TG[lo:hi],
            OR[lo:hi] if record else TG[lo:hi],
        ):
            w = mget(tag)
            if w is not None:
                lru_remove(w)
                lru_append(w)
                if isw:
                    dirty[w] = True
                continue
            misses += 1
            if priv:
                kernel_misses += 1
            if track_dm and dm:
                demand_misses += 1
            if record:
                miss_idx.append(oi)
            if filled < ways:
                tagmap[tag] = filled
                tagw.append(tag)
                privw.append(priv)
                dirty.append(isw)
                lru_append(filled)
                filled += 1
            else:
                w = lru_pop(0)
                lru_append(w)
                evictions += 1
                vp = privw[w]
                ec[(vp << 1) | priv] += 1
                if dirty[w]:
                    writebacks += 1
                    if record:
                        wb_idx.append(oi)
                        wb_set.append(s)
                        wb_tag.append(tagw[w])
                        wb_priv.append(vp)
                del tagmap[tagw[w]]
                tagmap[tag] = w
                tagw[w] = tag
                privw[w] = priv
                dirty[w] = isw
    counters = (misses, kernel_misses, demand_misses, evictions, writebacks,
                0, 0, ec[0], ec[1], ec[2], ec[3])
    return counters, wb_set, wb_tag


def _replay_sets_retention(ways, active_sets, starts, T, TG, PV, WR, DM, OR,
                           events, window, finalize_tick):
    """Per-set replay with fixed-window invalidate-on-expiry retention.

    Mirrors the reference engine access path exactly: an expired resident
    block turns its access into an expiry invalidation + plain miss; the
    fill frame is the lowest free way, else the lowest expired way
    (reclaimed without eviction accounting), else the LRU victim.
    """
    misses = kernel_misses = demand_misses = 0
    evictions = writebacks = 0
    expiry_invalidations = expiry_writebacks = 0
    ec = [0, 0, 0, 0]
    track_dm = DM is not None
    record = events is not None
    wb_set: list = []
    wb_tag: list = []
    if record:
        miss_idx = events.miss_idx
        wb_idx = events.wb_idx
        wb_priv = events.wb_priv
    way_range = range(ways)
    for s in active_sets:
        lo, hi = starts[s], starts[s + 1]
        tagmap: dict = {}
        mget = tagmap.get
        valid = [False] * ways
        tagw = [0] * ways
        privw = [0] * ways
        dirty = [False] * ways
        lastref = [0] * ways
        seqs = [0] * ways
        seqc = 0
        for tick, tag, priv, isw, dm, oi in zip(
            T[lo:hi], TG[lo:hi], PV[lo:hi], WR[lo:hi],
            DM[lo:hi] if track_dm else TG[lo:hi],
            OR[lo:hi] if record else TG[lo:hi],
        ):
            seqc += 1
            w = mget(tag)
            if w is not None:
                if tick - lastref[w] > window:
                    # Resident but decayed: a retention-caused miss.
                    expiry_invalidations += 1
                    if dirty[w]:
                        expiry_writebacks += 1
                    valid[w] = False
                    del tagmap[tag]
                else:
                    seqs[w] = seqc
                    if isw:
                        dirty[w] = True
                        lastref[w] = tick  # a store rewrites the cells
                    continue
            misses += 1
            if priv:
                kernel_misses += 1
            if track_dm and dm:
                demand_misses += 1
            if record:
                miss_idx.append(oi)
            target = -1
            expired_way = -1
            for i in way_range:
                if not valid[i]:
                    target = i
                    break
                if expired_way < 0 and tick - lastref[i] > window:
                    expired_way = i
            if target < 0:
                if expired_way >= 0:
                    # Reclaim a decayed frame: not an interference eviction.
                    target = expired_way
                    if dirty[target]:
                        expiry_writebacks += 1
                    del tagmap[tagw[target]]
                else:
                    target = seqs.index(min(seqs))
                    evictions += 1
                    vp = privw[target]
                    ec[(vp << 1) | priv] += 1
                    if dirty[target]:
                        writebacks += 1
                        if record:
                            wb_idx.append(oi)
                            wb_set.append(s)
                            wb_tag.append(tagw[target])
                            wb_priv.append(vp)
                    del tagmap[tagw[target]]
            valid[target] = True
            tagw[target] = tag
            privw[target] = priv
            dirty[target] = isw
            lastref[target] = tick
            seqs[target] = seqc
            tagmap[tag] = target
        if finalize_tick is not None:
            # SetAssociativeCache.finalize: drain dirty blocks that decayed
            # unobserved before the end of the simulated window.
            for i in way_range:
                if valid[i] and dirty[i] and finalize_tick - lastref[i] > window:
                    expiry_writebacks += 1
    counters = (misses, kernel_misses, demand_misses, evictions, writebacks,
                expiry_invalidations, expiry_writebacks, ec[0], ec[1], ec[2], ec[3])
    return counters, wb_set, wb_tag


# ----------------------------------------------------------------------
# front ends


def fast_l1_filter(trace, platform: PlatformConfig):
    """Array-backed equivalent of :func:`repro.cache.hierarchy.l1_filter`.

    Splits the trace into the L1I and L1D streams, replays each through
    the kernel with event recording, and merges the miss/write-back
    events back into program order — producing an ``L2Stream`` whose
    columns and L1 stats are bit-identical to the reference filter
    (LRU L1s only; enforced by the dispatch in ``l1_filter``).
    """
    from repro.cache.hierarchy import L2Stream

    kinds = trace.kinds
    ifetch_mask = kinds == np.uint8(AccessKind.IFETCH)
    data_mask = ~ifetch_mask
    all_idx = np.arange(len(trace), dtype=np.int64)

    i_idx = all_idx[ifetch_mask]
    i_stats, i_ev = simulate_trace(
        platform.l1i,
        trace.ticks[ifetch_mask],
        trace.addrs[ifetch_mask],
        trace.privs[ifetch_mask],
        np.zeros(len(i_idx), dtype=bool),
        record_events=True,
        orig_indices=i_idx,
    )
    d_idx = all_idx[data_mask]
    d_stats, d_ev = simulate_trace(
        platform.l1d,
        trace.ticks[data_mask],
        trace.addrs[data_mask],
        trace.privs[data_mask],
        kinds[data_mask] == np.uint8(AccessKind.STORE),
        record_events=True,
        orig_indices=d_idx,
    )

    miss_idx = np.asarray(i_ev.miss_idx + d_ev.miss_idx, dtype=np.int64)
    wb_idx = np.asarray(i_ev.wb_idx + d_ev.wb_idx, dtype=np.int64)
    wb_addr = np.concatenate([i_ev.wb_addr, d_ev.wb_addr])
    wb_priv = np.asarray(i_ev.wb_priv + d_ev.wb_priv, dtype=np.uint8)

    # Merge demand rows (sub-key 0) and write-back rows (sub-key 1) back
    # into program order: a write-back lands right after the miss that
    # evicted it, exactly like the reference filter's append order.
    row_idx = np.concatenate([miss_idx, wb_idx])
    row_sub = np.concatenate([
        np.zeros(len(miss_idx), dtype=np.int8),
        np.ones(len(wb_idx), dtype=np.int8),
    ])
    merge = np.lexsort((row_sub, row_idx))
    row_idx = row_idx[merge]
    writes_col = row_sub[merge] == 1
    addr_col = np.concatenate([trace.addrs[miss_idx], wb_addr])[merge]
    priv_col = np.concatenate([trace.privs[miss_idx], wb_priv])[merge]

    return L2Stream(
        name=trace.name,
        ticks=trace.ticks[row_idx].astype(np.int64),
        addrs=addr_col.astype(np.uint64),
        privs=priv_col.astype(np.uint8),
        writes=writes_col,
        demand=~writes_col,
        instructions=trace.instructions,
        trace_accesses=len(trace),
        duration_ticks=trace.duration_ticks,
        l1i_stats=i_stats,
        l1d_stats=d_stats,
    )


def try_run_fixed(stream, segments, router) -> bool:
    """Replay ``stream`` through fixed segments with the fast kernel.

    Returns False (leaving every cache untouched) unless all segment
    caches are inside the envelope and the router is a pure
    privilege→segment mapping.  On success the per-segment ``stats``
    (including finalize accounting) are installed on each cache and the
    caller must skip its own replay loop and ``finalize`` pass.
    """
    caches = [seg.cache for seg in segments]
    if not caches or not all(supports_cache(c) for c in caches):
        return False
    user_cache = router(int(Privilege.USER))
    kernel_cache = router(int(Privilege.KERNEL))
    if not any(user_cache is c for c in caches):
        return False
    if not any(kernel_cache is c for c in caches):
        return False

    final_tick = stream.duration_ticks
    if user_cache is kernel_cache:
        jobs = [(user_cache, slice(None))]
    else:
        kernel_rows = stream.privs == np.uint8(Privilege.KERNEL)
        jobs = [(user_cache, ~kernel_rows), (kernel_cache, kernel_rows)]
    for cache, rows in jobs:
        stats, _ = simulate_trace(
            cache.geometry,
            stream.ticks[rows],
            stream.addrs[rows],
            stream.privs[rows],
            stream.writes[rows],
            stream.demand[rows],
            retention_ticks=cache.retention_ticks,
            refresh_mode=cache.refresh_mode,
            finalize_tick=final_tick,
        )
        cache.stats = stats
    return True

"""L2 prefetchers (extension beyond the paper).

The workloads the paper motivates are full of streaming traffic (media
buffers, network payloads), which is exactly what simple hardware
prefetchers catch.  Two classics are provided:

* :class:`SequentialPrefetcher` — on a demand miss, prefetch the next
  ``degree`` sequential blocks.
* :class:`StridePrefetcher` — per-4KB-page stride detection: after two
  misses with a repeating delta, prefetch ``degree`` strides ahead.

Prefetches are issued by the replay loop as non-demand fills, so they
never count against demand miss rate but do occupy frames (pollution —
which is what the prefetch ablation measures in the small partitioned
segments) and do cost DRAM transfers and fill energy.
"""

from __future__ import annotations

import abc
from collections import OrderedDict

from repro.types import CACHE_BLOCK_SIZE

__all__ = ["Prefetcher", "SequentialPrefetcher", "StridePrefetcher", "make_prefetcher"]

_PAGE_BITS = 12  # 4 KB stride-tracking granularity


class Prefetcher(abc.ABC):
    """Interface: observe demand misses, propose prefetch addresses."""

    name: str = "abstract"

    @abc.abstractmethod
    def on_miss(self, addr: int) -> list[int]:
        """Return block addresses to prefetch after a demand miss at ``addr``."""

    def reset(self) -> None:
        """Clear any learned state."""


class SequentialPrefetcher(Prefetcher):
    """Next-N-line prefetching on every demand miss."""

    name = "nextline"

    def __init__(self, degree: int = 1) -> None:
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        self.degree = degree

    def on_miss(self, addr: int) -> list[int]:
        block = addr & ~(CACHE_BLOCK_SIZE - 1)
        return [block + CACHE_BLOCK_SIZE * i for i in range(1, self.degree + 1)]


class StridePrefetcher(Prefetcher):
    """Per-page stride detector with a bounded table.

    Keeps (last address, last delta, confirmed) per 4 KB page in an LRU
    table of ``table_size`` entries.  A stride is confirmed after the
    same delta repeats once; confirmed pages prefetch ``degree`` strides
    ahead of each miss.
    """

    name = "stride"

    def __init__(self, degree: int = 2, table_size: int = 64) -> None:
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        if table_size < 1:
            raise ValueError(f"table_size must be >= 1, got {table_size}")
        self.degree = degree
        self.table_size = table_size
        self._table: OrderedDict[int, tuple[int, int, bool]] = OrderedDict()

    def on_miss(self, addr: int) -> list[int]:
        block = addr & ~(CACHE_BLOCK_SIZE - 1)
        page = block >> _PAGE_BITS
        entry = self._table.pop(page, None)
        out: list[int] = []
        if entry is None:
            self._table[page] = (block, 0, False)
        else:
            last, delta, confirmed = entry
            new_delta = block - last
            if new_delta != 0 and new_delta == delta:
                self._table[page] = (block, new_delta, True)
                out = [block + new_delta * i for i in range(1, self.degree + 1)]
            else:
                self._table[page] = (block, new_delta, False)
        while len(self._table) > self.table_size:
            self._table.popitem(last=False)
        return [a for a in out if a >= 0]

    def reset(self) -> None:
        self._table.clear()


def make_prefetcher(name: str, degree: int | None = None) -> Prefetcher:
    """Instantiate a prefetcher by name (``"nextline"`` or ``"stride"``)."""
    if name == "nextline":
        return SequentialPrefetcher(degree if degree is not None else 1)
    if name == "stride":
        return StridePrefetcher(degree if degree is not None else 2)
    raise ValueError(f"unknown prefetcher {name!r}; choose 'nextline' or 'stride'")

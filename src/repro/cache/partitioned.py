"""Privilege-partitioned L2: separate user and kernel segments.

The paper's core structural idea: split the L2 into two way-partitions,
one reachable only by user-mode accesses and one only by kernel-mode
accesses.  Each segment keeps the parent's set count, so a *k*-way
segment of a 1024-set L2 is exactly the way-partition hardware would
build.  Cross-privilege interference is impossible by construction.

Each segment is an independent :class:`SetAssociativeCache`, which lets
the two sides differ in retention class (multi-retention STT-RAM) and be
resized independently (dynamic partitioning).
"""

from __future__ import annotations

from repro.cache.set_assoc import AccessResult, SetAssociativeCache
from repro.cache.stats import CacheStats
from repro.types import Privilege

__all__ = ["PartitionedCache"]


class PartitionedCache:
    """An L2 made of one cache segment per privilege level.

    Args:
        segments: Mapping from privilege to its segment cache.  Both
            privileges must be present and the segments must share set
            count and block size (they are way-partitions of one array).
    """

    def __init__(self, segments: dict[Privilege, SetAssociativeCache]) -> None:
        missing = [p for p in Privilege if p not in segments]
        if missing:
            raise ValueError(f"partitioned cache missing segments for {missing}")
        geoms = [segments[p].geometry for p in Privilege]
        if len({g.num_sets for g in geoms}) != 1 or len({g.block_size for g in geoms}) != 1:
            raise ValueError("segments must share set count and block size")
        self.segments = dict(segments)

    @property
    def user(self) -> SetAssociativeCache:
        """The user-privilege segment."""
        return self.segments[Privilege.USER]

    @property
    def kernel(self) -> SetAssociativeCache:
        """The kernel-privilege segment."""
        return self.segments[Privilege.KERNEL]

    @property
    def size_bytes(self) -> int:
        """Combined active capacity of both segments."""
        return sum(seg.size_bytes for seg in self.segments.values())

    def segment_for(self, priv: int) -> SetAssociativeCache:
        """Segment that serves accesses at privilege ``priv``."""
        return self.segments[Privilege(priv)]

    def access(
        self, addr: int, is_write: bool, priv: int, tick: int, demand: bool = True
    ) -> AccessResult:
        """Route the access to its privilege's segment."""
        return self.segment_for(priv).access(addr, is_write, priv, tick, demand)

    def finalize(self, tick: int) -> None:
        """Settle lazy accounting in both segments."""
        for seg in self.segments.values():
            seg.finalize(tick)

    @property
    def stats(self) -> CacheStats:
        """Merged whole-L2 statistics."""
        merged = CacheStats()
        for seg in self.segments.values():
            merged = merged.merge(seg.stats)
        return merged

    def __repr__(self) -> str:
        return (
            f"PartitionedCache(user={self.user.size_bytes // 1024} KB, "
            f"kernel={self.kernel.size_bytes // 1024} KB)"
        )

"""Phase-level workload model for interactive mobile applications.

The paper's motivating observation is that interactive smartphone apps
spend a large share of their memory activity in the OS kernel: every
touch event, frame, network packet and Binder IPC drags execution through
syscalls, interrupt handlers and kernel services.  We model an app as a
Markov chain over *phases*.  Each phase runs at one privilege level and
draws its accesses from a set of address *regions* with phase-specific
locality.

The model deliberately keeps few knobs; :mod:`repro.trace.workloads`
instantiates it for eight named apps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.types import Privilege

__all__ = ["Region", "PhaseSpec", "AppProfile"]


@dataclass(frozen=True)
class Region:
    """A contiguous address range with one access pattern.

    Attributes:
        name: Label used in diagnostics.
        base: Start byte address.  Kernel regions must live at or above
            :data:`repro.types.KERNEL_SPACE_START`.
        size: Region size in bytes.
        pattern: ``"hot"`` draws block ranks from a concentrated
            power-law (temporal locality), ``"stream"`` walks the region
            sequentially and wraps (spatial locality, no reuse),
            ``"uniform"`` draws blocks uniformly (pointer chasing), and
            ``"rotating"`` cycles through ``subsets`` uniform sub-working
            sets, switching every ``rotate_dwells`` phase dwells — the
            footprint of an app whose active view/page changes between
            interactions.  Rotation is what gives user blocks their long
            dead times relative to kernel blocks (Figure 5).
        hotness: Exponent of the power-law rank transform for ``"hot"``
            regions; larger values concentrate accesses on fewer blocks.
            Rank is ``floor(nblocks * u**hotness)`` for ``u ~ U[0, 1)``.
        kind_weights: Probabilities of (IFETCH, LOAD, STORE) for
            accesses drawn from this region; must sum to 1.
        run_mean: Mean number of consecutive accesses to a block once it
            is selected (geometric run lengths).  Models word-granularity
            walks within a 64-byte line — the spatial locality that gives
            real code its L1 hit rate.
    """

    name: str
    base: int
    size: int
    pattern: str = "hot"
    hotness: float = 3.0
    kind_weights: tuple[float, float, float] = (0.0, 0.7, 0.3)
    run_mean: float = 6.0
    subsets: int = 4
    rotate_dwells: int = 3

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"region {self.name!r}: size must be positive")
        if self.pattern not in ("hot", "stream", "uniform", "rotating"):
            raise ValueError(f"region {self.name!r}: unknown pattern {self.pattern!r}")
        if self.pattern == "rotating" and (self.subsets < 2 or self.rotate_dwells < 1):
            raise ValueError(
                f"region {self.name!r}: rotating pattern needs subsets >= 2 "
                f"and rotate_dwells >= 1"
            )
        if self.pattern == "hot" and self.hotness < 1.0:
            raise ValueError(f"region {self.name!r}: hotness must be >= 1")
        total = sum(self.kind_weights)
        if not np.isclose(total, 1.0):
            raise ValueError(f"region {self.name!r}: kind_weights sum to {total}, expected 1")
        if self.run_mean < 1.0:
            raise ValueError(f"region {self.name!r}: run_mean must be >= 1")


@dataclass(frozen=True)
class PhaseSpec:
    """One phase of app execution at a single privilege level.

    Attributes:
        name: Phase label (``"render"``, ``"syscall"``, ...).
        privilege: Privilege level of every access in the phase.
        regions: Candidate regions, paired with selection ``weights``.
        weights: Per-access probability of choosing each region.
        mean_accesses: Mean dwell length in accesses; actual dwells are
            geometric around this mean.
        mean_gap: Mean instruction gap between consecutive accesses
            (>= 1); drives trace ticks and hence leakage time.
    """

    name: str
    privilege: Privilege
    regions: tuple[Region, ...]
    weights: tuple[float, ...]
    mean_accesses: int = 400
    mean_gap: float = 3.0

    def __post_init__(self) -> None:
        if not self.regions:
            raise ValueError(f"phase {self.name!r} needs at least one region")
        if len(self.weights) != len(self.regions):
            raise ValueError(f"phase {self.name!r}: {len(self.weights)} weights for {len(self.regions)} regions")
        if not np.isclose(sum(self.weights), 1.0):
            raise ValueError(f"phase {self.name!r}: weights must sum to 1")
        if self.mean_accesses < 1:
            raise ValueError(f"phase {self.name!r}: mean_accesses must be >= 1")
        if self.mean_gap < 1.0:
            raise ValueError(f"phase {self.name!r}: mean_gap must be >= 1")


@dataclass(frozen=True)
class AppProfile:
    """A complete application model: phases plus transition structure.

    Attributes:
        name: Application name (``"browser"``...).
        description: What the app stands for in the paper's suite.
        phases: The phase set.
        transitions: Row-stochastic matrix; ``transitions[i][j]`` is the
            probability of entering phase *j* after a dwell in phase *i*.
        start_phase: Index of the first phase.
        wake_phase: Phase entered right after an idle period (the
            interrupt handler that wakes the core), or ``None`` to keep
            the Markov transition.  Timer/wake interrupts are why kernel
            blocks keep short reuse intervals even across idle time.
        idle_prob: Probability that a phase transition is preceded by an
            idle period (the core waits for the next touch event, frame
            or packet).  Idle time advances the tick clock — and hence
            leakage and retention decay — without executing instructions.
        idle_mean_ticks: Mean length of one idle period in ticks.
    """

    name: str
    description: str
    phases: tuple[PhaseSpec, ...]
    transitions: tuple[tuple[float, ...], ...]
    start_phase: int = 0
    idle_prob: float = 0.20
    idle_mean_ticks: int = 40_000
    wake_phase: int | None = None

    def __post_init__(self) -> None:
        n = len(self.phases)
        if n == 0:
            raise ValueError("profile needs at least one phase")
        if not 0.0 <= self.idle_prob <= 1.0:
            raise ValueError(f"profile {self.name!r}: idle_prob must be in [0, 1]")
        if self.idle_mean_ticks < 0:
            raise ValueError(f"profile {self.name!r}: idle_mean_ticks must be >= 0")
        if len(self.transitions) != n or any(len(row) != n for row in self.transitions):
            raise ValueError(f"profile {self.name!r}: transition matrix must be {n}x{n}")
        for i, row in enumerate(self.transitions):
            if not np.isclose(sum(row), 1.0):
                raise ValueError(f"profile {self.name!r}: transition row {i} sums to {sum(row)}")
            if min(row) < 0:
                raise ValueError(f"profile {self.name!r}: negative transition probability in row {i}")
        if not 0 <= self.start_phase < n:
            raise ValueError(f"profile {self.name!r}: start_phase {self.start_phase} out of range")
        if self.wake_phase is not None and not 0 <= self.wake_phase < n:
            raise ValueError(f"profile {self.name!r}: wake_phase {self.wake_phase} out of range")

    @property
    def kernel_phase_indices(self) -> tuple[int, ...]:
        """Indices of phases that run at kernel privilege."""
        return tuple(i for i, p in enumerate(self.phases) if p.privilege is Privilege.KERNEL)


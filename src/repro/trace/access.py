"""The :class:`Trace` container — a tagged memory-access stream.

A trace is the unit of workload in this library.  It wraps a numpy
structured array (:data:`repro.types.TRACE_DTYPE`) plus the workload name
and the number of instructions the stream represents, and offers cheap
views (slices, privilege filters) used throughout the experiment harness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.types import TRACE_DTYPE, AccessKind, Privilege

__all__ = ["Trace"]


@dataclass(frozen=True)
class Trace:
    """An immutable memory-access trace.

    Attributes:
        name: Workload identifier (for example ``"browser"``).
        records: Structured array with fields ``tick``, ``addr``,
            ``kind`` and ``priv`` (see :data:`repro.types.TRACE_DTYPE`).
            Ticks are non-decreasing.
        instructions: Number of dynamic instructions the trace stands
            for.  The timing model charges ``base_cpi`` cycles per
            instruction on top of memory stalls.
    """

    name: str
    records: np.ndarray
    instructions: int

    def __post_init__(self) -> None:
        if self.records.dtype != TRACE_DTYPE:
            raise TypeError(f"records must have TRACE_DTYPE, got {self.records.dtype}")
        if self.instructions < len(self.records):
            raise ValueError(
                f"instructions ({self.instructions}) cannot be fewer than "
                f"accesses ({len(self.records)})"
            )
        if len(self.records) and np.any(np.diff(self.records["tick"].astype(np.int64)) < 0):
            raise ValueError("trace ticks must be non-decreasing")

    def __len__(self) -> int:
        return len(self.records)

    @property
    def ticks(self) -> np.ndarray:
        """Tick (cycle) column."""
        return self.records["tick"]

    @property
    def addrs(self) -> np.ndarray:
        """Address column."""
        return self.records["addr"]

    @property
    def kinds(self) -> np.ndarray:
        """Access-kind column (values of :class:`AccessKind`)."""
        return self.records["kind"]

    @property
    def privs(self) -> np.ndarray:
        """Privilege column (values of :class:`Privilege`)."""
        return self.records["priv"]

    @property
    def duration_ticks(self) -> int:
        """Tick span covered by the trace (0 for an empty trace)."""
        if not len(self.records):
            return 0
        return int(self.records["tick"][-1]) + 1

    def privilege_mask(self, privilege: Privilege) -> np.ndarray:
        """Boolean mask selecting accesses at ``privilege``."""
        return self.records["priv"] == np.uint8(privilege)

    def kind_mask(self, kind: AccessKind) -> np.ndarray:
        """Boolean mask selecting accesses of ``kind``."""
        return self.records["kind"] == np.uint8(kind)

    def select(self, mask: np.ndarray) -> "Trace":
        """New trace keeping only ``mask``-selected records."""
        return Trace(self.name, self.records[mask], self.instructions)

    def head(self, n: int) -> "Trace":
        """Prefix of at most ``n`` accesses (instruction count scaled)."""
        if n >= len(self.records):
            return self
        sub = self.records[:n]
        frac = n / len(self.records)
        return Trace(self.name, sub, max(n, int(self.instructions * frac)))

    def kernel_fraction(self) -> float:
        """Fraction of accesses issued at kernel privilege."""
        if not len(self.records):
            return 0.0
        return float(np.mean(self.privilege_mask(Privilege.KERNEL)))

    def write_fraction(self) -> float:
        """Fraction of accesses that are stores."""
        if not len(self.records):
            return 0.0
        return float(np.mean(self.kind_mask(AccessKind.STORE)))

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"Trace({self.name!r}: {len(self):,} accesses, "
            f"{self.instructions:,} instructions, "
            f"kernel {self.kernel_fraction():.1%}, stores {self.write_fraction():.1%})"
        )

"""Importers for external trace formats.

Anyone with real traces (gem5, Pin, custom tooling) can adopt this
library by converting to one of two simple text formats:

* **CSV**: ``tick,addr,kind,priv`` per line; ``addr`` decimal or 0x-hex;
  ``kind`` in {I, L, S} (ifetch/load/store) or the numeric
  :class:`~repro.types.AccessKind` value; ``priv`` in {U, K} or 0/1.
  Lines starting with ``#`` are comments.
* **din** (Dinero-style): ``<type> <addr>`` per line with type 0=load,
  1=store, 2=ifetch.  Dinero has no timestamps or privilege, so ticks
  count up by ``tick_stride`` and privilege is inferred from the address
  against the kernel split.
"""

from __future__ import annotations

import os

import numpy as np

from repro.trace.access import Trace
from repro.types import TRACE_DTYPE, AccessKind, Privilege, is_kernel_address

__all__ = ["load_csv_trace", "load_din_trace"]

_KIND_CODES = {
    "I": AccessKind.IFETCH, "L": AccessKind.LOAD, "S": AccessKind.STORE,
    "0": AccessKind.IFETCH, "1": AccessKind.LOAD, "2": AccessKind.STORE,
}
_PRIV_CODES = {"U": Privilege.USER, "K": Privilege.KERNEL,
               "0": Privilege.USER, "1": Privilege.KERNEL}

_DIN_KINDS = {0: AccessKind.LOAD, 1: AccessKind.STORE, 2: AccessKind.IFETCH}


def _parse_int(token: str) -> int:
    return int(token, 16) if token.lower().startswith("0x") else int(token)


def load_csv_trace(path: str | os.PathLike, name: str | None = None) -> Trace:
    """Load a ``tick,addr,kind,priv`` CSV trace."""
    records = []
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = [p.strip() for p in line.split(",")]
            if len(parts) != 4:
                raise ValueError(f"{path}:{lineno}: expected 4 fields, got {len(parts)}")
            tick = _parse_int(parts[0])
            addr = _parse_int(parts[1])
            kind = _KIND_CODES.get(parts[2].upper())
            priv = _PRIV_CODES.get(parts[3].upper())
            if kind is None:
                raise ValueError(f"{path}:{lineno}: unknown kind {parts[2]!r}")
            if priv is None:
                raise ValueError(f"{path}:{lineno}: unknown privilege {parts[3]!r}")
            if tick < 0 or addr < 0:
                raise ValueError(f"{path}:{lineno}: negative tick or address")
            records.append((tick, addr, int(kind), int(priv)))
    if not records:
        raise ValueError(f"{path}: no trace records found")
    arr = np.array(records, dtype=TRACE_DTYPE)
    order = np.argsort(arr["tick"], kind="stable")
    arr = arr[order]
    trace_name = name if name is not None else os.path.splitext(os.path.basename(path))[0]
    instructions = max(len(arr), int(arr["tick"][-1]) + 1)
    return Trace(trace_name, arr, instructions)


def load_din_trace(
    path: str | os.PathLike,
    name: str | None = None,
    tick_stride: int = 3,
) -> Trace:
    """Load a Dinero-style ``<type> <addr>`` trace.

    Privilege is inferred from the address against the 3G/1G split —
    adequate for traces captured with kernel addresses in the canonical
    high range.
    """
    if tick_stride < 1:
        raise ValueError(f"tick_stride must be >= 1, got {tick_stride}")
    records = []
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"{path}:{lineno}: expected '<type> <addr>'")
            try:
                din_type = int(parts[0])
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: bad type {parts[0]!r}") from exc
            if din_type not in _DIN_KINDS:
                raise ValueError(f"{path}:{lineno}: type must be 0/1/2, got {din_type}")
            addr = _parse_int(parts[1])
            priv = Privilege.KERNEL if is_kernel_address(addr) else Privilege.USER
            tick = len(records) * tick_stride
            records.append((tick, addr, int(_DIN_KINDS[din_type]), int(priv)))
    if not records:
        raise ValueError(f"{path}: no trace records found")
    arr = np.array(records, dtype=TRACE_DTYPE)
    trace_name = name if name is not None else os.path.splitext(os.path.basename(path))[0]
    return Trace(trace_name, arr, max(len(arr), int(arr["tick"][-1]) + 1))

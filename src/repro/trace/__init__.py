"""Workload substrate: tagged memory-access traces of mobile apps.

Public surface:

* :class:`Trace` — the access-stream container.
* :class:`Region`, :class:`PhaseSpec`, :class:`AppProfile` — the phase
  model used to describe interactive apps.
* :func:`generate_trace` — deterministic synthetic generation.
* :data:`APP_NAMES`, :func:`app_profile`, :func:`default_suite`,
  :func:`suite_trace` — the eight-app smartphone suite.
* :mod:`repro.trace.stats` — stream statistics (kernel share, reuse,
  inter-access intervals).
* :func:`save_trace` / :func:`load_trace` — ``.npz`` persistence.
"""

from repro.trace.access import Trace
from repro.trace.generator import generate_trace
from repro.trace.importers import load_csv_trace, load_din_trace
from repro.trace.io import load_trace, save_trace
from repro.trace.microbench import MICROBENCH_NAMES, microbench_profile
from repro.trace.phases import AppProfile, PhaseSpec, Region
from repro.trace.transform import (
    concat,
    remap_user_space,
    shift_ticks,
    slice_window,
    timeslice,
)
from repro.trace.workloads import (
    APP_NAMES,
    DEFAULT_TRACE_LENGTH,
    EXTRA_APP_NAMES,
    app_profile,
    default_suite,
    suite_trace,
)

__all__ = [
    "Trace",
    "generate_trace",
    "load_csv_trace",
    "load_din_trace",
    "load_trace",
    "save_trace",
    "MICROBENCH_NAMES",
    "microbench_profile",
    "concat",
    "remap_user_space",
    "shift_ticks",
    "slice_window",
    "timeslice",
    "EXTRA_APP_NAMES",
    "AppProfile",
    "PhaseSpec",
    "Region",
    "APP_NAMES",
    "DEFAULT_TRACE_LENGTH",
    "app_profile",
    "default_suite",
    "suite_trace",
]

"""Trace-level statistics used by the motivation experiments.

These functions characterise an access stream *before* it meets a cache:
privilege mix, footprints, block reuse distances and inter-access
intervals.  Figure 5 of the reproduction uses the interval statistics of
the L2-filtered streams to justify the retention classes chosen for the
multi-retention STT-RAM design.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.access import Trace
from repro.types import CACHE_BLOCK_SIZE, Privilege

__all__ = [
    "kernel_access_share",
    "unique_blocks",
    "footprint_bytes",
    "reuse_distances",
    "inter_access_intervals",
    "IntervalSummary",
    "summarize_intervals",
]


def kernel_access_share(trace: Trace) -> float:
    """Fraction of accesses issued at kernel privilege."""
    return trace.kernel_fraction()


def unique_blocks(trace: Trace, privilege: Privilege | None = None) -> int:
    """Number of distinct cache blocks touched (optionally one privilege)."""
    recs = trace.records
    if privilege is not None:
        recs = recs[recs["priv"] == np.uint8(privilege)]
    if not len(recs):
        return 0
    blocks = recs["addr"] // np.uint64(CACHE_BLOCK_SIZE)
    return int(np.unique(blocks).size)


def footprint_bytes(trace: Trace, privilege: Privilege | None = None) -> int:
    """Total bytes of distinct blocks touched (the working footprint)."""
    return unique_blocks(trace, privilege) * CACHE_BLOCK_SIZE


def reuse_distances(trace: Trace, max_samples: int = 50_000) -> np.ndarray:
    """LRU stack reuse distances of block references.

    Returns one distance per *reused* reference (first touches are
    excluded).  Distance is the number of distinct other blocks touched
    since the previous reference to the same block — the classic stack
    distance that determines hit/miss in a fully associative LRU cache.
    Computed over at most ``max_samples`` leading references to bound the
    O(n·d) cost of the stack simulation.
    """
    blocks = (trace.addrs // np.uint64(CACHE_BLOCK_SIZE))[:max_samples]
    stack: list[int] = []
    position: dict[int, int] = {}
    out: list[int] = []
    for blk in blocks.tolist():
        if blk in position:
            # distance = how many distinct blocks sit above it on the stack
            idx = stack.index(blk)
            out.append(len(stack) - 1 - idx)
            stack.pop(idx)
        stack.append(blk)
        position[blk] = 1
    return np.asarray(out, dtype=np.int64)


def inter_access_intervals(
    trace: Trace, privilege: Privilege | None = None
) -> np.ndarray:
    """Tick gaps between consecutive references to the same block.

    This is the quantity that decides whether a retention time is long
    enough: a block whose next reference arrives after its segment's
    retention window has expired and must be refetched.
    """
    recs = trace.records
    if privilege is not None:
        recs = recs[recs["priv"] == np.uint8(privilege)]
    if len(recs) < 2:
        return np.empty(0, dtype=np.int64)
    blocks = recs["addr"] // np.uint64(CACHE_BLOCK_SIZE)
    ticks = recs["tick"].astype(np.int64)
    order = np.argsort(blocks, kind="stable")
    sorted_blocks = blocks[order]
    sorted_ticks = ticks[order]
    same = sorted_blocks[1:] == sorted_blocks[:-1]
    gaps = sorted_ticks[1:] - sorted_ticks[:-1]
    return gaps[same]


@dataclass(frozen=True)
class IntervalSummary:
    """Summary statistics of an inter-access interval distribution."""

    count: int
    mean: float
    median: float
    p90: float
    p99: float
    max: float

    def row(self) -> tuple[float, ...]:
        """Values in display order (count, mean, median, p90, p99, max)."""
        return (self.count, self.mean, self.median, self.p90, self.p99, self.max)


def summarize_intervals(intervals: np.ndarray) -> IntervalSummary:
    """Condense an interval sample into an :class:`IntervalSummary`."""
    if not len(intervals):
        return IntervalSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return IntervalSummary(
        count=int(len(intervals)),
        mean=float(np.mean(intervals)),
        median=float(np.median(intervals)),
        p90=float(np.percentile(intervals, 90)),
        p99=float(np.percentile(intervals, 99)),
        max=float(np.max(intervals)),
    )

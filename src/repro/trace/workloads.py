"""The eight-app interactive smartphone workload suite.

The paper evaluates interactive Android applications (browser, maps,
e-mail, social networking, music, casual game, video and document
reading — the Moby-style suite).  With no Android traces available
offline, each app is modelled as an :class:`~repro.trace.phases.AppProfile`
whose parameters encode what distinguishes these workloads at the memory
system level.

Each privilege side has a three-tier working set, the structure cache
studies consistently observe in real traces:

* a **hot** tier (code loops, top-of-heap) that the L1s capture,
* a **warm** tier — per-interaction state, uniformly re-referenced —
  that misses the L1s but lives comfortably in a right-sized L2
  segment; its size is the knob that decides how much L2 each side
  *deserves*, and
* a **cold/streaming** tier (full heap walks, network/media buffers)
  that no realistic L2 holds; it is what *pollutes* the shared cache
  and drives the user/kernel interference the paper measures.

``default_suite()`` returns the suite in a stable order; experiments and
benches iterate over it.
"""

from __future__ import annotations

from functools import lru_cache

from repro.trace.access import Trace
from repro.trace.generator import generate_trace
from repro.trace.phases import AppProfile, PhaseSpec, Region
from repro.types import Privilege

__all__ = [
    "APP_NAMES",
    "EXTRA_APP_NAMES",
    "app_profile",
    "default_suite",
    "suite_trace",
    "DEFAULT_TRACE_LENGTH",
]

#: Suite order used by every figure and table (the paper's 8-app suite).
APP_NAMES = ("browser", "maps", "email", "social", "music", "game", "video", "reader")

#: Additional profiles beyond the paper's suite, for robustness studies
#: (see ``EXTRA_APP_NAMES`` consumers in benchmarks and examples).
EXTRA_APP_NAMES = ("camera", "chat", "podcast", "gallery")

#: Default per-app trace length (accesses) for experiments.
DEFAULT_TRACE_LENGTH = 240_000

_KB = 1024

# Address-space layout shared by all profiles (32-bit 3G/1G split).
_USER_CODE = 0x0040_0000
_USER_WARM = 0x1000_0000
_USER_COLD = 0x2000_0000
_USER_STREAM = 0x4000_0000
_KERNEL_CODE = 0xC010_0000
_KERNEL_WARM = 0xC400_0000
_KERNEL_COLD = 0xC800_0000
_KERNEL_BUF = 0xD000_0000

_CODE_KINDS = (0.9, 0.08, 0.02)  # overwhelmingly instruction fetch
_DATA_KINDS = (0.0, 0.68, 0.32)  # load-dominated read/write mix
_BUF_KINDS = (0.0, 0.5, 0.5)  # DMA-ish buffer traffic


def _build_profile(
    name: str,
    description: str,
    *,
    user_warm_kb: int = 48,
    user_cold_kb: int = 1536,
    user_cold_weight: float = 0.05,
    user_stream_kb: int = 2048,
    user_stream_weight: float = 0.05,
    kernel_warm_kb: int = 36,
    kernel_cold_kb: int = 1280,
    kernel_cold_weight: float = 0.05,
    kernel_buf_kb: int = 256,
    kernel_buf_weight: float = 0.10,
    kernel_dwell: int = 400,
    user_dwell: int = 520,
) -> AppProfile:
    """Assemble the standard three-phase interactive-app profile."""
    user_code = Region("user_code", _USER_CODE, 96 * _KB, "hot", 4.2, _CODE_KINDS)
    user_warm = Region(
        "user_warm", _USER_WARM, 4 * user_warm_kb * _KB, "rotating",
        kind_weights=_DATA_KINDS, subsets=4, rotate_dwells=2,
    )
    user_cold = Region("user_cold", _USER_COLD, user_cold_kb * _KB, "uniform", kind_weights=_DATA_KINDS)
    user_stream = Region(
        "user_stream", _USER_STREAM, user_stream_kb * _KB, "stream",
        kind_weights=_DATA_KINDS, run_mean=8.0,
    )
    kernel_code = Region("kernel_code", _KERNEL_CODE, 72 * _KB, "hot", 4.2, _CODE_KINDS)
    kernel_warm = Region("kernel_warm", _KERNEL_WARM, kernel_warm_kb * _KB, "uniform", kind_weights=_DATA_KINDS)
    kernel_cold = Region("kernel_cold", _KERNEL_COLD, kernel_cold_kb * _KB, "uniform", kind_weights=_DATA_KINDS)
    kernel_buf = Region(
        "kernel_buf", _KERNEL_BUF, kernel_buf_kb * _KB, "stream",
        kind_weights=_BUF_KINDS, run_mean=8.0,
    )

    user_warm_weight = 1.0 - 0.32 - user_cold_weight - user_stream_weight
    user_app = PhaseSpec(
        "user_app",
        Privilege.USER,
        (user_code, user_warm, user_cold, user_stream),
        (0.32, user_warm_weight, user_cold_weight, user_stream_weight),
        mean_accesses=user_dwell,
        mean_gap=3.0,
    )
    kernel_warm_weight = 1.0 - 0.40 - kernel_cold_weight - kernel_buf_weight
    kernel_service = PhaseSpec(
        "kernel_service",
        Privilege.KERNEL,
        (kernel_code, kernel_warm, kernel_cold, kernel_buf),
        (0.40, kernel_warm_weight, kernel_cold_weight, kernel_buf_weight),
        mean_accesses=kernel_dwell,
        mean_gap=2.5,
    )
    kernel_irq = PhaseSpec(
        "kernel_irq",
        Privilege.KERNEL,
        (kernel_code, kernel_warm),
        (0.55, 0.45),
        mean_accesses=70,
        mean_gap=2.0,
    )
    phases = (user_app, kernel_service, kernel_irq)
    transitions = (
        (0.00, 0.78, 0.22),  # user -> mostly syscall service, some IRQ
        (0.88, 0.00, 0.12),  # service -> back to user, occasional IRQ tail
        (0.80, 0.20, 0.00),  # IRQ -> user, sometimes softirq service
    )
    return AppProfile(name, description, phases, transitions, wake_phase=2)


def _profiles() -> dict[str, AppProfile]:
    """Construct the suite; one entry per name in :data:`APP_NAMES`."""
    return {
        "browser": _build_profile(
            "browser",
            "web browsing (BBench-style): large cold DOM/JS heap, heavy network syscalls",
            user_warm_kb=36, user_cold_kb=2048, user_cold_weight=0.06,
            kernel_warm_kb=40, kernel_cold_kb=1344, kernel_buf_kb=20480, kernel_buf_weight=0.12,
            kernel_dwell=530, user_dwell=480,
        ),
        "maps": _build_profile(
            "maps",
            "maps navigation: tile streaming plus mid-size heap, steady network traffic",
            user_warm_kb=52, user_cold_kb=1280, user_stream_kb=4096, user_stream_weight=0.07,
            kernel_warm_kb=32, kernel_buf_kb=20480, kernel_buf_weight=0.11,
            kernel_dwell=530, user_dwell=480,
        ),
        "email": _build_profile(
            "email",
            "e-mail client (K-9-style): small heap, bursty sync dominated by kernel I/O",
            user_warm_kb=40, user_cold_kb=1152, user_cold_weight=0.04,
            kernel_warm_kb=44, kernel_cold_kb=1536, kernel_buf_kb=2304, kernel_buf_weight=0.12,
            kernel_dwell=530, user_dwell=440,
        ),
        "social": _build_profile(
            "social",
            "social networking feed: constant network/IPC service, mixed media heap",
            user_warm_kb=52, user_cold_kb=1536, user_cold_weight=0.055,
            kernel_warm_kb=44, kernel_cold_kb=1536, kernel_buf_kb=3072, kernel_buf_weight=0.13,
            kernel_dwell=560, user_dwell=420,
        ),
        "music": _build_profile(
            "music",
            "music playback: decode streams audio buffers, periodic driver activity",
            user_warm_kb=36, user_cold_kb=1024, user_cold_weight=0.035,
            user_stream_kb=6144, user_stream_weight=0.09,
            kernel_warm_kb=28, kernel_buf_kb=3584, kernel_buf_weight=0.14,
            kernel_dwell=480, user_dwell=480,
        ),
        "game": _build_profile(
            "game",
            "casual game (Frozen-Bubble-style): hot compact state, least kernel time",
            user_warm_kb=44, user_cold_kb=1152, user_cold_weight=0.03,
            user_stream_weight=0.02,
            kernel_warm_kb=24, kernel_cold_kb=1024, kernel_buf_kb=2048, kernel_buf_weight=0.08,
            kernel_dwell=430, user_dwell=560,
        ),
        "video": _build_profile(
            "video",
            "video playback: frame buffers stream through, driver/DMA kernel traffic",
            user_warm_kb=40, user_cold_kb=1024, user_cold_weight=0.035,
            user_stream_kb=8192, user_stream_weight=0.10,
            kernel_warm_kb=32, kernel_buf_kb=4096, kernel_buf_weight=0.15,
            kernel_dwell=510, user_dwell=470,
        ),
        "camera": _build_profile(
            "camera",
            "camera capture + image pipeline: tile state plus heavy frame streaming",
            user_warm_kb=56, user_cold_kb=512, user_cold_weight=0.03,
            user_stream_kb=12288, user_stream_weight=0.16,
            kernel_warm_kb=36, kernel_buf_kb=6144, kernel_buf_weight=0.18,
            kernel_dwell=420, user_dwell=560,
        ),
        "chat": _build_profile(
            "chat",
            "instant messaging: tiny hot heap, constant notification/IPC kernel work",
            user_warm_kb=32, user_cold_kb=512, user_cold_weight=0.04,
            user_stream_weight=0.02,
            kernel_warm_kb=52, kernel_cold_kb=1024, kernel_buf_kb=2048,
            kernel_buf_weight=0.13, kernel_dwell=560, user_dwell=380,
        ),
        "podcast": _build_profile(
            "podcast",
            "background audio + download: streaming dominated, minimal user state",
            user_warm_kb=24, user_cold_kb=512, user_cold_weight=0.03,
            user_stream_kb=8192, user_stream_weight=0.20,
            kernel_warm_kb=32, kernel_buf_kb=4096, kernel_buf_weight=0.20,
            kernel_dwell=480, user_dwell=420,
        ),
        "gallery": _build_profile(
            "gallery",
            "photo gallery: thumbnail cache plus large decode streams, page-cache churn",
            user_warm_kb=64, user_cold_kb=1536, user_cold_weight=0.08,
            user_stream_kb=6144, user_stream_weight=0.12,
            kernel_warm_kb=40, kernel_cold_kb=1536, kernel_cold_weight=0.08,
            kernel_buf_kb=2048, kernel_buf_weight=0.10,
            kernel_dwell=400, user_dwell=520,
        ),
        "reader": _build_profile(
            "reader",
            "document reader: page-cache heavy rendering with moderate kernel share",
            user_warm_kb=48, user_cold_kb=1280, user_cold_weight=0.045,
            user_stream_kb=3072, user_stream_weight=0.06,
            kernel_warm_kb=28, kernel_buf_kb=2048, kernel_buf_weight=0.10,
            kernel_dwell=450, user_dwell=520,
        ),
    }


@lru_cache(maxsize=None)
def app_profile(name: str) -> AppProfile:
    """Return the :class:`AppProfile` for ``name`` (see :data:`APP_NAMES`)."""
    profiles = _profiles()
    if name not in profiles:
        raise KeyError(f"unknown app {name!r}; choose from {APP_NAMES}")
    return profiles[name]


def default_suite() -> tuple[AppProfile, ...]:
    """All eight app profiles in suite order."""
    return tuple(app_profile(name) for name in APP_NAMES)


@lru_cache(maxsize=32)
def suite_trace(name: str, length: int = DEFAULT_TRACE_LENGTH, seed: int = 0) -> Trace:
    """Generate (and memoise) the default trace for app ``name``.

    Experiments, tests and benches share this cache, so each distinct
    trace is generated once per process.
    """
    return generate_trace(app_profile(name), length, seed)

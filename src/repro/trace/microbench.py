"""Synthetic microbenchmarks: single-behaviour stress traces.

Where the app suite models whole applications, these produce *pure*
access patterns — a streaming loop, a pointer chase, a code loop, a
syscall storm — which is what one wants when characterising a mechanism
in isolation (e.g. "what does the dynamic controller do under pure
streaming?").  Each returns an :class:`~repro.trace.phases.AppProfile`
usable with :func:`~repro.trace.generator.generate_trace`.
"""

from __future__ import annotations

from repro.trace.phases import AppProfile, PhaseSpec, Region
from repro.types import KERNEL_SPACE_START, Privilege

__all__ = ["MICROBENCH_NAMES", "microbench_profile"]

MICROBENCH_NAMES = ("stream", "pointer_chase", "code_loop", "syscall_storm", "idle_burst")

_KB = 1024
_DATA = (0.0, 0.68, 0.32)
_CODE = (0.9, 0.08, 0.02)
_BUF = (0.0, 0.5, 0.5)


def _single_phase(name: str, region: Region, privilege=Privilege.USER,
                  mean_gap: float = 3.0, **profile_kw) -> AppProfile:
    phase = PhaseSpec(name, privilege, (region,), (1.0,), mean_accesses=1000,
                      mean_gap=mean_gap)
    defaults = dict(idle_prob=0.0, idle_mean_ticks=0)
    defaults.update(profile_kw)
    return AppProfile(name, f"microbenchmark: {name}", (phase,), ((1.0,),), **defaults)


def microbench_profile(name: str) -> AppProfile:
    """Build the named microbenchmark profile (see ``MICROBENCH_NAMES``)."""
    if name == "stream":
        region = Region("ms", 0x1000_0000, 32 * 1024 * _KB, "stream",
                        kind_weights=_DATA, run_mean=8.0)
        return _single_phase("stream", region)
    if name == "pointer_chase":
        region = Region("mp", 0x1000_0000, 4 * 1024 * _KB, "uniform",
                        kind_weights=_DATA, run_mean=1.0)
        return _single_phase("pointer_chase", region)
    if name == "code_loop":
        region = Region("mc", 0x0040_0000, 96 * _KB, "hot", hotness=4.0,
                        kind_weights=_CODE, run_mean=8.0)
        return _single_phase("code_loop", region)
    if name == "syscall_storm":
        user = Region("mu", 0x1000_0000, 64 * _KB, "uniform", kind_weights=_DATA)
        kcode = Region("mk", KERNEL_SPACE_START + 0x10_0000, 128 * _KB, "hot",
                       hotness=3.2, kind_weights=_CODE)
        kbuf = Region("mb", KERNEL_SPACE_START + 0x1000_0000, 4 * 1024 * _KB,
                      "stream", kind_weights=_BUF, run_mean=8.0)
        phases = (
            PhaseSpec("user", Privilege.USER, (user,), (1.0,), mean_accesses=60),
            PhaseSpec("kernel", Privilege.KERNEL, (kcode, kbuf), (0.7, 0.3),
                      mean_accesses=200),
        )
        return AppProfile("syscall_storm", "microbenchmark: syscall storm",
                          phases, ((0.0, 1.0), (1.0, 0.0)), idle_prob=0.0)
    if name == "idle_burst":
        region = Region("mi", 0x1000_0000, 128 * _KB, "uniform", kind_weights=_DATA)
        return _single_phase(
            "idle_burst", region, idle_prob=0.9, idle_mean_ticks=500_000)
    raise ValueError(f"unknown microbenchmark {name!r}; choose from {MICROBENCH_NAMES}")

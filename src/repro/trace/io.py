"""Trace (de)serialisation.

Traces round-trip through ``.npz`` files so expensive generations (or
externally collected traces converted to :data:`repro.types.TRACE_DTYPE`)
can be reused across processes.
"""

from __future__ import annotations

import os

import numpy as np

from repro.trace.access import Trace
from repro.types import TRACE_DTYPE

__all__ = ["save_trace", "load_trace"]

_FORMAT_VERSION = 1


def save_trace(trace: Trace, path: str | os.PathLike) -> None:
    """Write ``trace`` to ``path`` as a compressed ``.npz`` archive."""
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        name=np.bytes_(trace.name.encode("utf-8")),
        instructions=np.int64(trace.instructions),
        records=trace.records,
    )


def load_trace(path: str | os.PathLike) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    with np.load(path) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported trace format version {version}")
        records = np.ascontiguousarray(data["records"])
        if records.dtype != TRACE_DTYPE:
            raise ValueError(f"trace file has dtype {records.dtype}, expected {TRACE_DTYPE}")
        name = bytes(data["name"]).decode("utf-8")
        return Trace(name, records, int(data["instructions"]))

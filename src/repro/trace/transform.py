"""Trace transformations: slicing, shifting, concatenation, remapping.

Utilities for composing workloads out of existing traces — used by the
multi-core extension (:mod:`repro.multicore`) and handy for anyone
importing external traces.
"""

from __future__ import annotations

import numpy as np

from repro.trace.access import Trace
from repro.types import KERNEL_SPACE_START

__all__ = [
    "slice_window",
    "shift_ticks",
    "concat",
    "remap_user_space",
    "timeslice",
]


def slice_window(trace: Trace, start_tick: int, end_tick: int) -> Trace:
    """Accesses with ``start_tick <= tick < end_tick``, rebased to 0."""
    if not start_tick <= end_tick:
        raise ValueError(f"need start_tick <= end_tick, got [{start_tick}, {end_tick})")
    ticks = trace.ticks.astype(np.int64)
    mask = (ticks >= start_tick) & (ticks < end_tick)
    records = trace.records[mask].copy()
    if len(records):
        records["tick"] -= np.uint64(start_tick)
    window = end_tick - start_tick
    frac = min(1.0, window / max(1, trace.duration_ticks))
    instructions = max(len(records), int(trace.instructions * frac))
    return Trace(trace.name, records, instructions)


def shift_ticks(trace: Trace, offset: int) -> Trace:
    """Delay every access by ``offset`` ticks (>= 0)."""
    if offset < 0:
        raise ValueError(f"offset must be >= 0, got {offset}")
    records = trace.records.copy()
    records["tick"] += np.uint64(offset)
    return Trace(trace.name, records, trace.instructions + offset)


def concat(first: Trace, second: Trace, gap_ticks: int = 0) -> Trace:
    """Play ``second`` after ``first`` with an idle ``gap_ticks`` between."""
    if gap_ticks < 0:
        raise ValueError(f"gap_ticks must be >= 0, got {gap_ticks}")
    shifted = shift_ticks(second, first.duration_ticks + gap_ticks)
    records = np.concatenate([first.records, shifted.records])
    return Trace(
        f"{first.name}+{second.name}",
        records,
        first.instructions + second.instructions,
    )


def timeslice(traces: list[Trace], quantum_ticks: int, total_ticks: int | None = None) -> Trace:
    """Round-robin the traces on one core with a scheduler quantum.

    Models foreground-app switching: window *k* of the output replays
    window *k* of trace ``k % n`` (each trace advances through its own
    timeline, so every visit brings a *different* slice of that app).
    User address spaces should be remapped per app beforehand (see
    :func:`remap_user_space`); the kernel space stays shared, which is
    why kernel L2 content survives an app switch while user content
    turns over.
    """
    if not traces:
        raise ValueError("need at least one trace")
    if quantum_ticks <= 0:
        raise ValueError(f"quantum_ticks must be positive, got {quantum_ticks}")
    horizon = total_ticks if total_ticks is not None else min(t.duration_ticks for t in traces)
    pieces = []
    out_tick = 0
    window = 0
    n = len(traces)
    # window k replays per-trace window k // n of trace k % n; the loop
    # runs until every trace's own timeline is consumed up to `horizon`
    # (the output therefore spans ~n * horizon ticks: n apps timesliced
    # on one core take n times as long).
    while (window // n) * quantum_ticks < horizon:
        trace = traces[window % n]
        start = window // n * quantum_ticks  # per-trace progress
        piece = slice_window(trace, start, start + quantum_ticks)
        if len(piece):
            records = piece.records.copy()
            records["tick"] += np.uint64(out_tick)
            pieces.append(records)
        out_tick += quantum_ticks
        window += 1
    if not pieces:
        raise ValueError("timeslice produced an empty trace; quantum too small?")
    records = np.concatenate(pieces)
    name = "|".join(t.name for t in traces)
    instructions = max(len(records), int(sum(t.instructions for t in traces) * horizon
                                         / max(1, sum(t.duration_ticks for t in traces))))
    return Trace(name, records, instructions)


def remap_user_space(trace: Trace, asid: int, stride: int = 1 << 34) -> Trace:
    """Move the user half of the address space to a per-ASID region.

    Kernel addresses are left untouched — every address space shares one
    kernel, which is precisely why kernel blocks enjoy cross-process
    reuse in a shared L2.  ``asid`` 0 is the identity mapping.
    """
    if asid < 0:
        raise ValueError(f"asid must be >= 0, got {asid}")
    if stride < KERNEL_SPACE_START:
        raise ValueError("stride must clear the user address range")
    if asid == 0:
        return trace
    records = trace.records.copy()
    user = records["addr"] < np.uint64(KERNEL_SPACE_START)
    records["addr"][user] += np.uint64(asid * stride)
    return Trace(trace.name, records, trace.instructions)

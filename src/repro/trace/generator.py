"""Synthetic trace generation from an :class:`~repro.trace.phases.AppProfile`.

The generator replaces the Android/gem5 full-system traces of the paper
(see the substitution table in ``DESIGN.md``).  It is deterministic for a
given ``(profile, length, seed)`` triple and vectorised per phase dwell,
so multi-hundred-thousand-access traces generate in well under a second.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro import obs
from repro.trace.access import Trace
from repro.trace.phases import AppProfile, PhaseSpec, Region
from repro.types import CACHE_BLOCK_SIZE, TRACE_DTYPE, KERNEL_SPACE_START, Privilege

__all__ = ["generate_trace"]


def _region_blocks(region: Region) -> int:
    """Number of cache blocks a region spans (at least 1)."""
    return max(1, region.size // CACHE_BLOCK_SIZE)


def _draw_blocks(
    region: Region,
    n: int,
    rng: np.random.Generator,
    stream_cursor: dict[str, int],
) -> np.ndarray:
    """Draw ``n`` distinct block selections following the region pattern."""
    nblocks = _region_blocks(region)
    if region.pattern == "hot":
        u = rng.random(n)
        ranks = np.floor(nblocks * u**region.hotness).astype(np.int64)
        # Permute ranks into block positions with a fixed stride so hot
        # blocks spread across cache sets instead of clustering at the
        # region base (a real hot working set is scattered).
        stride = 97  # coprime with any power-of-two block count
        return (ranks * stride) % nblocks
    if region.pattern == "uniform":
        return rng.integers(0, nblocks, size=n)
    if region.pattern == "rotating":
        dwells = stream_cursor.get(region.name + "/dwells", 0)
        active = (dwells // region.rotate_dwells) % region.subsets
        sub = max(1, nblocks // region.subsets)
        return active * sub + rng.integers(0, sub, size=n)
    # stream: sequential walk that wraps, cursor persists across dwells
    start = stream_cursor.get(region.name, 0)
    idx = (start + np.arange(n, dtype=np.int64)) % nblocks
    stream_cursor[region.name] = int((start + n) % nblocks)
    return idx


def _sample_region_offsets(
    region: Region,
    n: int,
    rng: np.random.Generator,
    stream_cursor: dict[str, int],
) -> np.ndarray:
    """Draw ``n`` block indices: pattern-selected blocks expanded into
    geometric runs of consecutive same-block accesses (word-level spatial
    locality within a line)."""
    if region.run_mean <= 1.0:
        return _draw_blocks(region, n, rng, stream_cursor)
    parts: list[np.ndarray] = []
    remaining = n
    while remaining > 0:
        draws = max(1, int(remaining / region.run_mean) + 1)
        blocks = _draw_blocks(region, draws, rng, stream_cursor)
        runs = rng.geometric(1.0 / region.run_mean, size=draws)
        expanded = np.repeat(blocks, runs)
        parts.append(expanded[:remaining])
        remaining -= min(remaining, len(expanded))
    return np.concatenate(parts) if len(parts) > 1 else parts[0]


def _generate_phase_burst(
    phase: PhaseSpec,
    n: int,
    rng: np.random.Generator,
    stream_cursor: dict[str, int],
) -> np.ndarray:
    """Generate ``n`` records for one dwell in ``phase`` (ticks left at 0)."""
    out = np.zeros(n, dtype=TRACE_DTYPE)
    region_idx = rng.choice(len(phase.regions), size=n, p=phase.weights)
    kinds = np.empty(n, dtype=np.uint8)
    addrs = np.empty(n, dtype=np.uint64)
    for ri, region in enumerate(phase.regions):
        mask = region_idx == ri
        cnt = int(mask.sum())
        if not cnt:
            continue
        offs = _sample_region_offsets(region, cnt, rng, stream_cursor)
        if region.pattern == "rotating":
            key = region.name + "/dwells"
            stream_cursor[key] = stream_cursor.get(key, 0) + 1
        addrs[mask] = np.uint64(region.base) + offs.astype(np.uint64) * np.uint64(CACHE_BLOCK_SIZE)
        kw = np.asarray(region.kind_weights)
        kinds[mask] = rng.choice(3, size=cnt, p=kw).astype(np.uint8)
    out["addr"] = addrs
    out["kind"] = kinds
    out["priv"] = np.uint8(phase.privilege)
    return out


def _validate_profile_addresses(profile: AppProfile) -> None:
    """Check privilege/address-space consistency of every region."""
    for phase in profile.phases:
        for region in phase.regions:
            in_kernel = region.base >= KERNEL_SPACE_START
            if (phase.privilege is Privilege.KERNEL) != in_kernel:
                raise ValueError(
                    f"profile {profile.name!r}: phase {phase.name!r} at "
                    f"{phase.privilege.label} privilege uses region "
                    f"{region.name!r} at {region.base:#x} on the wrong side "
                    f"of the user/kernel split"
                )


def generate_trace(profile: AppProfile, length: int, seed: int = 0) -> Trace:
    """Generate a deterministic synthetic trace of ``length`` accesses.

    Args:
        profile: Application model to sample from.
        length: Number of memory accesses to produce (> 0).
        seed: RNG seed; the same triple always yields the same trace.

    Returns:
        A :class:`~repro.trace.access.Trace` named after the profile.
    """
    if length <= 0:
        raise ValueError(f"length must be positive, got {length}")
    _validate_profile_addresses(profile)
    with obs.span("trace.generate", app=profile.name, length=length, seed=seed):
        return _generate(profile, length, seed)


def _generate(profile: AppProfile, length: int, seed: int) -> Trace:
    # zlib.crc32, not hash(): str hashing is salted per process
    # (PYTHONHASHSEED), which would make the same (profile, length, seed)
    # triple yield a different trace in every interpreter — breaking the
    # content-addressed result store and cross-process reproducibility.
    name_seed = zlib.crc32(profile.name.encode("utf-8"))
    rng = np.random.default_rng(np.random.SeedSequence([name_seed, length, seed]))
    transitions = np.asarray(profile.transitions)

    chunks: list[np.ndarray] = []
    produced = 0
    phase_i = profile.start_phase
    stream_cursor: dict[str, int] = {}
    idle_total = 0
    pending_idle = 0
    while produced < length:
        phase = profile.phases[phase_i]
        dwell = int(rng.geometric(1.0 / phase.mean_accesses))
        dwell = min(max(dwell, 1), length - produced)
        burst = _generate_phase_burst(phase, dwell, rng, stream_cursor)
        gaps = np.maximum(1, rng.poisson(phase.mean_gap, size=dwell)).astype(np.uint64)
        if pending_idle:
            gaps[0] += np.uint64(pending_idle)
            idle_total += pending_idle
            pending_idle = 0
        burst["tick"] = gaps  # converted to absolute ticks below
        chunks.append(burst)
        produced += dwell
        phase_i = int(rng.choice(len(profile.phases), p=transitions[phase_i]))
        # Interactive apps sleep between events; an idle period advances
        # the clock (leakage keeps burning, STT-RAM cells keep decaying)
        # without retiring instructions.
        if profile.idle_mean_ticks and rng.random() < profile.idle_prob:
            pending_idle = int(rng.exponential(profile.idle_mean_ticks))
            if profile.wake_phase is not None:
                phase_i = profile.wake_phase  # the wake interrupt handler

    records = np.concatenate(chunks)
    records["tick"] = np.cumsum(records["tick"]) - records["tick"][0]
    instructions = int(records["tick"][-1]) + 1 - idle_total
    return Trace(profile.name, records, max(instructions, length))

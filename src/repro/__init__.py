"""repro — energy-efficient user/kernel-partitioned L2 caches for mobile.

A trace-driven reproduction of *"Energy-efficient cache design in
emerging mobile platforms: the implications and optimizations"* (DATE
2015; TODAES 22(4) 2017 extension by Yan, Peng, Chen and Fu).

Layers (each is a subpackage with its own public surface):

* :mod:`repro.trace` — synthetic interactive-smartphone workloads with
  user/kernel privilege tags.
* :mod:`repro.cache` — set-associative cache simulator with partitioning,
  finite retention and way power-gating.
* :mod:`repro.energy` — SRAM / multi-retention STT-RAM energy models.
* :mod:`repro.timing` — in-order CPI + memory-stall execution model.
* :mod:`repro.core` — the paper's designs: static user/kernel partition,
  multi-retention STT-RAM assignment, dynamic partitioning.
* :mod:`repro.experiments` — one callable per figure/table.

Quickstart::

    from repro.experiments import fig8_energy_summary
    print(fig8_energy_summary(length=240_000).render())
"""

from repro.config import DEFAULT_PLATFORM, CacheGeometry, LatencyConfig, PlatformConfig
from repro.types import CACHE_BLOCK_SIZE, AccessKind, Privilege

__version__ = "1.1.0"

__all__ = [
    "DEFAULT_PLATFORM",
    "CacheGeometry",
    "LatencyConfig",
    "PlatformConfig",
    "CACHE_BLOCK_SIZE",
    "AccessKind",
    "Privilege",
    "__version__",
]

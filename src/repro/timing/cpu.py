"""In-order CPU timing model.

The paper reports performance loss of each cache design relative to the
SRAM baseline.  A full out-of-order model is unnecessary for an in-order
mobile core: execution time decomposes into a base CPI term plus memory
stall terms, which is the classic analytical model for such cores.

* Every L1 demand miss stalls for the L2 access latency (plus any extra
  read latency of the L2 technology).
* Every L2 demand miss additionally stalls for the DRAM latency.
* L2 write traffic (fills, write-backs, refreshes) occupies the L2 write
  port; long STT-RAM write pulses delay a fraction of subsequent demand
  reads.  We charge ``WRITE_CONTENTION_FACTOR`` of each extra write
  cycle, the standard buffered-write approximation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import PlatformConfig

__all__ = ["TimingResult", "compute_timing", "WRITE_CONTENTION_FACTOR"]

#: Fraction of each *extra* L2 write-pulse cycle that ends up stalling
#: the core (write buffers hide the rest).
WRITE_CONTENTION_FACTOR = 0.12


@dataclass(frozen=True)
class TimingResult:
    """Execution-time accounting of one design on one workload."""

    instructions: int
    base_cycles: float
    l2_access_stall_cycles: float
    dram_stall_cycles: float
    write_contention_cycles: float
    duration_ticks: int

    @property
    def stall_cycles(self) -> float:
        """All memory stall cycles."""
        return (
            self.l2_access_stall_cycles
            + self.dram_stall_cycles
            + self.write_contention_cycles
        )

    @property
    def busy_cycles(self) -> float:
        """Cycles the core is executing or stalled (excludes idle waits).

        This is the quantity performance loss is measured on — idle time
        between user interactions is not "performance"."""
        return self.base_cycles + self.stall_cycles

    @property
    def total_cycles(self) -> float:
        """Wall-clock cycles including inter-event idle time.

        Leakage energy burns for this long.  ``duration_ticks`` already
        contains one tick per instruction slot; the stall cycles and the
        above-1.0 share of the base CPI extend it.
        """
        return self.duration_ticks + (self.base_cycles - self.instructions) + self.stall_cycles

    @property
    def ipc(self) -> float:
        """Instructions per busy cycle."""
        return self.instructions / self.busy_cycles if self.busy_cycles else 0.0

    def perf_loss_vs(self, baseline: "TimingResult") -> float:
        """Relative slowdown of this design against ``baseline``."""
        if baseline.busy_cycles <= 0:
            raise ValueError("baseline busy cycles must be positive")
        return self.busy_cycles / baseline.busy_cycles - 1.0

    def seconds(self, platform: PlatformConfig) -> float:
        """Wall-clock duration at the platform clock."""
        return platform.seconds(self.total_cycles)

    def to_dict(self) -> dict:
        """Plain-data form for the result store."""
        return {
            "instructions": self.instructions,
            "base_cycles": self.base_cycles,
            "l2_access_stall_cycles": self.l2_access_stall_cycles,
            "dram_stall_cycles": self.dram_stall_cycles,
            "write_contention_cycles": self.write_contention_cycles,
            "duration_ticks": self.duration_ticks,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TimingResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            instructions=data["instructions"],
            base_cycles=data["base_cycles"],
            l2_access_stall_cycles=data["l2_access_stall_cycles"],
            dram_stall_cycles=data["dram_stall_cycles"],
            write_contention_cycles=data["write_contention_cycles"],
            duration_ticks=data["duration_ticks"],
        )


def compute_timing(
    platform: PlatformConfig,
    instructions: int,
    duration_ticks: int,
    l1_demand_misses: int,
    l2_demand_misses: int,
    l2_extra_read_cycles: float,
    l2_extra_write_cycles: float,
    l2_writes: int,
    dram_stall_override: float | None = None,
) -> TimingResult:
    """Assemble a :class:`TimingResult` from simulation counts.

    Args:
        platform: Latency and CPI parameters.
        instructions: Dynamic instruction count of the trace.
        duration_ticks: Trace tick span (instruction slots plus idle).
        l1_demand_misses: Demand misses of both L1s (each pays one L2
            round trip).
        l2_demand_misses: Demand misses of the L2 (each pays DRAM).
        l2_extra_read_cycles: Technology read-latency penalty per L2
            access (0 for SRAM).
        l2_extra_write_cycles: Technology write-pulse penalty per L2
            write (0 for SRAM).
        l2_writes: L2 array writes (fills + write hits + refreshes).
        dram_stall_override: Total DRAM stall cycles measured by a
            detailed DRAM model; replaces the flat
            ``l2_demand_misses * latency.dram`` term when given.
    """
    if instructions <= 0:
        raise ValueError(f"instructions must be positive, got {instructions}")
    if min(l1_demand_misses, l2_demand_misses, l2_writes) < 0:
        raise ValueError("event counts must be >= 0")
    lat = platform.latency
    base = instructions * platform.base_cpi
    l2_stall = l1_demand_misses * (lat.l2_hit + l2_extra_read_cycles)
    if dram_stall_override is not None:
        if dram_stall_override < 0:
            raise ValueError("dram_stall_override must be >= 0")
        dram_stall = dram_stall_override
    else:
        dram_stall = l2_demand_misses * lat.dram
    contention = l2_writes * l2_extra_write_cycles * WRITE_CONTENTION_FACTOR
    return TimingResult(
        instructions=instructions,
        base_cycles=base,
        l2_access_stall_cycles=float(l2_stall),
        dram_stall_cycles=float(dram_stall),
        write_contention_cycles=float(contention),
        duration_ticks=duration_ticks,
    )

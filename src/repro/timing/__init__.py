"""Timing substrate: the in-order CPI + memory-stall execution model."""

from repro.timing.cpu import WRITE_CONTENTION_FACTOR, TimingResult, compute_timing

__all__ = ["WRITE_CONTENTION_FACTOR", "TimingResult", "compute_timing"]

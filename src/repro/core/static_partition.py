"""Static user/kernel partitioning of the L2 (the paper's first technique).

The L2 is split into two way-partitions: a user segment reachable only
by user-privilege accesses and a kernel segment reachable only by kernel
accesses.  Removing cross-privilege interference lets the *combined*
size shrink well below the shared baseline at a similar miss rate —
that shrink, not the partition itself, is where the energy goes.

The class is technology-agnostic per segment, so it also implements the
paper's second technique (multi-retention STT-RAM segments): pass a
different :class:`~repro.energy.technology.MemoryTechnology` per side.
See :mod:`repro.core.multi_retention` for the canonical configuration.
"""

from __future__ import annotations

from repro.cache.hierarchy import L2Stream
from repro.cache.set_assoc import SetAssociativeCache
from repro.config import PlatformConfig
from repro.core.pipeline import FixedSegment, run_fixed_design
from repro.core.result import DesignResult
from repro.energy.technology import MemoryTechnology, sram
from repro.types import Privilege

__all__ = ["StaticPartitionDesign", "DEFAULT_USER_WAYS", "DEFAULT_KERNEL_WAYS"]

#: Default shrunk partition, chosen by :mod:`repro.core.search` over the
#: eight-app suite: 8 user ways + 4 kernel ways of a 1024-set array =
#: 512 KB + 256 KB, a 1024 KB -> 768 KB shrink at a similar miss rate.
#: (The shrink is deliberately modest — the bulk of the paper's static
#: energy saving comes from the multi-retention STT-RAM array, not from
#: capacity; see EXPERIMENTS.md.)
DEFAULT_USER_WAYS = 8
DEFAULT_KERNEL_WAYS = 4


class StaticPartitionDesign:
    """Statically partitioned L2 with per-segment technology.

    Args:
        user_ways: Way count of the user segment.
        kernel_ways: Way count of the kernel segment.
        user_tech: Array technology of the user segment.
        kernel_tech: Array technology of the kernel segment.
        refresh_mode: How finite-retention segments handle decay
            (``"invalidate"`` or ``"rewrite"``); ignored for segments
            whose technology has no retention limit.
        retention_distribution: ``"fixed"`` (hard window at the spec
            value) or ``"exponential"`` (thermally realistic lifetimes
            with the spec value as mean).
        policy: Replacement policy of both segments.
        name: Design label in results.
    """

    def __init__(
        self,
        user_ways: int = DEFAULT_USER_WAYS,
        kernel_ways: int = DEFAULT_KERNEL_WAYS,
        user_tech: MemoryTechnology | None = None,
        kernel_tech: MemoryTechnology | None = None,
        refresh_mode: str = "invalidate",
        retention_distribution: str = "fixed",
        policy: str = "lru",
        name: str = "static",
    ) -> None:
        if user_ways <= 0 or kernel_ways <= 0:
            raise ValueError("both segments need at least one way")
        self.user_ways = user_ways
        self.kernel_ways = kernel_ways
        self.user_tech = user_tech if user_tech is not None else sram()
        self.kernel_tech = kernel_tech if kernel_tech is not None else sram()
        self.refresh_mode = refresh_mode
        self.retention_distribution = retention_distribution
        self.policy = policy
        self.name = name

    def _segment(
        self, platform: PlatformConfig, ways: int, tech: MemoryTechnology, label: str
    ) -> SetAssociativeCache:
        geometry = platform.l2.with_ways(ways)
        retention = tech.retention_ticks(platform.clock_hz)
        return SetAssociativeCache(
            geometry,
            self.policy,
            retention_ticks=retention,
            refresh_mode="none" if retention is None else self.refresh_mode,
            retention_distribution=self.retention_distribution,
            name=f"l2-{label}",
        )

    def run(
        self, stream: L2Stream, platform: PlatformConfig, dram_model=None, prefetcher=None,
        engine: str = "auto",
    ) -> DesignResult:
        """Replay ``stream`` through the two privilege segments.

        ``dram_model`` optionally routes misses through a bank-level
        DRAM model (see :mod:`repro.dram`); ``prefetcher`` optionally
        adds an L2 prefetcher (see :mod:`repro.cache.prefetch`).
        ``engine`` picks the replay path (``"auto"``/``"fast"``/
        ``"reference"``, see :func:`~repro.core.pipeline.run_fixed_design`).
        """
        user = self._segment(platform, self.user_ways, self.user_tech, "user")
        kernel = self._segment(platform, self.kernel_ways, self.kernel_tech, "kernel")
        segments = [
            FixedSegment("user", user, self.user_tech),
            FixedSegment("kernel", kernel, self.kernel_tech),
        ]
        kernel_priv = int(Privilege.KERNEL)
        return run_fixed_design(
            self.name,
            stream,
            platform,
            segments,
            lambda priv: kernel if priv == kernel_priv else user,
            dram_model,
            prefetcher,
            engine,
        )

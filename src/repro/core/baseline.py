"""The baseline design: a shared SRAM L2.

This is the conventional mobile L2 the paper starts from — one array
serving user and kernel accesses alike, where the two streams interfere
freely.  Every other design is evaluated relative to it.
"""

from __future__ import annotations

from repro.cache.hierarchy import L2Stream
from repro.cache.set_assoc import SetAssociativeCache
from repro.config import CacheGeometry, PlatformConfig
from repro.core.pipeline import FixedSegment, run_fixed_design
from repro.core.result import DesignResult
from repro.energy.technology import MemoryTechnology, sram

__all__ = ["BaselineDesign"]


class BaselineDesign:
    """Shared (unpartitioned) L2 of the platform's full size.

    Args:
        geometry: L2 geometry; defaults to the platform L2 at run time.
        tech: Array technology (SRAM unless an ablation says otherwise).
        policy: Replacement policy name.
    """

    def __init__(
        self,
        geometry: CacheGeometry | None = None,
        tech: MemoryTechnology | None = None,
        policy: str = "lru",
        name: str = "baseline",
    ) -> None:
        self.geometry = geometry
        self.tech = tech if tech is not None else sram()
        self.policy = policy
        self.name = name
        if self.tech.retention is not None:
            raise ValueError(
                "BaselineDesign models retention-free storage; use a design "
                "with refresh handling for finite-retention STT-RAM"
            )

    def run(
        self, stream: L2Stream, platform: PlatformConfig, dram_model=None, prefetcher=None,
        engine: str = "auto",
    ) -> DesignResult:
        """Replay ``stream`` through the shared L2.

        ``dram_model`` optionally routes misses through a bank-level
        DRAM model (see :mod:`repro.dram`); ``prefetcher`` optionally
        adds an L2 prefetcher (see :mod:`repro.cache.prefetch`).
        ``engine`` picks the replay path (``"auto"``/``"fast"``/
        ``"reference"``, see :func:`~repro.core.pipeline.run_fixed_design`).
        """
        geometry = self.geometry if self.geometry is not None else platform.l2
        cache = SetAssociativeCache(geometry, self.policy, name="l2-shared")
        segment = FixedSegment("shared", cache, self.tech)
        return run_fixed_design(
            self.name, stream, platform, [segment], lambda priv: cache,
            dram_model, prefetcher, engine,
        )

"""Result containers shared by every L2 design."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.stats import CacheStats
from repro.energy.model import EnergyBreakdown
from repro.timing.cpu import TimingResult

__all__ = ["SegmentReport", "DesignResult"]


@dataclass(frozen=True)
class SegmentReport:
    """Post-simulation report of one cache segment.

    ``size_bytes`` is the provisioned capacity (the array that exists in
    silicon); ``byte_seconds`` integrates the *powered* capacity over
    time, which is smaller when the dynamic controller gates ways off.
    """

    name: str
    tech_name: str
    size_bytes: int
    byte_seconds: float
    stats: CacheStats
    energy: EnergyBreakdown


@dataclass(frozen=True)
class DesignResult:
    """Everything one design produced on one workload."""

    design: str
    app: str
    segments: tuple[SegmentReport, ...]
    timing: TimingResult
    dram_j: float
    extras: dict = field(default_factory=dict)

    @property
    def l2_stats(self) -> CacheStats:
        """Whole-L2 statistics (all segments merged)."""
        merged = CacheStats()
        for seg in self.segments:
            merged = merged.merge(seg.stats)
        return merged

    @property
    def l2_energy(self) -> EnergyBreakdown:
        """Whole-L2 energy (all segments summed)."""
        total = EnergyBreakdown.zero()
        for seg in self.segments:
            total = total + seg.energy
        return total

    @property
    def active_bytes(self) -> int:
        """Total provisioned L2 capacity of the design."""
        return sum(seg.size_bytes for seg in self.segments)

    def segment(self, name: str) -> SegmentReport:
        """Look up a segment report by name."""
        for seg in self.segments:
            if seg.name == name:
                return seg
        raise KeyError(f"design {self.design!r} has no segment {name!r}")

    def summary_row(self) -> str:
        """One-line human-readable summary."""
        stats = self.l2_stats
        return (
            f"{self.design:>14s} {self.app:>8s}: "
            f"mr={stats.demand_miss_rate:6.2%} "
            f"E={self.l2_energy.total_j * 1e6:8.1f} uJ "
            f"busy={self.timing.busy_cycles / 1e6:7.2f} Mcyc"
        )

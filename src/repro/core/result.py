"""Result containers shared by every L2 design."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.stats import CacheStats
from repro.energy.model import EnergyBreakdown
from repro.timing.cpu import TimingResult

__all__ = ["SegmentReport", "DesignResult"]


@dataclass(frozen=True)
class SegmentReport:
    """Post-simulation report of one cache segment.

    ``size_bytes`` is the provisioned capacity (the array that exists in
    silicon); ``byte_seconds`` integrates the *powered* capacity over
    time, which is smaller when the dynamic controller gates ways off.
    """

    name: str
    tech_name: str
    size_bytes: int
    byte_seconds: float
    stats: CacheStats
    energy: EnergyBreakdown

    def to_dict(self) -> dict:
        """Plain-data form for the result store."""
        return {
            "name": self.name,
            "tech_name": self.tech_name,
            "size_bytes": self.size_bytes,
            "byte_seconds": self.byte_seconds,
            "stats": self.stats.to_dict(),
            "energy": self.energy.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SegmentReport":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=data["name"],
            tech_name=data["tech_name"],
            size_bytes=data["size_bytes"],
            byte_seconds=data["byte_seconds"],
            stats=CacheStats.from_dict(data["stats"]),
            energy=EnergyBreakdown.from_dict(data["energy"]),
        )


@dataclass(frozen=True)
class DesignResult:
    """Everything one design produced on one workload."""

    design: str
    app: str
    segments: tuple[SegmentReport, ...]
    timing: TimingResult
    dram_j: float
    extras: dict = field(default_factory=dict)

    @property
    def l2_stats(self) -> CacheStats:
        """Whole-L2 statistics (all segments merged)."""
        merged = CacheStats()
        for seg in self.segments:
            merged = merged.merge(seg.stats)
        return merged

    @property
    def l2_energy(self) -> EnergyBreakdown:
        """Whole-L2 energy (all segments summed)."""
        total = EnergyBreakdown.zero()
        for seg in self.segments:
            total = total + seg.energy
        return total

    @property
    def active_bytes(self) -> int:
        """Total provisioned L2 capacity of the design."""
        return sum(seg.size_bytes for seg in self.segments)

    def segment(self, name: str) -> SegmentReport:
        """Look up a segment report by name."""
        for seg in self.segments:
            if seg.name == name:
                return seg
        raise KeyError(f"design {self.design!r} has no segment {name!r}")

    def to_dict(self) -> dict:
        """Plain-data form for the result store.

        ``extras`` must already be JSON-shaped (scalars, lists, dicts) —
        true for every canonical design.  Results carrying live objects
        (e.g. the banked DRAM model's stats) raise :class:`TypeError`
        and are simply not persistable.
        """
        import json

        try:
            extras = json.loads(json.dumps(self.extras, allow_nan=False))
        except (TypeError, ValueError) as exc:
            raise TypeError(
                f"result extras of {self.design!r} on {self.app!r} are not "
                f"JSON-serialisable: {exc}"
            ) from exc
        return {
            "design": self.design,
            "app": self.app,
            "segments": [seg.to_dict() for seg in self.segments],
            "timing": self.timing.to_dict(),
            "dram_j": self.dram_j,
            "extras": extras,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DesignResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            design=data["design"],
            app=data["app"],
            segments=tuple(SegmentReport.from_dict(seg) for seg in data["segments"]),
            timing=TimingResult.from_dict(data["timing"]),
            dram_j=data["dram_j"],
            extras=data["extras"],
        )

    def summary_row(self) -> str:
        """One-line human-readable summary."""
        stats = self.l2_stats
        return (
            f"{self.design:>14s} {self.app:>8s}: "
            f"mr={stats.demand_miss_rate:6.2%} "
            f"E={self.l2_energy.total_j * 1e6:8.1f} uJ "
            f"busy={self.timing.busy_cycles / 1e6:7.2f} Mcyc"
        )

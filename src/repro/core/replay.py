"""Shared L2-stream replay machinery for fixed-topology designs.

Both the shared baseline and the static partitioned designs are "fixed"
— their segment sizes never change during a run — so one replay routine
serves them.  The dynamic design has its own loop (epoch logic lives in
:mod:`repro.core.dynamic_partition`).
"""

from __future__ import annotations

from typing import Callable

from repro.cache.hierarchy import L2Stream
from repro.cache.prefetch import Prefetcher
from repro.cache.set_assoc import SetAssociativeCache
from repro.config import PlatformConfig
from repro.core.result import DesignResult, SegmentReport
from repro.dram.model import DRAMModel
from repro.energy.model import dram_energy_j, segment_energy
from repro.energy.technology import MemoryTechnology
from repro.timing.cpu import compute_timing

__all__ = ["FixedSegment", "run_fixed_design"]


class FixedSegment:
    """Pairing of a segment cache with its array technology."""

    def __init__(self, name: str, cache: SetAssociativeCache, tech: MemoryTechnology) -> None:
        self.name = name
        self.cache = cache
        self.tech = tech


def run_fixed_design(
    design_name: str,
    stream: L2Stream,
    platform: PlatformConfig,
    segments: list[FixedSegment],
    router: Callable[[int], SetAssociativeCache],
    dram_model: DRAMModel | None = None,
    prefetcher: Prefetcher | None = None,
    engine: str = "auto",
) -> DesignResult:
    """Replay ``stream`` through fixed segments and assemble the result.

    Args:
        design_name: Label recorded in the result.
        stream: L1-filtered L2 access stream.
        platform: Platform latencies/clock for timing and energy time.
        segments: All segments with their technologies.
        router: Maps an access privilege to the segment cache serving it.
        dram_model: Optional bank-level DRAM model.  When given, every
            L2 demand miss and every write-back to memory goes through
            it; measured latencies replace the platform's flat DRAM
            latency and its energy model replaces the flat per-transfer
            charge.
        prefetcher: Optional L2 prefetcher.  Demand misses train it;
            its proposals are installed as non-demand fills into the
            missing access's segment (so in a partitioned design a
            kernel miss can only pollute the kernel segment).
        engine: ``"auto"`` replays through the vectorized fast kernel
            (:mod:`repro.cache.fastsim`) when the whole design qualifies
            — LRU segments, no gating/drowsy, retention ``none`` or
            ``invalidate``, and neither a DRAM model nor a prefetcher
            (both need per-access interleaving) — falling back to the
            reference engine otherwise.  ``"fast"`` requires the kernel
            and raises when the design disqualifies; ``"reference"``
            forces the per-access engine.  The chosen path is recorded
            in ``DesignResult.extras["sim_engine"]``.
    """
    if engine not in ("auto", "fast", "reference"):
        raise ValueError(f"engine must be 'auto', 'fast' or 'reference', got {engine!r}")
    sim_engine = "reference"
    if engine != "reference" and dram_model is None and prefetcher is None:
        from repro.cache import fastsim

        if (engine == "fast" or fastsim.enabled()) and fastsim.try_run_fixed(
            stream, segments, router
        ):
            sim_engine = "fastsim"
    if engine == "fast" and sim_engine != "fastsim":
        raise ValueError(
            f"design {design_name!r} does not qualify for the fast kernel "
            "(needs LRU segments, retention 'none'/'invalidate', no DRAM "
            "model, no prefetcher)"
        )

    dram_read_stall = 0
    prefetch_issued = 0
    prefetch_useful = 0
    final_tick = stream.duration_ticks
    if sim_engine == "reference":
        ticks = stream.ticks.tolist()
        addrs = stream.addrs.tolist()
        privs = stream.privs.tolist()
        writes = stream.writes.tolist()
        demand = stream.demand.tolist()
        block_size = segments[0].cache.geometry.block_size
        block_mask = ~(block_size - 1)
        pending_prefetches: set[int] = set()
        for tick, addr, priv, is_write, is_demand in zip(ticks, addrs, privs, writes, demand):
            cache = router(priv)
            result = cache.access(addr, is_write, priv, tick, is_demand)
            if result.hit:
                if pending_prefetches and is_demand:
                    block = addr & block_mask
                    if block in pending_prefetches:
                        prefetch_useful += 1
                        pending_prefetches.discard(block)
                continue
            if is_demand and dram_model is not None:
                dram_read_stall += dram_model.access(addr, tick)
            if result.writeback and dram_model is not None:
                dram_model.access(result.victim_addr, tick, is_write=True)
            if is_demand and prefetcher is not None:
                for target in prefetcher.on_miss(addr):
                    pf = cache.access(target, False, priv, tick, demand=False)
                    prefetch_issued += 1
                    if not pf.hit:
                        pending_prefetches.add(target & block_mask)
                        if dram_model is not None:
                            dram_model.access(target, tick)
                        if pf.writeback and dram_model is not None:
                            dram_model.access(pf.victim_addr, tick, is_write=True)
        for seg in segments:
            seg.cache.finalize(final_tick)

    # Timing: weighted technology penalties across segments.
    total_demand = sum(seg.cache.stats.demand_accesses for seg in segments)
    if total_demand:
        extra_read = (
            sum(seg.cache.stats.demand_accesses * seg.tech.extra_read_cycles for seg in segments)
            / total_demand
        )
    else:
        extra_read = 0.0
    l2_writes = sum(seg.cache.stats.total_writes for seg in segments)
    if l2_writes:
        extra_write = (
            sum(seg.cache.stats.total_writes * seg.tech.extra_write_cycles for seg in segments)
            / l2_writes
        )
    else:
        extra_write = 0.0
    merged_demand_misses = sum(seg.cache.stats.demand_misses for seg in segments)
    timing = compute_timing(
        platform,
        instructions=stream.instructions,
        duration_ticks=stream.duration_ticks,
        l1_demand_misses=stream.l1_demand_misses,
        l2_demand_misses=merged_demand_misses,
        l2_extra_read_cycles=extra_read,
        l2_extra_write_cycles=extra_write,
        l2_writes=l2_writes,
        dram_stall_override=float(dram_read_stall) if dram_model is not None else None,
    )

    seconds = timing.seconds(platform)
    reports = []
    for seg in segments:
        size = seg.cache.size_bytes
        reports.append(
            SegmentReport(
                name=seg.name,
                tech_name=seg.tech.name,
                size_bytes=size,
                byte_seconds=size * seconds,
                stats=seg.cache.stats,
                energy=segment_energy(seg.cache.stats, seg.tech, size, size * seconds),
            )
        )
    dram_reads = merged_demand_misses
    dram_writes = sum(
        seg.cache.stats.writebacks + seg.cache.stats.expiry_writebacks for seg in segments
    )
    if dram_model is not None:
        dram_j = dram_model.energy_j(platform.seconds(timing.busy_cycles))
        extras = {"dram_stats": dram_model.stats}
    else:
        dram_j = dram_energy_j(dram_reads, dram_writes)
        extras = {}
    if prefetcher is not None:
        extras["prefetch_issued"] = prefetch_issued
        extras["prefetch_useful"] = prefetch_useful
    extras["sim_engine"] = sim_engine
    return DesignResult(
        design=design_name,
        app=stream.name,
        segments=tuple(reports),
        timing=timing,
        dram_j=dram_j,
        extras=extras,
    )

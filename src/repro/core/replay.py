"""Backwards-compatible aliases for the shared execution pipeline.

The fixed-design replay entry points historically lived here; the logic
now sits in :mod:`repro.core.pipeline` (shared by *all* designs, fixed
and adaptive alike).  Import from the pipeline in new code.
"""

from __future__ import annotations

from repro.core.pipeline import FixedSegment, run_fixed_design

__all__ = ["FixedSegment", "run_fixed_design"]

"""Hybrid SRAM/STT-RAM partitioned L2 (extension: the literature's rival).

Before multi-retention STT-RAM, the standard answer to STT's expensive
writes was a *hybrid* cache (Sun et al., HPCA 2009 lineage): a few SRAM
ways absorb the write-intensive traffic while STT-RAM ways carry the
read-mostly capacity.  This design combines that idea with the paper's
user/kernel partition: each privilege segment is a hybrid pair, with

* **write-back traffic** (dirty data evicted from the L1D — the L2's
  write-intensive stream) allocated into the segment's SRAM part, and
* **demand fills** (read-mostly) allocated into the STT part.

An access is routed to whichever part currently holds the block, so no
block is ever duplicated.  Comparing this against the multi-retention
design shows which lever pays more on these workloads: segregating
writes into SRAM, or cheapening every STT write via relaxed retention.
"""

from __future__ import annotations

from repro.cache.hierarchy import L2Stream
from repro.cache.set_assoc import SetAssociativeCache
from repro.config import PlatformConfig
from repro.core.pipeline import ReplaySession, ResultAssembler, SegmentOutcome
from repro.core.result import DesignResult
from repro.energy.technology import MemoryTechnology, sram, stt_ram
from repro.types import Privilege

__all__ = ["HybridPartitionDesign"]


class _HybridSegment:
    """One privilege side: an SRAM write part plus an STT capacity part."""

    def __init__(
        self,
        label: str,
        platform: PlatformConfig,
        sram_ways: int,
        stt_ways: int,
        sram_tech: MemoryTechnology,
        stt_tech: MemoryTechnology,
        policy: str,
    ) -> None:
        retention = stt_tech.retention_ticks(platform.clock_hz)
        self.label = label
        self.sram_tech = sram_tech
        self.stt_tech = stt_tech
        self.sram = SetAssociativeCache(
            platform.l2.with_ways(sram_ways), policy, name=f"l2-{label}-sram"
        )
        self.stt = SetAssociativeCache(
            platform.l2.with_ways(stt_ways),
            policy,
            retention_ticks=retention,
            refresh_mode="none" if retention is None else "invalidate",
            name=f"l2-{label}-stt",
        )
        self._block_mask = ~(platform.l2.block_size - 1)
        self.migrate_threshold = 2
        self._write_counts: dict[int, int] = {}
        self.migrations = 0

    def access(self, addr: int, is_write: bool, priv: int, tick: int, demand: bool):
        """Route to the part holding the block, else to the fill target.

        A write that finds its block in the STT part *migrates* it to
        the SRAM part (write-hit migration — the defining move of hybrid
        caches): the STT copy is read out and invalidated, and the write
        lands in SRAM.  The read and the SRAM fill are charged to their
        respective parts.
        """
        if self.sram.contains(addr):
            return self.sram.access(addr, is_write, priv, tick, demand)
        if self.stt.contains(addr):
            if not is_write:
                return self.stt.access(addr, is_write, priv, tick, demand)
            # count writes per block; only write-*intensive* blocks earn
            # migration — migrating on the first write thrashes the small
            # SRAM part with blocks written once and read forever after
            block = addr & self._block_mask
            count = self._write_counts.get(block, 0) + 1
            if count < self.migrate_threshold:
                self._write_counts[block] = count
                if len(self._write_counts) > 8192:
                    self._write_counts.pop(next(iter(self._write_counts)))
                return self.stt.access(addr, is_write, priv, tick, demand)
            self._write_counts.pop(block, None)
            read = self.stt.access(addr, False, priv, tick, demand=False)
            if read.hit:  # may have expired between contains() and here
                self.stt.invalidate(addr, tick)
            self.migrations += 1
            return self.sram.access(addr, True, priv, tick, demand)
        # absent everywhere: write-backs allocate in SRAM, fills in STT
        target = self.sram if is_write else self.stt
        return target.access(addr, is_write, priv, tick, demand)

    def parts(self):
        """(name, cache, tech) triples for reporting."""
        return (
            (f"{self.label}-sram", self.sram, self.sram_tech),
            (f"{self.label}-stt", self.stt, self.stt_tech),
        )


class HybridPartitionDesign:
    """User/kernel partition whose segments are SRAM+STT hybrids.

    Args:
        user_sram_ways/user_stt_ways: The user segment's split (default
            1 SRAM + 7 STT ways = the canonical 512 KB).
        kernel_sram_ways/kernel_stt_ways: The kernel segment's split
            (default 1 + 3 = 256 KB).
        stt_retention: Retention class of both STT parts.
    """

    def __init__(
        self,
        user_sram_ways: int = 1,
        user_stt_ways: int = 7,
        kernel_sram_ways: int = 1,
        kernel_stt_ways: int = 3,
        stt_retention: str = "medium",
        policy: str = "lru",
        name: str = "hybrid",
    ) -> None:
        for ways in (user_sram_ways, user_stt_ways, kernel_sram_ways, kernel_stt_ways):
            if ways <= 0:
                raise ValueError("every hybrid part needs at least one way")
        self.user_split = (user_sram_ways, user_stt_ways)
        self.kernel_split = (kernel_sram_ways, kernel_stt_ways)
        self.stt_retention = stt_retention
        self.policy = policy
        self.name = name

    def run(
        self, stream: L2Stream, platform: PlatformConfig, engine: str = "auto"
    ) -> DesignResult:
        """Replay ``stream`` through the two hybrid segments.

        ``engine`` follows the shared contract (see
        :func:`~repro.core.pipeline.run_fixed_design`); block migration
        between parts has no vectorized path, so ``"fast"`` raises and
        ``"auto"`` always replays through the reference engine.
        """
        session = ReplaySession(self.name, stream, engine)
        session.dispatch_fast(
            False, None, "cross-part block migration needs the per-access engine"
        )
        sram_tech = sram()
        stt_tech = stt_ram(self.stt_retention)
        user = _HybridSegment("user", platform, *self.user_split,
                              sram_tech, stt_tech, self.policy)
        kernel = _HybridSegment("kernel", platform, *self.kernel_split,
                                sram_tech, stt_tech, self.policy)
        kernel_priv = int(Privilege.KERNEL)
        session.replay_routed(lambda priv: kernel if priv == kernel_priv else user)

        parts = list(user.parts()) + list(kernel.parts())
        for _, cache, _ in parts:
            cache.finalize(stream.duration_ticks)

        assembler = ResultAssembler(session, platform)
        assembler.weigh_timing([(cache.stats, tech) for _, cache, tech in parts])
        return assembler.finish(
            [
                SegmentOutcome(part_name, tech, cache.stats, cache.size_bytes)
                for part_name, cache, tech in parts
            ],
            extras={"migrations": user.migrations + kernel.migrations},
        )

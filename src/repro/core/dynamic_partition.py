"""Dynamic user/kernel partitioning (the paper's third technique).

The static shrink fixes one size for the whole run, but demand on the
two segments varies: syscall storms need kernel capacity, rendering
bursts need user capacity, and during inter-event idle both needs drop
to nothing.  The dynamic design resizes each segment at epoch
granularity and power-gates the unused ways, paying leakage only for
capacity that is earning hits.

Controller per epoch and per segment (classic utility feedback):

* an idle segment (almost no accesses) donates ways — this is where the
  design beats the static one, because interactive workloads are idle
  most of the wall-clock time;
* a thrashing segment (high demand miss rate *and* hits spread into its
  last way) grows back one way at a time up to its cap;
* a segment whose last (LRU-most) way earns almost no hits shrinks — the
  way is dead weight.

Short-retention STT-RAM integrates naturally: blocks gated off are lost
anyway, and the short write pulse keeps the resize/refill traffic cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.hierarchy import L2Stream
from repro.cache.replacement import LRUPolicy
from repro.cache.set_assoc import SetAssociativeCache
from repro.config import PlatformConfig
from repro.core.pipeline import ReplaySession, ResultAssembler, SegmentOutcome
from repro.core.result import DesignResult
from repro.energy.technology import MemoryTechnology, stt_ram
from repro.types import Privilege

__all__ = ["DynamicControllerConfig", "DynamicPartitionDesign"]


@dataclass(frozen=True)
class DynamicControllerConfig:
    """Tuning of the epoch-based resize controller."""

    epoch_ticks: int = 25_000
    min_ways: int = 1
    max_user_ways: int = 10
    max_kernel_ways: int = 6
    start_user_ways: int = 8
    start_kernel_ways: int = 4
    idle_accesses: int = 24
    decision_accesses: int = 300
    grow_miss_rate: float = 0.22
    grow_step: int = 3
    grow_deep_util: float = 0.004
    shrink_miss_rate: float = 0.12
    shrink_last_way_util: float = 0.002

    def __post_init__(self) -> None:
        if self.epoch_ticks <= 0:
            raise ValueError("epoch_ticks must be positive")
        if not (1 <= self.min_ways <= self.start_user_ways <= self.max_user_ways):
            raise ValueError("need min_ways <= start_user_ways <= max_user_ways")
        if not (1 <= self.min_ways <= self.start_kernel_ways <= self.max_kernel_ways):
            raise ValueError("need min_ways <= start_kernel_ways <= max_kernel_ways")
        if not 0.0 <= self.shrink_miss_rate <= self.grow_miss_rate <= 1.0:
            raise ValueError(
                "need 0 <= shrink_miss_rate <= grow_miss_rate <= 1 "
                "(the gap is the controller's hysteresis band)"
            )
        if self.grow_step < 1:
            raise ValueError("grow_step must be >= 1")


class _Segment:
    """Run-time state of one dynamically sized segment."""

    def __init__(
        self,
        name: str,
        cache: SetAssociativeCache,
        tech: MemoryTechnology,
        max_ways: int,
        block_bytes_per_way: int,
    ) -> None:
        self.name = name
        self.cache = cache
        self.tech = tech
        self.max_ways = max_ways
        self.bytes_per_way = block_bytes_per_way
        self.byte_ticks = 0
        self.last_integral_tick = 0
        self.resizes = 0
        self.busy_ways = cache.powered_ways

    def wake(self, tick: int) -> None:
        """Restore the pre-idle way count on the first access after a
        gated period (wake-on-demand; power-up latency is negligible
        against the idle spans being bridged)."""
        if self.cache.powered_ways < self.busy_ways:
            self.integrate_to(tick)
            self.cache.set_powered_ways(self.busy_ways, tick)
            self.resizes += 1

    def integrate_to(self, tick: int) -> None:
        """Accumulate powered-capacity x time up to ``tick``."""
        if tick > self.last_integral_tick:
            self.byte_ticks += (tick - self.last_integral_tick) * self.cache.powered_bytes
            self.last_integral_tick = tick


class DynamicPartitionDesign:
    """Dynamically partitioned L2 with power-gated ways.

    Args:
        config: Controller tuning.
        user_tech/kernel_tech: Array technologies (default: both
            short-retention STT-RAM, the paper's maximal-savings point).
        refresh_mode: Decay handling for finite-retention technologies.
        policy: Replacement policy (LRU recommended: the controller
            reads LRU-rank utilities; with other policies it falls back
            to miss-rate-only control).
    """

    def __init__(
        self,
        config: DynamicControllerConfig | None = None,
        user_tech: MemoryTechnology | None = None,
        kernel_tech: MemoryTechnology | None = None,
        refresh_mode: str = "invalidate",
        policy: str = "lru",
        name: str = "dynamic-stt",
    ) -> None:
        self.config = config if config is not None else DynamicControllerConfig()
        self.user_tech = user_tech if user_tech is not None else stt_ram("short")
        self.kernel_tech = kernel_tech if kernel_tech is not None else stt_ram("short")
        self.refresh_mode = refresh_mode
        self.policy = policy
        self.name = name

    def _make_segment(
        self, platform: PlatformConfig, label: str, start_ways: int, max_ways: int,
        tech: MemoryTechnology,
    ) -> _Segment:
        geometry = platform.l2.with_ways(max_ways)
        retention = tech.retention_ticks(platform.clock_hz)
        cache = SetAssociativeCache(
            geometry,
            self.policy,
            retention_ticks=retention,
            refresh_mode="none" if retention is None else self.refresh_mode,
            retains_when_gated=tech.non_volatile,
            name=f"l2-{label}",
        )
        cache.set_powered_ways(start_ways, 0)
        bytes_per_way = geometry.num_sets * geometry.block_size
        return _Segment(label, cache, tech, max_ways, bytes_per_way)

    def _controller_step(self, seg: _Segment, tick: int) -> None:
        """Apply one epoch decision to ``seg`` at ``tick``."""
        cfg = self.config
        cache = seg.cache
        accesses = cache.epoch_accesses
        ways = cache.powered_ways
        target = ways
        if accesses < cfg.idle_accesses:
            # The segment is idle (the app sleeps between interactions):
            # gate everything except the minimum.  The non-volatile array
            # retains contents, and the first access after the idle wakes
            # the segment back to ``busy_ways`` (see ``_Segment.wake``).
            target = cfg.min_ways
        elif accesses < cfg.decision_accesses:
            # Too few samples for a trustworthy miss-rate estimate: hold
            # (deciding on noise walks busy_ways away from the demand).
            target = seg.busy_ways
        else:
            mr = cache.epoch_misses / accesses
            last_util = (
                cache.epoch_rank_hits[ways - 1] / accesses if ways >= 1 else 0.0
            )
            # deep utility: hits in the LRU-most half of the ways.  High
            # miss rate alone is not a reason to grow — pure streaming
            # misses at any size; growth needs evidence that deeper ways
            # would catch reuse.
            deep_util = sum(cache.epoch_rank_hits[ways // 2:ways]) / accesses
            if mr > cfg.grow_miss_rate and deep_util > cfg.grow_deep_util:
                target = min(seg.max_ways, ways + cfg.grow_step)
            elif mr < cfg.shrink_miss_rate and last_util < cfg.shrink_last_way_util:
                target = max(cfg.min_ways, ways - 1)
            seg.busy_ways = target
        if target != ways:
            seg.integrate_to(tick)
            cache.set_powered_ways(target, tick)
            seg.resizes += 1
        cache.begin_epoch()

    def _fast_qualifies(self) -> bool:
        """Cheap preconditions for the epoch-chunked fast kernel."""
        if isinstance(self.policy, str):
            if self.policy != "lru":
                return False
        elif type(self.policy) is not LRUPolicy:
            return False
        return all(
            tech.retention is None or self.refresh_mode == "invalidate"
            for tech in (self.user_tech, self.kernel_tech)
        )

    def _make_fast_segment(
        self, fastsim, platform: PlatformConfig, label: str, start_ways: int,
        max_ways: int, tech: MemoryTechnology,
    ) -> _Segment:
        """Mirror of :meth:`_make_segment` over the epoch-chunked kernel."""
        geometry = platform.l2.with_ways(max_ways)
        retention = tech.retention_ticks(platform.clock_hz)
        cache = fastsim.EpochReplaySegment(
            geometry,
            retention_ticks=retention,
            refresh_mode="none" if retention is None else self.refresh_mode,
            retains_when_gated=tech.non_volatile,
            min_rank_accesses=self.config.decision_accesses,
            name=f"l2-{label}",
        )
        cache.set_powered_ways(start_ways, 0)
        bytes_per_way = geometry.num_sets * geometry.block_size
        return _Segment(label, cache, tech, max_ways, bytes_per_way)

    def _run_fast(self, fastsim, stream: L2Stream, platform: PlatformConfig, out: list) -> bool:
        """Epoch-chunked replay through the vectorized kernel.

        Chunk ``k`` holds the accesses the reference loop replays between
        controller boundaries ``k*epoch_ticks`` and ``(k+1)*epoch_ticks``
        — the running tick maximum decides the boundary crossings, so a
        non-monotonic trace chunks exactly like the reference's lazy
        ``while tick >= next_epoch`` stepping.  Both segments share the
        boundaries; each replays its own rows chunk by chunk, with
        controller steps (and timeline samples) in between and
        wake-on-first-access applied before a chunk replays.
        """
        cfg = self.config
        user = self._make_fast_segment(
            fastsim, platform, "user", cfg.start_user_ways, cfg.max_user_ways, self.user_tech
        )
        kernel = self._make_fast_segment(
            fastsim, platform, "kernel", cfg.start_kernel_ways, cfg.max_kernel_ways,
            self.kernel_tech,
        )
        segments = [user, kernel]
        timeline_ticks: list[int] = [0]
        timeline_user: list[int] = [user.cache.powered_ways]
        timeline_kernel: list[int] = [kernel.cache.powered_ways]
        if len(stream.ticks):
            epoch_idx = np.maximum.accumulate(stream.ticks) // cfg.epoch_ticks
            n_chunks = int(epoch_idx[-1]) + 1
            kernel_rows = stream.privs == np.uint8(Privilege.KERNEL)
            for seg, rows in ((user, ~kernel_rows), (kernel, kernel_rows)):
                seg.cache.load(
                    stream.ticks[rows], stream.addrs[rows], stream.privs[rows],
                    stream.writes[rows], stream.demand[rows], epoch_idx[rows], n_chunks,
                )
            for k in range(n_chunks):
                if k:
                    boundary = k * cfg.epoch_ticks
                    for seg in segments:
                        self._controller_step(seg, boundary)
                    timeline_ticks.append(boundary)
                    timeline_user.append(user.cache.powered_ways)
                    timeline_kernel.append(kernel.cache.powered_ways)
                for seg in segments:
                    first_tick = seg.cache.chunk_first_tick(k)
                    if first_tick is not None:
                        seg.wake(first_tick)
                        seg.cache.replay_chunk(k)
        out.append((user, kernel, timeline_ticks, timeline_user, timeline_kernel))
        return True

    def run(
        self, stream: L2Stream, platform: PlatformConfig, engine: str = "auto"
    ) -> DesignResult:
        """Replay ``stream`` with epoch-based repartitioning.

        ``engine`` picks the replay path under the shared contract
        (``"auto"``/``"fast"``/``"reference"``, see
        :func:`~repro.core.pipeline.run_fixed_design`): the design
        qualifies for the vectorized epoch-chunked kernel when its
        replacement policy is true LRU and every segment technology is
        retention-free or handled with fixed-window ``invalidate``.
        """
        cfg = self.config
        session = ReplaySession(self.name, stream, engine)
        fast_out: list = []
        ran_fast = session.dispatch_fast(
            self._fast_qualifies(),
            lambda fastsim: self._run_fast(fastsim, stream, platform, fast_out),
            "needs LRU replacement and retention 'none'/'invalidate' with "
            "the fixed-window model",
        )
        if ran_fast:
            user, kernel, timeline_ticks, timeline_user, timeline_kernel = fast_out[0]
            segments = [user, kernel]
        else:
            user = self._make_segment(
                platform, "user", cfg.start_user_ways, cfg.max_user_ways, self.user_tech
            )
            kernel = self._make_segment(
                platform, "kernel", cfg.start_kernel_ways, cfg.max_kernel_ways, self.kernel_tech
            )
            segments = [user, kernel]
            kernel_priv = int(Privilege.KERNEL)

            timeline_ticks = [0]
            timeline_user = [user.cache.powered_ways]
            timeline_kernel = [kernel.cache.powered_ways]

            def on_boundary(tick: int) -> None:
                for seg in segments:
                    self._controller_step(seg, tick)
                timeline_ticks.append(tick)
                timeline_user.append(user.cache.powered_ways)
                timeline_kernel.append(kernel.cache.powered_ways)

            session.replay_epochs(
                lambda priv: kernel if priv == kernel_priv else user,
                cfg.epoch_ticks,
                on_boundary,
            )

        final_tick = stream.duration_ticks
        for seg in segments:
            seg.integrate_to(final_tick)
            seg.cache.finalize(final_tick)

        assembler = ResultAssembler(session, platform)
        assembler.weigh_timing([(seg.cache.stats, seg.tech) for seg in segments])
        # Leakage integrates over wall-clock time; the byte-tick integral
        # covers trace ticks, so it is scaled by the stall/CPI dilation.
        # Per-access energy scales with the powered array a lookup
        # actually touches: the time-weighted mean powered size (never
        # below one way), not the provisioned maximum.
        outcomes = [
            SegmentOutcome(
                name=seg.name,
                tech=seg.tech,
                stats=seg.cache.stats,
                size_bytes=seg.max_ways * seg.bytes_per_way,
                byte_seconds=seg.byte_ticks * assembler.dilation / platform.clock_hz,
                energy_size_bytes=max(
                    seg.bytes_per_way, seg.byte_ticks // max(1, stream.duration_ticks)
                ),
            )
            for seg in segments
        ]
        return assembler.finish(
            outcomes,
            extras={
                "timeline_ticks": timeline_ticks,
                "timeline_user_ways": timeline_user,
                "timeline_kernel_ways": timeline_kernel,
                "user_resizes": user.resizes,
                "kernel_resizes": kernel.resizes,
                "user_byte_ticks": user.byte_ticks,
                "kernel_byte_ticks": kernel.byte_ticks,
            },
        )

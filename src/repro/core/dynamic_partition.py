"""Dynamic user/kernel partitioning (the paper's third technique).

The static shrink fixes one size for the whole run, but demand on the
two segments varies: syscall storms need kernel capacity, rendering
bursts need user capacity, and during inter-event idle both needs drop
to nothing.  The dynamic design resizes each segment at epoch
granularity and power-gates the unused ways, paying leakage only for
capacity that is earning hits.

Controller per epoch and per segment (classic utility feedback):

* an idle segment (almost no accesses) donates ways — this is where the
  design beats the static one, because interactive workloads are idle
  most of the wall-clock time;
* a thrashing segment (high demand miss rate *and* hits spread into its
  last way) grows back one way at a time up to its cap;
* a segment whose last (LRU-most) way earns almost no hits shrinks — the
  way is dead weight.

Short-retention STT-RAM integrates naturally: blocks gated off are lost
anyway, and the short write pulse keeps the resize/refill traffic cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.hierarchy import L2Stream
from repro.cache.set_assoc import SetAssociativeCache
from repro.config import PlatformConfig
from repro.core.result import DesignResult, SegmentReport
from repro.energy.model import dram_energy_j, segment_energy
from repro.energy.technology import MemoryTechnology, stt_ram
from repro.timing.cpu import compute_timing
from repro.types import Privilege

__all__ = ["DynamicControllerConfig", "DynamicPartitionDesign"]


@dataclass(frozen=True)
class DynamicControllerConfig:
    """Tuning of the epoch-based resize controller."""

    epoch_ticks: int = 25_000
    min_ways: int = 1
    max_user_ways: int = 10
    max_kernel_ways: int = 6
    start_user_ways: int = 8
    start_kernel_ways: int = 4
    idle_accesses: int = 24
    decision_accesses: int = 300
    grow_miss_rate: float = 0.22
    grow_step: int = 3
    grow_deep_util: float = 0.004
    shrink_miss_rate: float = 0.12
    shrink_last_way_util: float = 0.002

    def __post_init__(self) -> None:
        if self.epoch_ticks <= 0:
            raise ValueError("epoch_ticks must be positive")
        if not (1 <= self.min_ways <= self.start_user_ways <= self.max_user_ways):
            raise ValueError("need min_ways <= start_user_ways <= max_user_ways")
        if not (1 <= self.min_ways <= self.start_kernel_ways <= self.max_kernel_ways):
            raise ValueError("need min_ways <= start_kernel_ways <= max_kernel_ways")
        if not 0.0 <= self.shrink_miss_rate <= self.grow_miss_rate <= 1.0:
            raise ValueError(
                "need 0 <= shrink_miss_rate <= grow_miss_rate <= 1 "
                "(the gap is the controller's hysteresis band)"
            )
        if self.grow_step < 1:
            raise ValueError("grow_step must be >= 1")


class _Segment:
    """Run-time state of one dynamically sized segment."""

    def __init__(
        self,
        name: str,
        cache: SetAssociativeCache,
        tech: MemoryTechnology,
        max_ways: int,
        block_bytes_per_way: int,
    ) -> None:
        self.name = name
        self.cache = cache
        self.tech = tech
        self.max_ways = max_ways
        self.bytes_per_way = block_bytes_per_way
        self.byte_ticks = 0
        self.last_integral_tick = 0
        self.resizes = 0
        self.busy_ways = cache.powered_ways

    def wake(self, tick: int) -> None:
        """Restore the pre-idle way count on the first access after a
        gated period (wake-on-demand; power-up latency is negligible
        against the idle spans being bridged)."""
        if self.cache.powered_ways < self.busy_ways:
            self.integrate_to(tick)
            self.cache.set_powered_ways(self.busy_ways, tick)
            self.resizes += 1

    def integrate_to(self, tick: int) -> None:
        """Accumulate powered-capacity x time up to ``tick``."""
        if tick > self.last_integral_tick:
            self.byte_ticks += (tick - self.last_integral_tick) * self.cache.powered_bytes
            self.last_integral_tick = tick


class DynamicPartitionDesign:
    """Dynamically partitioned L2 with power-gated ways.

    Args:
        config: Controller tuning.
        user_tech/kernel_tech: Array technologies (default: both
            short-retention STT-RAM, the paper's maximal-savings point).
        refresh_mode: Decay handling for finite-retention technologies.
        policy: Replacement policy (LRU recommended: the controller
            reads LRU-rank utilities; with other policies it falls back
            to miss-rate-only control).
    """

    def __init__(
        self,
        config: DynamicControllerConfig | None = None,
        user_tech: MemoryTechnology | None = None,
        kernel_tech: MemoryTechnology | None = None,
        refresh_mode: str = "invalidate",
        policy: str = "lru",
        name: str = "dynamic-stt",
    ) -> None:
        self.config = config if config is not None else DynamicControllerConfig()
        self.user_tech = user_tech if user_tech is not None else stt_ram("short")
        self.kernel_tech = kernel_tech if kernel_tech is not None else stt_ram("short")
        self.refresh_mode = refresh_mode
        self.policy = policy
        self.name = name

    def _make_segment(
        self, platform: PlatformConfig, label: str, start_ways: int, max_ways: int,
        tech: MemoryTechnology,
    ) -> _Segment:
        geometry = platform.l2.with_ways(max_ways)
        retention = tech.retention_ticks(platform.clock_hz)
        cache = SetAssociativeCache(
            geometry,
            self.policy,
            retention_ticks=retention,
            refresh_mode="none" if retention is None else self.refresh_mode,
            retains_when_gated=tech.non_volatile,
            name=f"l2-{label}",
        )
        cache.set_powered_ways(start_ways, 0)
        bytes_per_way = geometry.num_sets * geometry.block_size
        return _Segment(label, cache, tech, max_ways, bytes_per_way)

    def _controller_step(self, seg: _Segment, tick: int) -> None:
        """Apply one epoch decision to ``seg`` at ``tick``."""
        cfg = self.config
        cache = seg.cache
        accesses = cache.epoch_accesses
        ways = cache.powered_ways
        target = ways
        if accesses < cfg.idle_accesses:
            # The segment is idle (the app sleeps between interactions):
            # gate everything except the minimum.  The non-volatile array
            # retains contents, and the first access after the idle wakes
            # the segment back to ``busy_ways`` (see ``_Segment.wake``).
            target = cfg.min_ways
        elif accesses < cfg.decision_accesses:
            # Too few samples for a trustworthy miss-rate estimate: hold
            # (deciding on noise walks busy_ways away from the demand).
            target = seg.busy_ways
        else:
            mr = cache.epoch_misses / accesses
            last_util = (
                cache.epoch_rank_hits[ways - 1] / accesses if ways >= 1 else 0.0
            )
            # deep utility: hits in the LRU-most half of the ways.  High
            # miss rate alone is not a reason to grow — pure streaming
            # misses at any size; growth needs evidence that deeper ways
            # would catch reuse.
            deep_util = sum(cache.epoch_rank_hits[ways // 2:ways]) / accesses
            if mr > cfg.grow_miss_rate and deep_util > cfg.grow_deep_util:
                target = min(seg.max_ways, ways + cfg.grow_step)
            elif mr < cfg.shrink_miss_rate and last_util < cfg.shrink_last_way_util:
                target = max(cfg.min_ways, ways - 1)
            seg.busy_ways = target
        if target != ways:
            seg.integrate_to(tick)
            cache.set_powered_ways(target, tick)
            seg.resizes += 1
        cache.begin_epoch()

    def run(self, stream: L2Stream, platform: PlatformConfig) -> DesignResult:
        """Replay ``stream`` with epoch-based repartitioning."""
        cfg = self.config
        user = self._make_segment(
            platform, "user", cfg.start_user_ways, cfg.max_user_ways, self.user_tech
        )
        kernel = self._make_segment(
            platform, "kernel", cfg.start_kernel_ways, cfg.max_kernel_ways, self.kernel_tech
        )
        segments = [user, kernel]
        kernel_priv = int(Privilege.KERNEL)

        timeline_ticks: list[int] = [0]
        timeline_user: list[int] = [user.cache.powered_ways]
        timeline_kernel: list[int] = [kernel.cache.powered_ways]

        next_epoch = cfg.epoch_ticks
        ticks = stream.ticks.tolist()
        addrs = stream.addrs.tolist()
        privs = stream.privs.tolist()
        writes = stream.writes.tolist()
        demand = stream.demand.tolist()
        for tick, addr, priv, is_write, is_demand in zip(ticks, addrs, privs, writes, demand):
            while tick >= next_epoch:
                for seg in segments:
                    self._controller_step(seg, next_epoch)
                timeline_ticks.append(next_epoch)
                timeline_user.append(user.cache.powered_ways)
                timeline_kernel.append(kernel.cache.powered_ways)
                next_epoch += cfg.epoch_ticks
            seg = kernel if priv == kernel_priv else user
            seg.wake(tick)
            seg.cache.access(addr, is_write, priv, tick, is_demand)

        final_tick = stream.duration_ticks
        for seg in segments:
            seg.integrate_to(final_tick)
            seg.cache.finalize(final_tick)

        total_demand = sum(s.cache.stats.demand_accesses for s in segments)
        extra_read = (
            sum(s.cache.stats.demand_accesses * s.tech.extra_read_cycles for s in segments)
            / total_demand
            if total_demand
            else 0.0
        )
        l2_writes = sum(s.cache.stats.total_writes for s in segments)
        extra_write = (
            sum(s.cache.stats.total_writes * s.tech.extra_write_cycles for s in segments)
            / l2_writes
            if l2_writes
            else 0.0
        )
        demand_misses = sum(s.cache.stats.demand_misses for s in segments)
        timing = compute_timing(
            platform,
            instructions=stream.instructions,
            duration_ticks=stream.duration_ticks,
            l1_demand_misses=stream.l1_demand_misses,
            l2_demand_misses=demand_misses,
            l2_extra_read_cycles=extra_read,
            l2_extra_write_cycles=extra_write,
            l2_writes=l2_writes,
        )

        # Leakage integrates over wall-clock time; ticks cover the trace
        # span, so scale the byte-tick integral by the stall/CPI dilation.
        dilation = timing.total_cycles / max(1, stream.duration_ticks)
        reports = []
        for seg in segments:
            max_size = seg.max_ways * seg.bytes_per_way
            byte_seconds = seg.byte_ticks * dilation / platform.clock_hz
            # Per-access energy scales with the powered array a lookup
            # actually touches; use the time-weighted mean powered size
            # (never below one way).
            mean_powered = max(
                seg.bytes_per_way, seg.byte_ticks // max(1, stream.duration_ticks)
            )
            reports.append(
                SegmentReport(
                    name=seg.name,
                    tech_name=seg.tech.name,
                    size_bytes=max_size,
                    byte_seconds=byte_seconds,
                    stats=seg.cache.stats,
                    energy=segment_energy(seg.cache.stats, seg.tech, mean_powered, byte_seconds),
                )
            )
        dram_writes = sum(
            s.cache.stats.writebacks + s.cache.stats.expiry_writebacks for s in segments
        )
        return DesignResult(
            design=self.name,
            app=stream.name,
            segments=tuple(reports),
            timing=timing,
            dram_j=dram_energy_j(demand_misses, dram_writes),
            extras={
                "timeline_ticks": timeline_ticks,
                "timeline_user_ways": timeline_user,
                "timeline_kernel_ways": timeline_kernel,
                "user_resizes": user.resizes,
                "kernel_resizes": kernel.resizes,
            },
        )

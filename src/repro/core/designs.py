"""Registry of the paper's canonical design points.

Four designs carry the evaluation (Figures 6/8, Table 4):

* ``baseline`` — shared 1 MB 16-way SRAM L2.
* ``static-sram`` — static user/kernel partition, shrunk to 4+2 ways
  (384 KB), still SRAM: isolates the benefit of partition + shrink.
* ``static-stt`` — the paper's *static technique*: same partition on
  multi-retention STT-RAM (user medium, kernel short retention).
* ``dynamic-stt`` — the paper's *dynamic technique*: epoch-resized
  segments on short-retention STT-RAM.
"""

from __future__ import annotations

from repro.core.baseline import BaselineDesign
from repro.core.dynamic_partition import DynamicPartitionDesign
from repro.core.multi_retention import multi_retention_design
from repro.core.static_partition import StaticPartitionDesign

__all__ = ["DESIGN_NAMES", "make_design", "paper_designs"]

#: Evaluation order used by every figure and table.
DESIGN_NAMES = ("baseline", "static-sram", "static-stt", "dynamic-stt")


def make_design(name: str, **kwargs):
    """Instantiate one canonical design by name.

    ``kwargs`` are forwarded to the design's constructor (way counts,
    retention classes, replacement policy, ...), which is how
    :class:`~repro.engine.spec.JobSpec` describes design variants.
    """
    if name == "baseline":
        return BaselineDesign(**kwargs)
    if name == "static-sram":
        return StaticPartitionDesign(name="static-sram", **kwargs)
    if name == "static-stt":
        return multi_retention_design(**kwargs)
    if name == "dynamic-stt":
        return DynamicPartitionDesign(**kwargs)
    raise ValueError(f"unknown design {name!r}; choose from {DESIGN_NAMES}")


def paper_designs() -> dict[str, object]:
    """All four canonical designs keyed by name, in evaluation order."""
    return {name: make_design(name) for name in DESIGN_NAMES}

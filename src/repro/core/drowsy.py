"""Drowsy-SRAM baseline (extension: the paper's natural SRAM competitor).

Before reaching for a new memory technology, an SRAM designer would try
*drowsy caching* (Flautner et al., ISCA 2002): lines untouched for a
window drop to a state-preserving low-voltage mode that cuts their
leakage by ~3-4x, waking with a one-cycle penalty on the next access.
Comparing the paper's STT-RAM designs against this stronger SRAM
baseline shows how much of the win survives: drowsy mode attacks the
same leakage but cannot approach STT-RAM's near-zero cell leakage, and
it must keep full voltage on everything recently used.

The cache engine does exact awake-time accounting per line (see
``SetAssociativeCache.drowsy_window``); this design converts awake/
drowsy byte-seconds into leakage energy and charges the wake-up cycles.
"""

from __future__ import annotations

from repro.cache.hierarchy import L2Stream
from repro.cache.set_assoc import SetAssociativeCache
from repro.config import CacheGeometry, PlatformConfig
from repro.core.pipeline import ReplaySession, ResultAssembler, SegmentOutcome
from repro.core.result import DesignResult
from repro.energy.model import EnergyBreakdown
from repro.energy.technology import MemoryTechnology, sram

__all__ = ["DrowsySRAMDesign", "DROWSY_LEAKAGE_SCALE", "DEFAULT_DROWSY_WINDOW"]

#: Leakage of a drowsy line relative to full voltage (ISCA'02 ballpark).
DROWSY_LEAKAGE_SCALE = 0.28

#: Ticks a line stays at full voltage after its last access.
DEFAULT_DROWSY_WINDOW = 4_000

#: Extra cycles to wake a drowsy line on access.
WAKEUP_CYCLES = 1


class DrowsySRAMDesign:
    """Shared SRAM L2 with per-line drowsy mode.

    Args:
        geometry: L2 geometry; defaults to the platform L2.
        drowsy_window: Full-voltage window after each access, in ticks.
        tech: SRAM parameter set (the leakage number is the full-voltage
            figure; drowsy lines burn ``DROWSY_LEAKAGE_SCALE`` of it).
        policy: Replacement policy.
    """

    def __init__(
        self,
        geometry: CacheGeometry | None = None,
        drowsy_window: int = DEFAULT_DROWSY_WINDOW,
        tech: MemoryTechnology | None = None,
        policy: str = "lru",
        name: str = "drowsy-sram",
    ) -> None:
        if drowsy_window <= 0:
            raise ValueError(f"drowsy_window must be positive, got {drowsy_window}")
        self.geometry = geometry
        self.drowsy_window = drowsy_window
        self.tech = tech if tech is not None else sram()
        if self.tech.retention is not None:
            raise ValueError("drowsy mode is an SRAM technique; use a retention-free tech")
        self.policy = policy
        self.name = name

    def run(
        self, stream: L2Stream, platform: PlatformConfig, engine: str = "auto"
    ) -> DesignResult:
        """Replay ``stream``; leakage splits into awake and drowsy parts.

        ``engine`` follows the shared contract (see
        :func:`~repro.core.pipeline.run_fixed_design`); drowsy mode has
        no vectorized path, so ``"fast"`` raises and ``"auto"`` always
        replays through the reference engine.
        """
        geometry = self.geometry if self.geometry is not None else platform.l2
        session = ReplaySession(self.name, stream, engine)
        session.dispatch_fast(
            False, None, "per-line drowsy voltage tracking needs the per-access engine"
        )
        cache = SetAssociativeCache(
            geometry, self.policy, drowsy_window=self.drowsy_window, name="l2-drowsy"
        )
        session.replay_routed(lambda priv: cache)
        cache.finalize(stream.duration_ticks)

        stats = cache.stats
        assembler = ResultAssembler(session, platform)
        # wake-ups delay the demand accesses that find their line drowsy
        assembler.weigh_timing(
            [(stats, self.tech)],
            extra_read=(
                cache.drowsy_wakeups * WAKEUP_CYCLES / stats.demand_accesses
                if stats.demand_accesses
                else 0.0
            ),
            extra_write=0.0,
        )

        size = cache.size_bytes
        total_byte_seconds = size * assembler.seconds
        # exact awake integral from the engine, scaled (like the dynamic
        # design) for the stall/CPI dilation beyond trace ticks
        awake_byte_seconds = (
            cache.awake_block_ticks * geometry.block_size * assembler.dilation
            / platform.clock_hz
        )
        awake_byte_seconds = min(awake_byte_seconds, total_byte_seconds)
        drowsy_byte_seconds = total_byte_seconds - awake_byte_seconds
        weighted_byte_seconds = awake_byte_seconds + DROWSY_LEAKAGE_SCALE * drowsy_byte_seconds
        mb = 1024 * 1024
        leakage_j = self.tech.leakage_mw_per_mb * 1e-3 * weighted_byte_seconds / mb
        read_j = stats.accesses * self.tech.read_energy_nj(size) * 1e-9
        write_j = (stats.fills + stats.write_accesses) * self.tech.write_energy_nj(size) * 1e-9

        outcome = SegmentOutcome(
            name="shared",
            tech=self.tech,
            stats=stats,
            size_bytes=size,
            byte_seconds=weighted_byte_seconds,
            energy=EnergyBreakdown(leakage_j, read_j, write_j, 0.0),
            tech_name=f"{self.tech.name}-drowsy",
        )
        return assembler.finish(
            [outcome],
            extras={
                "drowsy_wakeups": cache.drowsy_wakeups,
                "awake_fraction": awake_byte_seconds / total_byte_seconds
                if total_byte_seconds
                else 0.0,
            },
        )

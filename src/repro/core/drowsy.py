"""Drowsy-SRAM baseline (extension: the paper's natural SRAM competitor).

Before reaching for a new memory technology, an SRAM designer would try
*drowsy caching* (Flautner et al., ISCA 2002): lines untouched for a
window drop to a state-preserving low-voltage mode that cuts their
leakage by ~3-4x, waking with a one-cycle penalty on the next access.
Comparing the paper's STT-RAM designs against this stronger SRAM
baseline shows how much of the win survives: drowsy mode attacks the
same leakage but cannot approach STT-RAM's near-zero cell leakage, and
it must keep full voltage on everything recently used.

The cache engine does exact awake-time accounting per line (see
``SetAssociativeCache.drowsy_window``); this design converts awake/
drowsy byte-seconds into leakage energy and charges the wake-up cycles.
"""

from __future__ import annotations

from repro.cache.hierarchy import L2Stream
from repro.cache.set_assoc import SetAssociativeCache
from repro.config import CacheGeometry, PlatformConfig
from repro.core.result import DesignResult, SegmentReport
from repro.energy.model import EnergyBreakdown, dram_energy_j
from repro.energy.technology import MemoryTechnology, sram
from repro.timing.cpu import compute_timing

__all__ = ["DrowsySRAMDesign", "DROWSY_LEAKAGE_SCALE", "DEFAULT_DROWSY_WINDOW"]

#: Leakage of a drowsy line relative to full voltage (ISCA'02 ballpark).
DROWSY_LEAKAGE_SCALE = 0.28

#: Ticks a line stays at full voltage after its last access.
DEFAULT_DROWSY_WINDOW = 4_000

#: Extra cycles to wake a drowsy line on access.
WAKEUP_CYCLES = 1


class DrowsySRAMDesign:
    """Shared SRAM L2 with per-line drowsy mode.

    Args:
        geometry: L2 geometry; defaults to the platform L2.
        drowsy_window: Full-voltage window after each access, in ticks.
        tech: SRAM parameter set (the leakage number is the full-voltage
            figure; drowsy lines burn ``DROWSY_LEAKAGE_SCALE`` of it).
        policy: Replacement policy.
    """

    def __init__(
        self,
        geometry: CacheGeometry | None = None,
        drowsy_window: int = DEFAULT_DROWSY_WINDOW,
        tech: MemoryTechnology | None = None,
        policy: str = "lru",
        name: str = "drowsy-sram",
    ) -> None:
        if drowsy_window <= 0:
            raise ValueError(f"drowsy_window must be positive, got {drowsy_window}")
        self.geometry = geometry
        self.drowsy_window = drowsy_window
        self.tech = tech if tech is not None else sram()
        if self.tech.retention is not None:
            raise ValueError("drowsy mode is an SRAM technique; use a retention-free tech")
        self.policy = policy
        self.name = name

    def run(self, stream: L2Stream, platform: PlatformConfig) -> DesignResult:
        """Replay ``stream``; leakage splits into awake and drowsy parts."""
        geometry = self.geometry if self.geometry is not None else platform.l2
        cache = SetAssociativeCache(
            geometry, self.policy, drowsy_window=self.drowsy_window, name="l2-drowsy"
        )
        for tick, addr, priv, is_write, is_demand in zip(
            stream.ticks.tolist(), stream.addrs.tolist(), stream.privs.tolist(),
            stream.writes.tolist(), stream.demand.tolist(),
        ):
            cache.access(addr, is_write, priv, tick, is_demand)
        cache.finalize(stream.duration_ticks)

        stats = cache.stats
        # wake-ups delay the demand accesses that find their line drowsy
        extra_read = (
            cache.drowsy_wakeups * WAKEUP_CYCLES / stats.demand_accesses
            if stats.demand_accesses
            else 0.0
        )
        timing = compute_timing(
            platform,
            instructions=stream.instructions,
            duration_ticks=stream.duration_ticks,
            l1_demand_misses=stream.l1_demand_misses,
            l2_demand_misses=stats.demand_misses,
            l2_extra_read_cycles=extra_read,
            l2_extra_write_cycles=0.0,
            l2_writes=stats.total_writes,
        )

        seconds = timing.seconds(platform)
        size = cache.size_bytes
        total_byte_seconds = size * seconds
        # exact awake integral from the engine, scaled (like the dynamic
        # design) for the stall/CPI dilation beyond trace ticks
        dilation = timing.total_cycles / max(1, stream.duration_ticks)
        awake_byte_seconds = (
            cache.awake_block_ticks * geometry.block_size * dilation / platform.clock_hz
        )
        awake_byte_seconds = min(awake_byte_seconds, total_byte_seconds)
        drowsy_byte_seconds = total_byte_seconds - awake_byte_seconds
        mb = 1024 * 1024
        leakage_j = self.tech.leakage_mw_per_mb * 1e-3 * (
            awake_byte_seconds + DROWSY_LEAKAGE_SCALE * drowsy_byte_seconds
        ) / mb
        read_j = stats.accesses * self.tech.read_energy_nj(size) * 1e-9
        write_j = (stats.fills + stats.write_accesses) * self.tech.write_energy_nj(size) * 1e-9
        energy = EnergyBreakdown(leakage_j, read_j, write_j, 0.0)

        report = SegmentReport(
            name="shared",
            tech_name=f"{self.tech.name}-drowsy",
            size_bytes=size,
            byte_seconds=awake_byte_seconds + DROWSY_LEAKAGE_SCALE * drowsy_byte_seconds,
            stats=stats,
            energy=energy,
        )
        return DesignResult(
            design=self.name,
            app=stream.name,
            segments=(report,),
            timing=timing,
            dram_j=dram_energy_j(stats.demand_misses, stats.writebacks),
            extras={
                "drowsy_wakeups": cache.drowsy_wakeups,
                "awake_fraction": awake_byte_seconds / total_byte_seconds
                if total_byte_seconds
                else 0.0,
            },
        )

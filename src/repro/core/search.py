"""Design-space search for the static partition sizes.

The paper picks the static (user, kernel) segment sizes by sweeping the
partition space and choosing the smallest total size whose miss rate
stays close to the full-size shared baseline.  This module implements
that sweep over pre-filtered L2 streams (cheap: the L1 work is already
done) and is also what Figure 4's bench calls.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.hierarchy import L2Stream
from repro.config import PlatformConfig
from repro.core.baseline import BaselineDesign
from repro.core.static_partition import StaticPartitionDesign

__all__ = ["PartitionPoint", "sweep_partitions", "find_static_partition"]


@dataclass(frozen=True)
class PartitionPoint:
    """One evaluated static partition configuration."""

    user_ways: int
    kernel_ways: int
    total_bytes: int
    demand_miss_rate: float
    user_miss_rate: float
    kernel_miss_rate: float

    @property
    def total_ways(self) -> int:
        """Combined way count of both segments."""
        return self.user_ways + self.kernel_ways


def _mean_miss_rate(design, streams: list[L2Stream], platform: PlatformConfig) -> tuple[float, float, float]:
    """(overall, user-segment, kernel-segment) demand miss rates, averaged."""
    overall, user, kernel = [], [], []
    for stream in streams:
        result = design.run(stream, platform)
        overall.append(result.l2_stats.demand_miss_rate)
        try:
            user.append(result.segment("user").stats.demand_miss_rate)
            kernel.append(result.segment("kernel").stats.demand_miss_rate)
        except KeyError:
            user.append(result.l2_stats.demand_miss_rate)
            kernel.append(result.l2_stats.demand_miss_rate)
    return float(np.mean(overall)), float(np.mean(user)), float(np.mean(kernel))


def sweep_partitions(
    streams: list[L2Stream],
    platform: PlatformConfig,
    user_way_options: tuple[int, ...] = (1, 2, 3, 4, 6, 8),
    kernel_way_options: tuple[int, ...] = (1, 2, 3, 4, 6),
) -> list[PartitionPoint]:
    """Evaluate every (user, kernel) way combination on ``streams``."""
    if not streams:
        raise ValueError("need at least one stream to sweep")
    points = []
    bytes_per_way = platform.l2.num_sets * platform.l2.block_size
    for uw in user_way_options:
        for kw in kernel_way_options:
            design = StaticPartitionDesign(user_ways=uw, kernel_ways=kw)
            overall, user_mr, kernel_mr = _mean_miss_rate(design, streams, platform)
            points.append(
                PartitionPoint(
                    user_ways=uw,
                    kernel_ways=kw,
                    total_bytes=(uw + kw) * bytes_per_way,
                    demand_miss_rate=overall,
                    user_miss_rate=user_mr,
                    kernel_miss_rate=kernel_mr,
                )
            )
    return points


def find_static_partition(
    streams: list[L2Stream],
    platform: PlatformConfig,
    tolerance: float = 0.10,
    user_way_options: tuple[int, ...] = (1, 2, 3, 4, 6, 8),
    kernel_way_options: tuple[int, ...] = (1, 2, 3, 4, 6),
) -> PartitionPoint:
    """Smallest partition whose miss rate stays within ``tolerance``.

    The reference is the full-size shared baseline's mean demand miss
    rate over the same streams; the budget is ``baseline * (1 +
    tolerance)``.  Among admissible points the smallest total size wins;
    miss rate breaks ties.  If no point is admissible, the
    lowest-miss-rate point is returned (the caller can inspect it).
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    baseline_mr, _, _ = _mean_miss_rate(BaselineDesign(), streams, platform)
    budget = baseline_mr * (1.0 + tolerance)
    points = sweep_partitions(streams, platform, user_way_options, kernel_way_options)
    admissible = [p for p in points if p.demand_miss_rate <= budget]
    if admissible:
        return min(admissible, key=lambda p: (p.total_bytes, p.demand_miss_rate))
    return min(points, key=lambda p: p.demand_miss_rate)

"""The paper's contribution: partitioned, multi-retention, dynamic L2 designs.

Public surface:

* :class:`BaselineDesign` — shared SRAM L2 reference.
* :class:`DrowsySRAMDesign` — drowsy-mode SRAM competitor (extension).
* :class:`HybridPartitionDesign` — SRAM+STT hybrid segments (extension).
* :class:`StaticPartitionDesign` — static user/kernel way partition with
  per-segment technology.
* :func:`multi_retention_design` — the canonical static + multi-retention
  STT-RAM configuration.
* :class:`DynamicPartitionDesign` / :class:`DynamicControllerConfig` —
  epoch-based dynamic partitioning with power-gated ways.
* :func:`find_static_partition` / :func:`sweep_partitions` — the
  partition design-space search.
* :func:`make_design` / :data:`DESIGN_NAMES` — canonical registry.
* :class:`DesignResult` / :class:`SegmentReport` — results.
"""

from repro.core.baseline import BaselineDesign
from repro.core.designs import DESIGN_NAMES, make_design, paper_designs
from repro.core.drowsy import DEFAULT_DROWSY_WINDOW, DROWSY_LEAKAGE_SCALE, DrowsySRAMDesign
from repro.core.dynamic_partition import DynamicControllerConfig, DynamicPartitionDesign
from repro.core.hybrid import HybridPartitionDesign
from repro.core.multi_retention import (
    KERNEL_RETENTION_CLASS,
    USER_RETENTION_CLASS,
    multi_retention_design,
)
from repro.core.pipeline import (
    FixedSegment,
    ReplaySession,
    ResultAssembler,
    SegmentOutcome,
    run_fixed_design,
)
from repro.core.result import DesignResult, SegmentReport
from repro.core.search import PartitionPoint, find_static_partition, sweep_partitions
from repro.core.static_partition import (
    DEFAULT_KERNEL_WAYS,
    DEFAULT_USER_WAYS,
    StaticPartitionDesign,
)

__all__ = [
    "BaselineDesign",
    "DEFAULT_DROWSY_WINDOW",
    "DROWSY_LEAKAGE_SCALE",
    "DrowsySRAMDesign",
    "DESIGN_NAMES",
    "make_design",
    "paper_designs",
    "DynamicControllerConfig",
    "DynamicPartitionDesign",
    "HybridPartitionDesign",
    "KERNEL_RETENTION_CLASS",
    "USER_RETENTION_CLASS",
    "multi_retention_design",
    "FixedSegment",
    "ReplaySession",
    "ResultAssembler",
    "SegmentOutcome",
    "run_fixed_design",
    "DesignResult",
    "SegmentReport",
    "PartitionPoint",
    "find_static_partition",
    "sweep_partitions",
    "DEFAULT_KERNEL_WAYS",
    "DEFAULT_USER_WAYS",
    "StaticPartitionDesign",
]

"""The shared design-execution pipeline.

Every L2 design in :mod:`repro.core` — the fixed-topology family
(baseline, static partition, multi-retention) as well as the dynamic,
drowsy and hybrid designs — executes through this module:

* :class:`ReplaySession` owns the decoded access stream, the
  ``engine="auto"|"fast"|"reference"`` dispatch contract (including the
  ``REPRO_FASTSIM`` kill switch and the recorded ``sim_engine``), and
  the per-access reference loops (fixed, routed, and epoch-controlled).
* :class:`ResultAssembler` owns everything downstream of replay: the
  demand/write-weighted technology timing penalties, the
  :class:`~repro.core.result.SegmentReport` assembly, the DRAM energy
  charge and the ``extras`` conventions.

``compute_timing`` / ``segment_energy`` / ``dram_energy_j`` are invoked
from exactly this module under ``repro.core`` — adding a design means
writing its replay logic, not re-deriving its accounting.  Designs with
non-default accounting feed overrides through :class:`SegmentOutcome`
(the dynamic design's powered-capacity integral, the drowsy design's
awake/drowsy leakage split) instead of assembling results by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro import obs
from repro.cache.hierarchy import L2Stream
from repro.cache.prefetch import Prefetcher
from repro.cache.set_assoc import SetAssociativeCache
from repro.cache.stats import CacheStats
from repro.config import PlatformConfig
from repro.core.result import DesignResult, SegmentReport
from repro.dram.model import DRAMModel
from repro.energy.model import EnergyBreakdown, dram_energy_j, segment_energy
from repro.energy.technology import MemoryTechnology
from repro.timing.cpu import TimingResult, compute_timing

__all__ = [
    "ENGINES",
    "FixedSegment",
    "ReplaySession",
    "ResultAssembler",
    "SegmentOutcome",
    "run_fixed_design",
]

#: The replay-engine contract every design's ``run`` accepts.
ENGINES = ("auto", "fast", "reference")


class FixedSegment:
    """Pairing of a segment cache with its array technology."""

    def __init__(self, name: str, cache: SetAssociativeCache, tech: MemoryTechnology) -> None:
        self.name = name
        self.cache = cache
        self.tech = tech


class ReplaySession:
    """One design execution over one stream: decode + engine dispatch.

    A session is created with the caller's ``engine`` choice, validated
    once.  The design then asks :meth:`dispatch_fast` whether to take
    the vectorized kernel (recording ``sim_engine`` and enforcing the
    ``"fast"`` contract), and — on the reference path — replays through
    one of the shared per-access loops below.
    """

    def __init__(self, design_name: str, stream: L2Stream, engine: str = "auto") -> None:
        if engine not in ENGINES:
            raise ValueError(f"engine must be 'auto', 'fast' or 'reference', got {engine!r}")
        self.design_name = design_name
        self.stream = stream
        self.engine = engine
        self.sim_engine = "reference"

    # ------------------------------------------------------------------
    # engine dispatch

    def dispatch_fast(self, qualifies: bool, runner, requirement: str) -> bool:
        """Try the fast kernel under the engine contract.

        Args:
            qualifies: Design-level precondition for the vectorized
                kernel (cheap checks the design can decide upfront).
            runner: Callable receiving the :mod:`repro.cache.fastsim`
                module; performs the fast replay and returns True on
                success (False leaves every cache untouched for the
                reference path).  ``None`` means the design has no fast
                path at all.
            requirement: Human-readable qualification summary used in
                the ``engine="fast"`` error message.

        Returns:
            True when the fast kernel ran (``sim_engine`` becomes
            ``"fastsim"``); False when the caller must run its reference
            loop.  Raises ``ValueError`` when ``engine="fast"`` was
            requested but the design disqualifies.

        Every call books one ``pipeline.dispatch.<engine>`` counter, and
        every fallback books ``pipeline.fallback.<reason>`` — under
        ``engine="auto"`` the *silent* fallbacks (kill switch, kernel
        declined at replay time) additionally emit a ``pipeline.fallback``
        trace event, so an unexpectedly slow run is diagnosable from its
        run log alone.
        """
        reason = None
        if self.engine == "reference":
            reason = "engine=reference"
        elif runner is None:
            reason = "no-fast-path"
        elif not qualifies:
            reason = "disqualified"
        else:
            from repro.cache import fastsim

            if self.engine == "auto" and not fastsim.enabled():
                reason = "kill-switch"
            else:
                with obs.span("replay", design=self.design_name, engine="fastsim"):
                    ran = runner(fastsim)
                if ran:
                    self.sim_engine = "fastsim"
                else:
                    reason = "kernel-declined"
        if self.engine == "fast" and self.sim_engine != "fastsim":
            obs.inc("pipeline.dispatch.error")
            raise ValueError(
                f"design {self.design_name!r} does not qualify for the fast kernel "
                f"({requirement})"
            )
        obs.inc(f"pipeline.dispatch.{self.sim_engine}")
        if reason is not None:
            obs.inc(f"pipeline.fallback.{reason}")
            if self.engine == "auto" and reason in ("kill-switch", "kernel-declined"):
                obs.event("pipeline.fallback", design=self.design_name, reason=reason)
        return self.sim_engine == "fastsim"

    # ------------------------------------------------------------------
    # the reference loops

    def rows(self):
        """Decode the stream columns once into plain Python rows."""
        s = self.stream
        return zip(
            s.ticks.tolist(), s.addrs.tolist(), s.privs.tolist(),
            s.writes.tolist(), s.demand.tolist(),
        )

    def replay_routed(self, route: Callable[[int], object]) -> None:
        """Reference loop for designs whose routing captures all logic.

        ``route(priv)`` returns the object serving the access — anything
        with the ``access(addr, is_write, priv, tick, demand)`` protocol
        (a :class:`SetAssociativeCache` or a composite like the hybrid
        segment).  The caller finalizes its caches itself.
        """
        with obs.span("replay", design=self.design_name, engine="reference", loop="routed"):
            for tick, addr, priv, is_write, is_demand in self.rows():
                route(priv).access(addr, is_write, priv, tick, is_demand)

    def replay_epochs(
        self,
        route: Callable[[int], object],
        epoch_ticks: int,
        on_boundary: Callable[[int], None],
    ) -> None:
        """Reference loop for epoch-controlled designs.

        ``on_boundary(tick)`` runs at every crossed epoch boundary
        (lazily — boundaries beyond the last access never fire);
        ``route(priv)`` returns a segment exposing wake-on-first-access
        (``wake(tick)``) and a ``cache.access`` method.
        """
        with obs.span("replay", design=self.design_name, engine="reference", loop="epochs"):
            next_epoch = epoch_ticks
            for tick, addr, priv, is_write, is_demand in self.rows():
                while tick >= next_epoch:
                    on_boundary(next_epoch)
                    next_epoch += epoch_ticks
                seg = route(priv)
                seg.wake(tick)
                seg.cache.access(addr, is_write, priv, tick, is_demand)

    def replay_fixed(
        self,
        segments: list[FixedSegment],
        router: Callable[[int], SetAssociativeCache],
        dram_model: DRAMModel | None = None,
        prefetcher: Prefetcher | None = None,
    ) -> tuple[int, int, int]:
        """Reference loop for fixed-geometry designs.

        Interleaves the optional bank-level DRAM model and L2 prefetcher
        with the accesses, finalizes every segment, and returns
        ``(dram_read_stall, prefetch_issued, prefetch_useful)``.

        A prefetched block only counts as useful while it is still
        resident: ``pending_prefetches`` entries are pruned whenever the
        block is evicted (the fill's victim) or re-misses (proof the
        prefetched copy is gone), so the set stays bounded by the cache
        capacity on arbitrarily long traces and a block re-fetched on
        demand can never credit the stale prefetch that once covered it.
        """
        block_size = segments[0].cache.geometry.block_size
        block_mask = ~(block_size - 1)
        pending_prefetches: set[int] = set()
        dram_read_stall = 0
        prefetch_issued = 0
        prefetch_useful = 0
        with obs.span("replay", design=self.design_name, engine="reference", loop="fixed"):
            for tick, addr, priv, is_write, is_demand in self.rows():
                cache = router(priv)
                result = cache.access(addr, is_write, priv, tick, is_demand)
                if result.hit:
                    if pending_prefetches and is_demand:
                        block = addr & block_mask
                        if block in pending_prefetches:
                            prefetch_useful += 1
                            pending_prefetches.discard(block)
                    continue
                if pending_prefetches:
                    pending_prefetches.discard(addr & block_mask)
                    if result.victim_addr is not None:
                        pending_prefetches.discard(result.victim_addr)
                if is_demand and dram_model is not None:
                    dram_read_stall += dram_model.access(addr, tick)
                if result.writeback and dram_model is not None:
                    dram_model.access(result.victim_addr, tick, is_write=True)
                if is_demand and prefetcher is not None:
                    for target in prefetcher.on_miss(addr):
                        pf = cache.access(target, False, priv, tick, demand=False)
                        prefetch_issued += 1
                        if not pf.hit:
                            if pf.victim_addr is not None:
                                pending_prefetches.discard(pf.victim_addr)
                            pending_prefetches.add(target & block_mask)
                            if dram_model is not None:
                                dram_model.access(target, tick)
                            if pf.writeback and dram_model is not None:
                                dram_model.access(pf.victim_addr, tick, is_write=True)
            for seg in segments:
                seg.cache.finalize(self.stream.duration_ticks)
        return dram_read_stall, prefetch_issued, prefetch_useful


@dataclass
class SegmentOutcome:
    """One segment's simulated outcome, ready for report assembly.

    Defaults model a fixed-size segment: leakage integrates the full
    ``size_bytes`` over the run and per-access energy scales with it.
    Designs with non-trivial accounting override the relevant fields:

    * ``byte_seconds`` — powered-capacity integral (dynamic design) or
      a drowsy-weighted equivalent;
    * ``energy_size_bytes`` — the array size per-access energy scales
      with, when it differs from the provisioned ``size_bytes``;
    * ``energy`` — a fully custom :class:`EnergyBreakdown` (drowsy);
    * ``tech_name`` — report label override.
    """

    name: str
    tech: MemoryTechnology
    stats: CacheStats
    size_bytes: int
    byte_seconds: float | None = None
    energy_size_bytes: int | None = None
    energy: EnergyBreakdown | None = None
    tech_name: str | None = None


class ResultAssembler:
    """Turns replayed segments into a :class:`DesignResult`.

    Two phases, because energy-time integrals need the timing first:
    :meth:`weigh_timing` folds the per-segment technology penalties into
    one :class:`TimingResult`, then :meth:`finish` builds the segment
    reports, charges DRAM energy and stamps the uniform extras
    (``sim_engine`` in every design's result).
    """

    def __init__(self, session: ReplaySession, platform: PlatformConfig) -> None:
        self.session = session
        self.stream = session.stream
        self.platform = platform
        self.timing: TimingResult | None = None
        self._demand_misses = 0

    def weigh_timing(
        self,
        parts: list[tuple[CacheStats, MemoryTechnology]],
        *,
        extra_read: float | None = None,
        extra_write: float | None = None,
        dram_stall_override: float | None = None,
    ) -> TimingResult:
        """Compute the design's timing from its (stats, tech) parts.

        The default technology penalties are the demand-access-weighted
        ``extra_read_cycles`` and the array-write-weighted
        ``extra_write_cycles`` across the parts; designs with bespoke
        read penalties (drowsy wake-ups) pass ``extra_read`` directly.
        """
        stream = self.stream
        total_demand = sum(st.demand_accesses for st, _ in parts)
        if extra_read is None:
            extra_read = (
                sum(st.demand_accesses * t.extra_read_cycles for st, t in parts) / total_demand
                if total_demand
                else 0.0
            )
        l2_writes = sum(st.total_writes for st, _ in parts)
        if extra_write is None:
            extra_write = (
                sum(st.total_writes * t.extra_write_cycles for st, t in parts) / l2_writes
                if l2_writes
                else 0.0
            )
        self._demand_misses = sum(st.demand_misses for st, _ in parts)
        self.timing = compute_timing(
            self.platform,
            instructions=stream.instructions,
            duration_ticks=stream.duration_ticks,
            l1_demand_misses=stream.l1_demand_misses,
            l2_demand_misses=self._demand_misses,
            l2_extra_read_cycles=extra_read,
            l2_extra_write_cycles=extra_write,
            l2_writes=l2_writes,
            dram_stall_override=dram_stall_override,
        )
        return self.timing

    @property
    def seconds(self) -> float:
        """Wall-clock duration of the run (after :meth:`weigh_timing`)."""
        return self.timing.seconds(self.platform)

    @property
    def dilation(self) -> float:
        """Stall/CPI dilation of wall-clock cycles beyond trace ticks.

        Leakage integrates over wall-clock time while replay integrals
        are in ticks; multiplying a tick integral by this factor (then
        dividing by the clock) converts it to seconds.
        """
        return self.timing.total_cycles / max(1, self.stream.duration_ticks)

    def finish(
        self,
        outcomes: list[SegmentOutcome],
        *,
        dram_model: DRAMModel | None = None,
        extras: dict | None = None,
    ) -> DesignResult:
        """Assemble the final :class:`DesignResult` from the outcomes."""
        if self.timing is None:
            raise RuntimeError("weigh_timing must run before finish")
        with obs.span("assemble", design=self.session.design_name, app=self.stream.name):
            return self._finish(outcomes, dram_model=dram_model, extras=extras)

    def _finish(
        self,
        outcomes: list[SegmentOutcome],
        *,
        dram_model: DRAMModel | None = None,
        extras: dict | None = None,
    ) -> DesignResult:
        seconds = self.seconds
        reports = []
        for oc in outcomes:
            byte_seconds = (
                oc.byte_seconds if oc.byte_seconds is not None else oc.size_bytes * seconds
            )
            if oc.energy is not None:
                energy = oc.energy
            else:
                energy_size = (
                    oc.energy_size_bytes if oc.energy_size_bytes is not None else oc.size_bytes
                )
                energy = segment_energy(oc.stats, oc.tech, energy_size, byte_seconds)
            reports.append(
                SegmentReport(
                    name=oc.name,
                    tech_name=oc.tech_name if oc.tech_name is not None else oc.tech.name,
                    size_bytes=oc.size_bytes,
                    byte_seconds=byte_seconds,
                    stats=oc.stats,
                    energy=energy,
                )
            )
        all_extras = dict(extras) if extras else {}
        if dram_model is not None:
            dram_j = dram_model.energy_j(self.platform.seconds(self.timing.busy_cycles))
            all_extras["dram_stats"] = dram_model.stats
        else:
            dram_writes = sum(
                oc.stats.writebacks + oc.stats.expiry_writebacks for oc in outcomes
            )
            dram_j = dram_energy_j(self._demand_misses, dram_writes)
        all_extras["sim_engine"] = self.session.sim_engine
        return DesignResult(
            design=self.session.design_name,
            app=self.stream.name,
            segments=tuple(reports),
            timing=self.timing,
            dram_j=dram_j,
            extras=all_extras,
        )


def run_fixed_design(
    design_name: str,
    stream: L2Stream,
    platform: PlatformConfig,
    segments: list[FixedSegment],
    router: Callable[[int], SetAssociativeCache],
    dram_model: DRAMModel | None = None,
    prefetcher: Prefetcher | None = None,
    engine: str = "auto",
) -> DesignResult:
    """Replay ``stream`` through fixed segments and assemble the result.

    Args:
        design_name: Label recorded in the result.
        stream: L1-filtered L2 access stream.
        platform: Platform latencies/clock for timing and energy time.
        segments: All segments with their technologies.
        router: Maps an access privilege to the segment cache serving it.
        dram_model: Optional bank-level DRAM model.  When given, every
            L2 demand miss and every write-back to memory goes through
            it; measured latencies replace the platform's flat DRAM
            latency and its energy model replaces the flat per-transfer
            charge.
        prefetcher: Optional L2 prefetcher.  Demand misses train it;
            its proposals are installed as non-demand fills into the
            missing access's segment (so in a partitioned design a
            kernel miss can only pollute the kernel segment).
        engine: ``"auto"`` replays through the vectorized fast kernel
            (:mod:`repro.cache.fastsim`) when the whole design qualifies
            — LRU segments, no gating/drowsy, retention ``none`` or
            ``invalidate``, and neither a DRAM model nor a prefetcher
            (both need per-access interleaving) — falling back to the
            reference engine otherwise.  ``"fast"`` requires the kernel
            and raises when the design disqualifies; ``"reference"``
            forces the per-access engine.  The chosen path is recorded
            in ``DesignResult.extras["sim_engine"]``.
    """
    session = ReplaySession(design_name, stream, engine)
    dram_read_stall = 0
    prefetch_issued = 0
    prefetch_useful = 0
    ran_fast = session.dispatch_fast(
        dram_model is None and prefetcher is None,
        lambda fastsim: fastsim.try_run_fixed(stream, segments, router),
        "needs LRU segments, retention 'none'/'invalidate', no DRAM "
        "model, no prefetcher",
    )
    if not ran_fast:
        dram_read_stall, prefetch_issued, prefetch_useful = session.replay_fixed(
            segments, router, dram_model, prefetcher
        )

    assembler = ResultAssembler(session, platform)
    assembler.weigh_timing(
        [(seg.cache.stats, seg.tech) for seg in segments],
        dram_stall_override=float(dram_read_stall) if dram_model is not None else None,
    )
    extras: dict = {}
    if prefetcher is not None:
        extras["prefetch_issued"] = prefetch_issued
        extras["prefetch_useful"] = prefetch_useful
    return assembler.finish(
        [
            SegmentOutcome(seg.name, seg.tech, seg.cache.stats, seg.cache.size_bytes)
            for seg in segments
        ],
        dram_model=dram_model,
        extras=extras,
    )

"""Multi-retention STT-RAM assignment for the static partition.

The paper's second observation: once the L2 is split, the two segments
behave *completely differently*.

* **Kernel blocks** are re-referenced on every syscall, interrupt and
  IPC — their inter-access intervals are short and regular.  A
  short-retention STT-RAM cell (cheap, fast writes) never decays before
  its next use.
* **User blocks** have long dead times (the user working set turns over
  between interactions and sleeps across idle periods).  They need a
  longer retention window or they would miss on every return; the
  medium class covers their reuse horizon while still writing at less
  than half the long-retention pulse energy.

Hence the canonical assignment built here: user segment = medium
retention, kernel segment = short retention, both with invalidate-on-
expiry handling (dead blocks simply decay — that is free — and
Figure 5's interval distributions show live blocks are re-referenced
well inside their windows).
"""

from __future__ import annotations

from repro.core.static_partition import (
    DEFAULT_KERNEL_WAYS,
    DEFAULT_USER_WAYS,
    StaticPartitionDesign,
)
from repro.energy.technology import stt_ram

__all__ = [
    "multi_retention_design",
    "USER_RETENTION_CLASS",
    "KERNEL_RETENTION_CLASS",
]

#: Retention class of the user segment (long dead times -> medium window).
USER_RETENTION_CLASS = "medium"

#: Retention class of the kernel segment (tight reuse -> short window).
KERNEL_RETENTION_CLASS = "short"


def multi_retention_design(
    user_ways: int = DEFAULT_USER_WAYS,
    kernel_ways: int = DEFAULT_KERNEL_WAYS,
    user_retention: str = USER_RETENTION_CLASS,
    kernel_retention: str = KERNEL_RETENTION_CLASS,
    refresh_mode: str = "invalidate",
    retention_distribution: str = "fixed",
    name: str = "static-stt",
) -> StaticPartitionDesign:
    """The paper's static technique: partition + multi-retention STT-RAM.

    Returns a :class:`StaticPartitionDesign` whose segments use STT-RAM
    at the given retention classes.
    """
    return StaticPartitionDesign(
        user_ways=user_ways,
        kernel_ways=kernel_ways,
        user_tech=stt_ram(user_retention),
        kernel_tech=stt_ram(kernel_retention),
        refresh_mode=refresh_mode,
        retention_distribution=retention_distribution,
        name=name,
    )

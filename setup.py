"""Legacy setup shim.

The execution environment has no network and no ``wheel`` package, so
PEP 660 editable installs are unavailable; this shim lets
``pip install -e .`` take the classic ``setup.py develop`` path.
Metadata lives in ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Energy-efficient user/kernel-partitioned STT-RAM L2 cache design "
        "for mobile platforms (DATE'15 / TODAES'17 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
